//! The file-local lint ratchets: a committed `lint-baseline.json` holding
//! the per-file counts of accepted panic sites (`panic-in-lib`), lossy
//! casts (`cast-truncation`), justified unsafe sites (`unsafe-boundary`),
//! unproven arithmetic (`int-overflow`), and unproven bracket indexing
//! (`slice-index`).
//!
//! The workspace predates the analyzer, so it carries a few hundred
//! `unwrap`/`expect` sites. Failing the build on all of them would force a
//! big-bang rewrite; ignoring them would let the count grow. The ratchet
//! does neither: every file's current count is recorded, any file whose
//! count *rises* fails the build, and shrinking a file's count is
//! celebrated by re-running `ce-analyzer --write-baseline` to lock in the
//! lower number. The baseline may only ever decrease, and an entry whose
//! file has left the scan set is itself a hard error — dead allowances
//! don't accumulate.
//!
//! The file is plain JSON with sorted keys so diffs are stable and
//! reviewable. Parsing and rendering are hand-rolled (the workspace
//! builds offline; the vendored `serde` stand-in has no JSON support) and
//! accept exactly the subset this file uses.

use std::collections::BTreeMap;

/// Accepted per-file site counts for the five file-local ratchets, keyed
/// by workspace-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `panic-in-lib`: path → accepted panic-site count. (The section is
    /// named `files` in the JSON for continuity with the single-rule era.)
    pub files: BTreeMap<String, usize>,
    /// `cast-truncation`: path → accepted lossy-cast count.
    pub casts: BTreeMap<String, usize>,
    /// `unsafe-boundary`: path → accepted justified-unsafe-site count.
    pub unsafe_sites: BTreeMap<String, usize>,
    /// `int-overflow`: path → accepted unproven-arithmetic-site count.
    pub arith: BTreeMap<String, usize>,
    /// `slice-index`: path → accepted unproven-index-site count.
    pub indexes: BTreeMap<String, usize>,
}

impl Baseline {
    /// Sum of all sections' per-file counts.
    pub fn total(&self) -> usize {
        self.files.values().sum::<usize>()
            + self.casts.values().sum::<usize>()
            + self.unsafe_sites.values().sum::<usize>()
            + self.arith.values().sum::<usize>()
            + self.indexes.values().sum::<usize>()
    }

    /// The accepted `panic-in-lib` count for `path` (0 when absent).
    pub fn allowed(&self, path: &str) -> usize {
        self.files.get(path).copied().unwrap_or(0)
    }

    /// The accepted `cast-truncation` count for `path` (0 when absent).
    pub fn allowed_cast(&self, path: &str) -> usize {
        self.casts.get(path).copied().unwrap_or(0)
    }

    /// The accepted `unsafe-boundary` count for `path` (0 when absent).
    pub fn allowed_unsafe(&self, path: &str) -> usize {
        self.unsafe_sites.get(path).copied().unwrap_or(0)
    }

    /// The accepted `int-overflow` count for `path` (0 when absent).
    pub fn allowed_arith(&self, path: &str) -> usize {
        self.arith.get(path).copied().unwrap_or(0)
    }

    /// The accepted `slice-index` count for `path` (0 when absent).
    pub fn allowed_index(&self, path: &str) -> usize {
        self.indexes.get(path).copied().unwrap_or(0)
    }

    /// Renders the committed JSON form: sorted keys, one file per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"rule\": \"lint\",\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        for (i, (section, files)) in [
            ("files", &self.files),
            ("cast-truncation", &self.casts),
            ("unsafe-boundary", &self.unsafe_sites),
            ("int-overflow", &self.arith),
            ("slice-index", &self.indexes),
        ]
        .iter()
        .enumerate()
        {
            out.push_str(&format!("  \"{section}\": {{\n"));
            let n = files.len();
            for (j, (path, count)) in files.iter().enumerate() {
                let comma = if j + 1 == n { "" } else { "," };
                out.push_str(&format!("    \"{path}\": {count}{comma}\n"));
            }
            let comma = if i == 4 { "" } else { "," };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the committed JSON form. Accepts the legacy single-section
    /// form (`"rule": "panic-in-lib"` with only `files`) so a pre-split
    /// baseline still loads.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.eat(b'{')?;
        let mut baseline = Baseline::default();
        let mut declared_total: Option<usize> = None;
        loop {
            p.skip_ws();
            if p.try_eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            match key.as_str() {
                "rule" => {
                    let rule = p.string()?;
                    if rule != "lint" && rule != "panic-in-lib" {
                        return Err(format!("baseline is for rule `{rule}`, not lint"));
                    }
                }
                "total" => declared_total = Some(p.number()?),
                "files" | "cast-truncation" | "unsafe-boundary" | "int-overflow"
                | "slice-index" => {
                    p.eat(b'{')?;
                    let files = match key.as_str() {
                        "files" => &mut baseline.files,
                        "cast-truncation" => &mut baseline.casts,
                        "unsafe-boundary" => &mut baseline.unsafe_sites,
                        "int-overflow" => &mut baseline.arith,
                        _ => &mut baseline.indexes,
                    };
                    loop {
                        p.skip_ws();
                        if p.try_eat(b'}') {
                            break;
                        }
                        let path = p.string()?;
                        p.skip_ws();
                        p.eat(b':')?;
                        p.skip_ws();
                        let count = p.number()?;
                        files.insert(path, count);
                        p.skip_ws();
                        p.try_eat(b',');
                    }
                }
                other => return Err(format!("unexpected baseline key `{other}`")),
            }
            p.skip_ws();
            p.try_eat(b',');
        }
        if let Some(total) = declared_total {
            if total != baseline.total() {
                return Err(format!(
                    "baseline declares total {total} but per-file counts sum to {}",
                    baseline.total()
                ));
            }
        }
        Ok(baseline)
    }
}

/// The graph-rule ratchet: a committed `reach-baseline.json` holding two
/// per-file finding counts — panic sites reachable from hot fns/handlers
/// (`panic-reachability`) and unreferenced pub items (`dead-pub-api`).
///
/// Same contract as [`Baseline`]: counts may only fall. The two rules
/// share one file because they ratchet together — both are properties of
/// the workspace call graph, refreshed by the same `--write-baseline` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachBaseline {
    /// `panic-reachability`: path → accepted reachable-panic-site count.
    pub panic_reach: BTreeMap<String, usize>,
    /// `dead-pub-api`: path → accepted dead-pub-item count.
    pub dead_api: BTreeMap<String, usize>,
}

impl ReachBaseline {
    /// Sum of both sections' counts.
    pub fn total(&self) -> usize {
        self.panic_reach.values().sum::<usize>() + self.dead_api.values().sum::<usize>()
    }

    /// The accepted `panic-reachability` count for `path` (0 when absent).
    pub fn allowed_reach(&self, path: &str) -> usize {
        self.panic_reach.get(path).copied().unwrap_or(0)
    }

    /// The accepted `dead-pub-api` count for `path` (0 when absent).
    pub fn allowed_dead(&self, path: &str) -> usize {
        self.dead_api.get(path).copied().unwrap_or(0)
    }

    /// Renders the committed JSON form: sorted keys, one file per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"rule\": \"reachability\",\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        for (i, (section, files)) in [
            ("panic-reachability", &self.panic_reach),
            ("dead-pub-api", &self.dead_api),
        ]
        .iter()
        .enumerate()
        {
            out.push_str(&format!("  \"{section}\": {{\n"));
            let n = files.len();
            for (j, (path, count)) in files.iter().enumerate() {
                let comma = if j + 1 == n { "" } else { "," };
                out.push_str(&format!("    \"{path}\": {count}{comma}\n"));
            }
            let comma = if i == 0 { "," } else { "" };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.eat(b'{')?;
        let mut baseline = ReachBaseline::default();
        let mut declared_total: Option<usize> = None;
        loop {
            p.skip_ws();
            if p.try_eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            match key.as_str() {
                "rule" => {
                    let rule = p.string()?;
                    if rule != "reachability" {
                        return Err(format!(
                            "reach baseline is for rule `{rule}`, not reachability"
                        ));
                    }
                }
                "total" => declared_total = Some(p.number()?),
                "panic-reachability" | "dead-pub-api" => {
                    p.eat(b'{')?;
                    let files = if key == "panic-reachability" {
                        &mut baseline.panic_reach
                    } else {
                        &mut baseline.dead_api
                    };
                    loop {
                        p.skip_ws();
                        if p.try_eat(b'}') {
                            break;
                        }
                        let path = p.string()?;
                        p.skip_ws();
                        p.eat(b':')?;
                        p.skip_ws();
                        let count = p.number()?;
                        files.insert(path, count);
                        p.skip_ws();
                        p.try_eat(b',');
                    }
                }
                other => return Err(format!("unexpected reach-baseline key `{other}`")),
            }
            p.skip_ws();
            p.try_eat(b',');
        }
        if let Some(total) = declared_total {
            if total != baseline.total() {
                return Err(format!(
                    "reach baseline declares total {total} but per-file counts sum to {}",
                    baseline.total()
                ));
            }
        }
        Ok(baseline)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.try_eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of baseline",
                b as char, self.pos
            ))
        }
    }

    fn try_eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in baseline string".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escape sequences are not used in baseline paths".to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string in baseline".to_string())
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start} of baseline"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "unparseable number in baseline".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut b = Baseline::default();
        b.files.insert("crates/a/src/lib.rs".to_string(), 3);
        b.files.insert("crates/b/src/x.rs".to_string(), 1);
        b.casts.insert("crates/a/src/lib.rs".to_string(), 2);
        b.unsafe_sites.insert("crates/c/src/sys.rs".to_string(), 2);
        b.arith.insert("crates/a/src/lib.rs".to_string(), 5);
        b.indexes.insert("crates/b/src/x.rs".to_string(), 4);
        b
    }

    #[test]
    fn round_trip() {
        let b = sample();
        let rendered = b.render();
        assert_eq!(Baseline::parse(&rendered).unwrap(), b);
        assert_eq!(b.total(), 17);
    }

    #[test]
    fn legacy_single_section_form_parses() {
        let text = "{ \"rule\": \"panic-in-lib\", \"total\": 2, \"files\": { \"a.rs\": 2 } }";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.allowed("a.rs"), 2);
        assert!(b.casts.is_empty());
        assert!(b.unsafe_sites.is_empty());
        assert!(b.arith.is_empty());
        assert!(b.indexes.is_empty());
    }

    #[test]
    fn sections_are_independent() {
        let b = sample();
        assert_eq!(b.allowed("crates/a/src/lib.rs"), 3);
        assert_eq!(b.allowed_cast("crates/a/src/lib.rs"), 2);
        assert_eq!(b.allowed_unsafe("crates/a/src/lib.rs"), 0);
        assert_eq!(b.allowed_unsafe("crates/c/src/sys.rs"), 2);
        assert_eq!(b.allowed_arith("crates/a/src/lib.rs"), 5);
        assert_eq!(b.allowed_arith("crates/b/src/x.rs"), 0);
        assert_eq!(b.allowed_index("crates/b/src/x.rs"), 4);
        assert_eq!(b.allowed_index("crates/a/src/lib.rs"), 0);
    }

    #[test]
    fn rendered_form_is_stable_and_sorted() {
        let rendered = sample().render();
        let a = rendered.find("crates/a").unwrap();
        let b = rendered.find("crates/b").unwrap();
        assert!(a < b);
        assert!(rendered.contains("\"total\": 17"));
        assert!(rendered.contains("\"cast-truncation\""));
        assert!(rendered.contains("\"unsafe-boundary\""));
        assert!(rendered.contains("\"int-overflow\""));
        assert!(rendered.contains("\"slice-index\""));
    }

    #[test]
    fn mismatched_total_rejected() {
        let text = "{ \"rule\": \"panic-in-lib\", \"total\": 9, \"files\": { \"a.rs\": 1 } }";
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn wrong_rule_rejected() {
        let text = "{ \"rule\": \"other\", \"total\": 0, \"files\": {} }";
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn missing_file_is_zero() {
        assert_eq!(sample().allowed("nope.rs"), 0);
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{ \"rule\": \"panic-in-lib\", \"files\": {} }").unwrap();
        assert_eq!(b.total(), 0);
    }

    fn reach_sample() -> ReachBaseline {
        let mut b = ReachBaseline::default();
        b.panic_reach.insert("crates/a/src/lib.rs".to_string(), 4);
        b.panic_reach.insert("crates/b/src/x.rs".to_string(), 2);
        b.dead_api.insert("crates/a/src/lib.rs".to_string(), 1);
        b
    }

    #[test]
    fn reach_round_trip() {
        let b = reach_sample();
        let rendered = b.render();
        assert_eq!(ReachBaseline::parse(&rendered).unwrap(), b);
        assert_eq!(b.total(), 7);
        assert!(rendered.contains("\"total\": 7"));
    }

    #[test]
    fn reach_sections_independent() {
        let b = reach_sample();
        assert_eq!(b.allowed_reach("crates/a/src/lib.rs"), 4);
        assert_eq!(b.allowed_dead("crates/a/src/lib.rs"), 1);
        assert_eq!(b.allowed_reach("nope.rs"), 0);
        assert_eq!(b.allowed_dead("crates/b/src/x.rs"), 0);
    }

    #[test]
    fn reach_wrong_rule_rejected() {
        assert!(ReachBaseline::parse("{ \"rule\": \"panic-in-lib\" }").is_err());
    }

    #[test]
    fn reach_mismatched_total_rejected() {
        let text = "{ \"rule\": \"reachability\", \"total\": 9, \
                    \"panic-reachability\": { \"a.rs\": 1 }, \"dead-pub-api\": {} }";
        assert!(ReachBaseline::parse(text).is_err());
    }

    #[test]
    fn reach_empty_parses() {
        let b = ReachBaseline::parse(
            "{ \"rule\": \"reachability\", \"panic-reachability\": {}, \"dead-pub-api\": {} }",
        )
        .unwrap();
        assert_eq!(b.total(), 0);
    }
}
