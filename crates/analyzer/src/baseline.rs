//! The `panic-in-lib` ratchet: a committed `lint-baseline.json` holding
//! the per-file count of accepted panic sites.
//!
//! The workspace predates the analyzer, so it carries a few hundred
//! `unwrap`/`expect` sites. Failing the build on all of them would force a
//! big-bang rewrite; ignoring them would let the count grow. The ratchet
//! does neither: every file's current count is recorded, any file whose
//! count *rises* fails the build, and shrinking a file's count is
//! celebrated by re-running `ce-analyzer --write-baseline` to lock in the
//! lower number. The baseline may only ever decrease.
//!
//! The file is plain JSON with sorted keys so diffs are stable and
//! reviewable. Parsing and rendering are hand-rolled (the workspace
//! builds offline; the vendored `serde` stand-in has no JSON support) and
//! accept exactly the subset this file uses.

use std::collections::BTreeMap;

/// Accepted panic-site counts per workspace-relative file path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `path → accepted count`, sorted by path.
    pub files: BTreeMap<String, usize>,
}

impl Baseline {
    /// Sum of all per-file counts.
    pub fn total(&self) -> usize {
        self.files.values().sum()
    }

    /// The accepted count for `path` (0 when absent).
    pub fn allowed(&self, path: &str) -> usize {
        self.files.get(path).copied().unwrap_or(0)
    }

    /// Renders the committed JSON form: sorted keys, one file per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"rule\": \"panic-in-lib\",\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"files\": {\n");
        let n = self.files.len();
        for (i, (path, count)) in self.files.iter().enumerate() {
            let comma = if i + 1 == n { "" } else { "," };
            out.push_str(&format!("    \"{path}\": {count}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.eat(b'{')?;
        let mut files = BTreeMap::new();
        let mut declared_total: Option<usize> = None;
        loop {
            p.skip_ws();
            if p.try_eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            match key.as_str() {
                "rule" => {
                    let rule = p.string()?;
                    if rule != "panic-in-lib" {
                        return Err(format!("baseline is for rule `{rule}`, not panic-in-lib"));
                    }
                }
                "total" => declared_total = Some(p.number()?),
                "files" => {
                    p.eat(b'{')?;
                    loop {
                        p.skip_ws();
                        if p.try_eat(b'}') {
                            break;
                        }
                        let path = p.string()?;
                        p.skip_ws();
                        p.eat(b':')?;
                        p.skip_ws();
                        let count = p.number()?;
                        files.insert(path, count);
                        p.skip_ws();
                        p.try_eat(b',');
                    }
                }
                other => return Err(format!("unexpected baseline key `{other}`")),
            }
            p.skip_ws();
            p.try_eat(b',');
        }
        let baseline = Self { files };
        if let Some(total) = declared_total {
            if total != baseline.total() {
                return Err(format!(
                    "baseline declares total {total} but per-file counts sum to {}",
                    baseline.total()
                ));
            }
        }
        Ok(baseline)
    }
}

/// The graph-rule ratchet: a committed `reach-baseline.json` holding two
/// per-file finding counts — panic sites reachable from hot fns/handlers
/// (`panic-reachability`) and unreferenced pub items (`dead-pub-api`).
///
/// Same contract as [`Baseline`]: counts may only fall. The two rules
/// share one file because they ratchet together — both are properties of
/// the workspace call graph, refreshed by the same `--write-baseline` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachBaseline {
    /// `panic-reachability`: path → accepted reachable-panic-site count.
    pub panic_reach: BTreeMap<String, usize>,
    /// `dead-pub-api`: path → accepted dead-pub-item count.
    pub dead_api: BTreeMap<String, usize>,
}

impl ReachBaseline {
    /// Sum of both sections' counts.
    pub fn total(&self) -> usize {
        self.panic_reach.values().sum::<usize>() + self.dead_api.values().sum::<usize>()
    }

    /// The accepted `panic-reachability` count for `path` (0 when absent).
    pub fn allowed_reach(&self, path: &str) -> usize {
        self.panic_reach.get(path).copied().unwrap_or(0)
    }

    /// The accepted `dead-pub-api` count for `path` (0 when absent).
    pub fn allowed_dead(&self, path: &str) -> usize {
        self.dead_api.get(path).copied().unwrap_or(0)
    }

    /// Renders the committed JSON form: sorted keys, one file per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"rule\": \"reachability\",\n");
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        for (i, (section, files)) in [
            ("panic-reachability", &self.panic_reach),
            ("dead-pub-api", &self.dead_api),
        ]
        .iter()
        .enumerate()
        {
            out.push_str(&format!("  \"{section}\": {{\n"));
            let n = files.len();
            for (j, (path, count)) in files.iter().enumerate() {
                let comma = if j + 1 == n { "" } else { "," };
                out.push_str(&format!("    \"{path}\": {count}{comma}\n"));
            }
            let comma = if i == 0 { "," } else { "" };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.eat(b'{')?;
        let mut baseline = ReachBaseline::default();
        let mut declared_total: Option<usize> = None;
        loop {
            p.skip_ws();
            if p.try_eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            match key.as_str() {
                "rule" => {
                    let rule = p.string()?;
                    if rule != "reachability" {
                        return Err(format!(
                            "reach baseline is for rule `{rule}`, not reachability"
                        ));
                    }
                }
                "total" => declared_total = Some(p.number()?),
                "panic-reachability" | "dead-pub-api" => {
                    p.eat(b'{')?;
                    let files = if key == "panic-reachability" {
                        &mut baseline.panic_reach
                    } else {
                        &mut baseline.dead_api
                    };
                    loop {
                        p.skip_ws();
                        if p.try_eat(b'}') {
                            break;
                        }
                        let path = p.string()?;
                        p.skip_ws();
                        p.eat(b':')?;
                        p.skip_ws();
                        let count = p.number()?;
                        files.insert(path, count);
                        p.skip_ws();
                        p.try_eat(b',');
                    }
                }
                other => return Err(format!("unexpected reach-baseline key `{other}`")),
            }
            p.skip_ws();
            p.try_eat(b',');
        }
        if let Some(total) = declared_total {
            if total != baseline.total() {
                return Err(format!(
                    "reach baseline declares total {total} but per-file counts sum to {}",
                    baseline.total()
                ));
            }
        }
        Ok(baseline)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.try_eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of baseline",
                b as char, self.pos
            ))
        }
    }

    fn try_eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in baseline string".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escape sequences are not used in baseline paths".to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string in baseline".to_string())
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start} of baseline"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "unparseable number in baseline".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut files = BTreeMap::new();
        files.insert("crates/a/src/lib.rs".to_string(), 3);
        files.insert("crates/b/src/x.rs".to_string(), 1);
        Baseline { files }
    }

    #[test]
    fn round_trip() {
        let b = sample();
        let rendered = b.render();
        assert_eq!(Baseline::parse(&rendered).unwrap(), b);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn rendered_form_is_stable_and_sorted() {
        let rendered = sample().render();
        let a = rendered.find("crates/a").unwrap();
        let b = rendered.find("crates/b").unwrap();
        assert!(a < b);
        assert!(rendered.contains("\"total\": 4"));
    }

    #[test]
    fn mismatched_total_rejected() {
        let text = "{ \"rule\": \"panic-in-lib\", \"total\": 9, \"files\": { \"a.rs\": 1 } }";
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn wrong_rule_rejected() {
        let text = "{ \"rule\": \"other\", \"total\": 0, \"files\": {} }";
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn missing_file_is_zero() {
        assert_eq!(sample().allowed("nope.rs"), 0);
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{ \"rule\": \"panic-in-lib\", \"files\": {} }").unwrap();
        assert_eq!(b.total(), 0);
    }

    fn reach_sample() -> ReachBaseline {
        let mut b = ReachBaseline::default();
        b.panic_reach.insert("crates/a/src/lib.rs".to_string(), 4);
        b.panic_reach.insert("crates/b/src/x.rs".to_string(), 2);
        b.dead_api.insert("crates/a/src/lib.rs".to_string(), 1);
        b
    }

    #[test]
    fn reach_round_trip() {
        let b = reach_sample();
        let rendered = b.render();
        assert_eq!(ReachBaseline::parse(&rendered).unwrap(), b);
        assert_eq!(b.total(), 7);
        assert!(rendered.contains("\"total\": 7"));
    }

    #[test]
    fn reach_sections_independent() {
        let b = reach_sample();
        assert_eq!(b.allowed_reach("crates/a/src/lib.rs"), 4);
        assert_eq!(b.allowed_dead("crates/a/src/lib.rs"), 1);
        assert_eq!(b.allowed_reach("nope.rs"), 0);
        assert_eq!(b.allowed_dead("crates/b/src/x.rs"), 0);
    }

    #[test]
    fn reach_wrong_rule_rejected() {
        assert!(ReachBaseline::parse("{ \"rule\": \"panic-in-lib\" }").is_err());
    }

    #[test]
    fn reach_mismatched_total_rejected() {
        let text = "{ \"rule\": \"reachability\", \"total\": 9, \
                    \"panic-reachability\": { \"a.rs\": 1 }, \"dead-pub-api\": {} }";
        assert!(ReachBaseline::parse(text).is_err());
    }

    #[test]
    fn reach_empty_parses() {
        let b = ReachBaseline::parse(
            "{ \"rule\": \"reachability\", \"panic-reachability\": {}, \"dead-pub-api\": {} }",
        )
        .unwrap();
        assert_eq!(b.total(), 0);
    }
}
