//! The workspace call graph: adjacency built by [`resolve`](crate::resolve),
//! multi-source BFS reachability, and shortest witness call paths.
//!
//! Witnesses are the analyzer's answer to "why is this a finding": every
//! transitive diagnostic carries the *shortest* call chain from a root
//! (hot fn, request handler) to the offending function, so a reader can
//! audit the over-approximation instead of trusting it. Shortest paths
//! come from breadth-first search with parent pointers; determinism comes
//! from visiting nodes in index order (function indices follow sorted
//! file order from the scanner, so the same workspace always yields the
//! same witnesses).

use crate::items::FnItem;
use crate::resolve::Edge;
use std::collections::VecDeque;

/// A directed call graph over `fns[0..n]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraph {
    /// `adj[i]` — distinct callees of function `i`, in callee order.
    pub adj: Vec<Vec<Edge>>,
}

/// One BFS step back toward the root: the caller and the call-site line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parent {
    /// Caller function index (`== self` for a root).
    pub caller: usize,
    /// 1-based call-site line in the caller's file (0 for a root).
    pub line: u32,
}

impl CallGraph {
    /// Builds the graph from resolved adjacency.
    pub fn new(adj: Vec<Vec<Edge>>) -> Self {
        Self { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Multi-source BFS: `parents[i]` is `Some` iff `i` is reachable from
    /// any root, pointing one step back along a shortest path (roots point
    /// at themselves). Roots are seeded in the order given, so when two
    /// roots reach a node at equal depth the earlier root wins —
    /// deterministic for a deterministic root order.
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<Parent>> {
        let mut parents: Vec<Option<Parent>> = vec![None; self.adj.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if r < parents.len() && parents[r].is_none() {
                parents[r] = Some(Parent { caller: r, line: 0 });
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for e in &self.adj[u] {
                if parents[e.callee].is_none() {
                    parents[e.callee] = Some(Parent {
                        caller: u,
                        line: e.line,
                    });
                    queue.push_back(e.callee);
                }
            }
        }
        parents
    }

    /// The edge-reversed graph (for "which functions reach X" queries).
    pub fn reversed(&self) -> CallGraph {
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); self.adj.len()];
        for (u, edges) in self.adj.iter().enumerate() {
            for e in edges {
                adj[e.callee].push(Edge {
                    callee: u,
                    line: e.line,
                });
            }
        }
        CallGraph { adj }
    }
}

/// Reconstructs the root-to-`target` shortest path from a [`CallGraph::reach`]
/// result: function indices from root to target inclusive. Empty when
/// `target` is unreachable.
pub fn path_to(parents: &[Option<Parent>], target: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut cur = target;
    loop {
        let Some(p) = parents.get(cur).copied().flatten() else {
            return Vec::new();
        };
        path.push(cur);
        if p.caller == cur {
            break;
        }
        cur = p.caller;
    }
    path.reverse();
    path
}

/// Renders a witness path human-readably: `a → B::b → c`.
pub fn render_witness(fns: &[FnItem], path: &[usize]) -> String {
    let mut out = String::new();
    for (i, &idx) in path.iter().enumerate() {
        if i > 0 {
            out.push_str(" → ");
        }
        if let Some(f) = fns.get(idx) {
            out.push_str(&f.display());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> CallGraph {
        // 0 → 1 → 2 → … → n-1
        let adj = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![Edge {
                        callee: i + 1,
                        line: (i + 1) as u32,
                    }]
                } else {
                    Vec::new()
                }
            })
            .collect();
        CallGraph::new(adj)
    }

    #[test]
    fn bfs_reaches_along_chain() {
        let g = chain(4);
        let parents = g.reach(&[0]);
        assert!(parents.iter().all(Option::is_some));
        assert_eq!(path_to(&parents, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_nodes_have_no_parent() {
        let g = chain(3);
        let parents = g.reach(&[1]);
        assert!(parents[0].is_none());
        assert_eq!(path_to(&parents, 0), Vec::<usize>::new());
        assert_eq!(path_to(&parents, 2), vec![1, 2]);
    }

    #[test]
    fn shortest_path_wins_over_longer() {
        // 0→1→3 and 0→3 — the direct edge wins.
        let g = CallGraph::new(vec![
            vec![Edge { callee: 1, line: 1 }, Edge { callee: 3, line: 2 }],
            vec![Edge { callee: 3, line: 5 }],
            Vec::new(),
            Vec::new(),
        ]);
        let parents = g.reach(&[0]);
        assert_eq!(path_to(&parents, 3), vec![0, 3]);
    }

    #[test]
    fn earlier_root_wins_ties() {
        // Both 0 and 1 call 2; root order decides the witness.
        let g = CallGraph::new(vec![
            vec![Edge { callee: 2, line: 1 }],
            vec![Edge { callee: 2, line: 9 }],
            Vec::new(),
        ]);
        let parents = g.reach(&[0, 1]);
        assert_eq!(path_to(&parents, 2), vec![0, 2]);
        let parents = g.reach(&[1, 0]);
        assert_eq!(path_to(&parents, 2), vec![1, 2]);
    }

    #[test]
    fn cycles_terminate() {
        let g = CallGraph::new(vec![
            vec![Edge { callee: 1, line: 1 }],
            vec![Edge { callee: 0, line: 2 }],
        ]);
        let parents = g.reach(&[0]);
        assert!(parents.iter().all(Option::is_some));
    }

    #[test]
    fn reversed_flips_edges() {
        let g = chain(3);
        let r = g.reversed();
        assert_eq!(g.edge_count(), r.edge_count());
        let parents = r.reach(&[2]);
        assert!(
            parents[0].is_some(),
            "0 reaches 2 forward, so 2 reaches 0 reversed"
        );
    }
}
