//! Workspace policy: which rules run where, and the per-crate allowances.
//!
//! The analyzer is a *workspace* linter, not a general-purpose one, so its
//! policy is code, reviewed like any other invariant. Three decisions live
//! here:
//!
//! 1. which crates are **deterministic** (subject to the `nondeterminism`
//!    rule) — everything except the escape hatches below;
//! 2. the two narrow **allowances** the exploration engine needs:
//!    `ce-parallel` may read the `CE_THREADS` environment variable (worker
//!    count, which by construction cannot change results — that is the
//!    crate's whole determinism contract), and `ce-bench` may call
//!    `Instant::now`/`SystemTime::now` because benchmarking *is* timing;
//! 3. the **pure result types** whose bare returns must be `#[must_use]`.

/// Names of all six rules, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    "nondeterminism",
    "hot-path-alloc",
    "float-eq",
    "panic-in-lib",
    "crate-hygiene",
    "must-use",
];

/// Per-crate escape hatches for the `nondeterminism` rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrateAllowances {
    /// `std::env::var` is permitted, but only with a `"CE_THREADS"`
    /// literal argument.
    pub env_var_ce_threads: bool,
    /// `Instant::now` / `SystemTime::now` are permitted (timing harness).
    pub wall_clock: bool,
}

/// The analyzer's compiled-in policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Result types whose bare (non-`Result`/`Option`) returns from `pub`
    /// functions must carry `#[must_use]`.
    pub must_use_types: Vec<&'static str>,
    /// Method names forbidden inside `// ce:hot` functions (matched as
    /// `.name`).
    pub hot_forbidden_methods: Vec<&'static str>,
    /// Path patterns forbidden inside `// ce:hot` functions (matched as
    /// `A::b`).
    pub hot_forbidden_paths: Vec<(&'static str, &'static str)>,
    /// Macro names forbidden inside `// ce:hot` functions (matched as
    /// `name!`).
    pub hot_forbidden_macros: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            must_use_types: vec![
                "DispatchStats",
                "CombinedStats",
                "DeficitStats",
                "QueueStats",
                "EvaluatedDesign",
            ],
            hot_forbidden_methods: vec![
                "collect",
                "to_vec",
                "clone",
                "to_string",
                "to_owned",
                "cloned",
            ],
            hot_forbidden_paths: vec![
                ("Vec", "new"),
                ("Vec", "with_capacity"),
                ("Box", "new"),
                ("String", "from"),
                ("String", "new"),
                ("String", "with_capacity"),
                ("VecDeque", "new"),
                ("VecDeque", "with_capacity"),
                ("BTreeMap", "new"),
                ("HashMap", "new"),
            ],
            hot_forbidden_macros: vec!["vec", "format"],
        }
    }
}

/// The allowances for the crate owning `rel_path` (a path relative to the
/// workspace root, e.g. `crates/parallel/src/lib.rs`).
pub fn allowances_for(rel_path: &str) -> CrateAllowances {
    match crate_dir(rel_path) {
        Some("parallel") => CrateAllowances {
            env_var_ce_threads: true,
            wall_clock: false,
        },
        Some("bench") => CrateAllowances {
            env_var_ce_threads: false,
            wall_clock: true,
        },
        _ => CrateAllowances::default(),
    }
}

/// The `crates/<dir>` component of a workspace-relative path, if any.
/// The facade crate (`src/lib.rs` at the root) returns `None`.
pub fn crate_dir(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether `rel_path` is a crate root (`lib.rs` directly under a `src/`
/// directory) and therefore subject to the `crate-hygiene` rule.
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(crate_dir("crates/parallel/src/lib.rs"), Some("parallel"));
        assert_eq!(crate_dir("crates/bench/src/bin/repro.rs"), Some("bench"));
        assert_eq!(crate_dir("src/lib.rs"), None);
    }

    #[test]
    fn allowances() {
        assert!(allowances_for("crates/parallel/src/lib.rs").env_var_ce_threads);
        assert!(allowances_for("crates/bench/src/bin/bench_sweep.rs").wall_clock);
        assert_eq!(
            allowances_for("crates/core/src/explore.rs"),
            CrateAllowances::default()
        );
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/explore.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/repro.rs"));
    }
}
