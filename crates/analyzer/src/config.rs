//! Workspace policy: which rules run where, and the per-crate allowances.
//!
//! The analyzer is a *workspace* linter, not a general-purpose one, so its
//! policy is code, reviewed like any other invariant. Three decisions live
//! here:
//!
//! 1. which crates are **deterministic** (subject to the `nondeterminism`
//!    rule) — everything except the escape hatches below;
//! 2. the narrow per-crate **allowances** the workspace's edges need:
//!    `ce-parallel` may read the `CE_THREADS` environment variable (worker
//!    count, which by construction cannot change results — that is the
//!    crate's whole determinism contract) and spawn threads; `ce-bench`
//!    may call `Instant::now`/`SystemTime::now` (benchmarking *is*
//!    timing), open sockets, and spawn load-generator threads; `ce-serve`
//!    may open sockets, spawn its worker pool, and read the clock, because
//!    a network service is operationally nondeterministic by nature — its
//!    *response bodies* stay bitwise-deterministic, which is exactly why
//!    the allowance never extends to the compute crates it calls into;
//! 3. the **pure result types** whose bare returns must be `#[must_use]`.

/// Names of all sixteen rules, in reporting order. The first six are
/// file-local; the next four run over the workspace call graph built by
/// [`resolve`](crate::resolve) and [`callgraph`](crate::callgraph); three
/// form the resource-discipline tier (blocking reachability, the unsafe
/// boundary audit, and lossy-cast tracking); and the last three sit on
/// the intraprocedural [`dataflow`](crate::dataflow) pass (overflow
/// audit, slice-index discipline, and atomics-ordering justification).
pub const RULE_NAMES: &[&str] = &[
    "nondeterminism",
    "hot-path-alloc",
    "float-eq",
    "panic-in-lib",
    "crate-hygiene",
    "must-use",
    "hot-path-transitive-alloc",
    "panic-reachability",
    "dead-pub-api",
    "determinism-taint",
    "blocking-in-event-loop",
    "unsafe-boundary",
    "cast-truncation",
    "int-overflow",
    "slice-index",
    "atomic-ordering",
];

/// One row of `--list-rules`: rule name, tier, and a one-line summary.
/// Kept next to [`RULE_NAMES`] (and pinned equal by a test) so the CLI,
/// the docs, and the registry cannot drift apart.
pub const RULE_INFO: &[(&str, &str, &str)] = &[
    (
        "nondeterminism",
        "file-local",
        "no clocks, RNGs, env reads, sockets, threads, or raw fds outside per-crate allowances",
    ),
    (
        "hot-path-alloc",
        "file-local",
        "no allocating calls or macros directly inside `// ce:hot` functions",
    ),
    (
        "float-eq",
        "file-local",
        "no `==`/`!=` on float expressions; compare against tolerances",
    ),
    (
        "panic-in-lib",
        "file-local (ratcheted)",
        "unwrap/expect/panic!/unreachable! sites per file may only shrink vs lint-baseline.json",
    ),
    (
        "crate-hygiene",
        "file-local",
        "crate roots carry #![forbid(unsafe_code)] (serve: deny) and the standard lint set",
    ),
    (
        "must-use",
        "file-local",
        "pub fns returning bare stats/result types must be #[must_use]",
    ),
    (
        "hot-path-transitive-alloc",
        "call-graph",
        "`// ce:hot` functions must not transitively reach an allocating function",
    ),
    (
        "panic-reachability",
        "call-graph (ratcheted)",
        "panic sites reachable from hot/entry roots may only shrink vs reach-baseline.json",
    ),
    (
        "dead-pub-api",
        "call-graph (ratcheted)",
        "pub items referenced nowhere in the workspace, tests, benches, or examples",
    ),
    (
        "determinism-taint",
        "call-graph",
        "deterministic crates must not transitively call nondeterminism behind an allowance",
    ),
    (
        "blocking-in-event-loop",
        "resource-discipline (call-graph)",
        "`// ce:nonblocking` functions must not transitively reach a blocking call",
    ),
    (
        "unsafe-boundary",
        "resource-discipline (ratcheted)",
        "unsafe only in the allowlisted FFI module, each site // ce:safety-justified and counted",
    ),
    (
        "cast-truncation",
        "resource-discipline (ratcheted)",
        "lossy `as` casts in deterministic crates need try_from, explicit rounding, or ce:allow(cast)",
    ),
    (
        "int-overflow",
        "dataflow (ratcheted)",
        "unchecked + - * << on ints in deterministic crates: prove in-range, checked_*/saturating_*, or ce:allow(arith)",
    ),
    (
        "slice-index",
        "dataflow (ratcheted)",
        "bracket indexing outside tests must be dataflow-proven bounded; unproven sites ratchet per file",
    ),
    (
        "atomic-ordering",
        "dataflow (call-graph)",
        "every Ordering::* needs // ce:ordering(reason) within 3 lines; SeqCst on hot/nonblocking paths needs ce:allow(seqcst)",
    ),
];

/// `ce:allow(...)` kinds that are not rule names: `blocking` suppresses a
/// blocking fact or cuts one call edge for `blocking-in-event-loop`;
/// `cast` suppresses one lossy-cast site for `cast-truncation`; `arith`
/// suppresses one unproven arithmetic site for `int-overflow`; `index`
/// suppresses one unproven bracket-index site for `slice-index`; `seqcst`
/// justifies one `SeqCst` site on a hot/nonblocking-reachable path for
/// `atomic-ordering`.
pub const ALLOW_KINDS: &[&str] = &["blocking", "cast", "arith", "index", "seqcst"];

/// Whether `kind` is valid inside `ce:allow(kind, reason = "…")` — either
/// a rule name or one of the site-kind shorthands in [`ALLOW_KINDS`].
pub fn is_allow_kind(kind: &str) -> bool {
    RULE_NAMES.contains(&kind) || ALLOW_KINDS.contains(&kind)
}

/// The rule that owns diagnostics about an allow kind (e.g. a missing
/// reason): shorthands map to their rule, rule names map to themselves.
pub fn rule_for_allow_kind(kind: &str) -> &str {
    match kind {
        "blocking" => "blocking-in-event-loop",
        "cast" => "cast-truncation",
        "arith" => "int-overflow",
        "index" => "slice-index",
        "seqcst" => "atomic-ordering",
        other => other,
    }
}

/// Files allowed to contain unsafe code at all. The `poll(2)` FFI shim is
/// the workspace's entire unsafe surface; `unsafe-boundary` rejects any
/// unsafe fact elsewhere outright (no baseline entry can admit it).
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/serve/src/sys.rs"];

/// Whether `rel_path` may contain `unsafe` / `#[allow(unsafe_code)]`.
pub fn unsafe_allowlisted(rel_path: &str) -> bool {
    UNSAFE_ALLOWLIST.contains(&rel_path)
}

/// Whether `rel_path` belongs to a deterministic crate — no wall-clock or
/// socket allowance — and is therefore subject to `cast-truncation`.
/// The operational front ends (`ce-serve`, `ce-bench`) deal in fd counts,
/// byte lengths, and latency buckets where narrowing is routine and
/// outside the bitwise-determinism contract.
pub fn is_deterministic(rel_path: &str) -> bool {
    let a = allowances_for(rel_path);
    !a.wall_clock && !a.sockets
}

/// Per-crate escape hatches for the `nondeterminism` rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrateAllowances {
    /// `std::env::var` is permitted, but only with a `"CE_THREADS"`
    /// literal argument.
    pub env_var_ce_threads: bool,
    /// `Instant::now` / `SystemTime::now` are permitted (timing harness).
    pub wall_clock: bool,
    /// `TcpListener` / `TcpStream` / `UdpSocket` are permitted (network
    /// front ends and their load generators).
    pub sockets: bool,
    /// `thread::spawn` / `thread::scope` are permitted (worker pools).
    pub threads: bool,
    /// Raw file-descriptor APIs (`AsRawFd`, `as_raw_fd`, `RawFd`,
    /// `from_raw_fd`, …) are permitted. Only the event-loop front end
    /// needs them, to hand sockets to `poll(2)`; everywhere else a raw fd
    /// is a sign of I/O sneaking into deterministic code.
    pub raw_fds: bool,
}

/// The analyzer's compiled-in policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Result types whose bare (non-`Result`/`Option`) returns from `pub`
    /// functions must carry `#[must_use]`.
    pub must_use_types: Vec<&'static str>,
    /// Method names forbidden inside `// ce:hot` functions (matched as
    /// `.name`).
    pub hot_forbidden_methods: Vec<&'static str>,
    /// Path patterns forbidden inside `// ce:hot` functions (matched as
    /// `A::b`).
    pub hot_forbidden_paths: Vec<(&'static str, &'static str)>,
    /// Macro names forbidden inside `// ce:hot` functions (matched as
    /// `name!`).
    pub hot_forbidden_macros: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            must_use_types: vec![
                "DispatchStats",
                "CombinedStats",
                "DeficitStats",
                "QueueStats",
                "EvaluatedDesign",
            ],
            hot_forbidden_methods: vec![
                "collect",
                "to_vec",
                "clone",
                "to_string",
                "to_owned",
                "cloned",
            ],
            hot_forbidden_paths: vec![
                ("Vec", "new"),
                ("Vec", "with_capacity"),
                ("Box", "new"),
                ("String", "from"),
                ("String", "new"),
                ("String", "with_capacity"),
                ("VecDeque", "new"),
                ("VecDeque", "with_capacity"),
                ("BTreeMap", "new"),
                ("HashMap", "new"),
            ],
            hot_forbidden_macros: vec!["vec", "format"],
        }
    }
}

/// The allowances for the crate owning `rel_path` (a path relative to the
/// workspace root, e.g. `crates/parallel/src/lib.rs`).
pub fn allowances_for(rel_path: &str) -> CrateAllowances {
    match crate_dir(rel_path) {
        Some("parallel") => CrateAllowances {
            env_var_ce_threads: true,
            threads: true,
            ..CrateAllowances::default()
        },
        Some("bench") => CrateAllowances {
            wall_clock: true,
            sockets: true,
            threads: true,
            ..CrateAllowances::default()
        },
        Some("serve") => CrateAllowances {
            wall_clock: true,
            sockets: true,
            threads: true,
            raw_fds: true,
            ..CrateAllowances::default()
        },
        _ => CrateAllowances::default(),
    }
}

/// Whether `rel_path`'s crate root may use `#![deny(unsafe_code)]` in
/// place of `#![forbid(unsafe_code)]`. Only `ce-serve` qualifies: its
/// `sys` module holds the workspace's single `poll(2)` FFI declaration
/// behind scoped `#[allow(unsafe_code)]` blocks, which `forbid` would
/// reject outright. `deny` still makes any *new* unsafe a hard error
/// unless it carries an explicit, reviewable `allow`.
pub fn may_deny_unsafe(rel_path: &str) -> bool {
    crate_dir(rel_path) == Some("serve")
}

/// The `crates/<dir>` component of a workspace-relative path, if any.
/// The facade crate (`src/lib.rs` at the root) returns `None`.
pub fn crate_dir(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// The crate key of a workspace-relative path: the `crates/<dir>` name,
/// or `"facade"` for the root `src/` crate. Keys are what the call graph
/// and dependency closure are indexed by.
pub fn crate_key(rel_path: &str) -> String {
    crate_dir(rel_path).unwrap_or("facade").to_string()
}

/// Whether `rel_path` is a crate root (`lib.rs` directly under a `src/`
/// directory) and therefore subject to the `crate-hygiene` rule.
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(crate_dir("crates/parallel/src/lib.rs"), Some("parallel"));
        assert_eq!(crate_dir("crates/bench/src/bin/repro.rs"), Some("bench"));
        assert_eq!(crate_dir("src/lib.rs"), None);
    }

    #[test]
    fn allowances() {
        let parallel = allowances_for("crates/parallel/src/lib.rs");
        assert!(parallel.env_var_ce_threads && parallel.threads);
        assert!(!parallel.wall_clock && !parallel.sockets);
        let bench = allowances_for("crates/bench/src/bin/bench_sweep.rs");
        assert!(bench.wall_clock && bench.sockets && bench.threads);
        assert!(!bench.env_var_ce_threads);
        let serve = allowances_for("crates/serve/src/server.rs");
        assert!(serve.wall_clock && serve.sockets && serve.threads && serve.raw_fds);
        assert!(!serve.env_var_ce_threads);
        let bench = allowances_for("crates/bench/src/bin/bench_serve.rs");
        assert!(!bench.raw_fds, "only the event loop handles raw fds");
        assert_eq!(
            allowances_for("crates/core/src/explore.rs"),
            CrateAllowances::default()
        );
    }

    #[test]
    fn deny_unsafe_exception_is_serve_only() {
        assert!(may_deny_unsafe("crates/serve/src/lib.rs"));
        assert!(!may_deny_unsafe("crates/core/src/lib.rs"));
        assert!(!may_deny_unsafe("crates/bench/src/bin/bench_serve.rs"));
        assert!(!may_deny_unsafe("src/lib.rs"));
    }

    #[test]
    fn rule_info_matches_rule_names() {
        assert_eq!(RULE_INFO.len(), RULE_NAMES.len());
        for ((info_name, _, _), name) in RULE_INFO.iter().zip(RULE_NAMES) {
            assert_eq!(info_name, name, "RULE_INFO order drifted from RULE_NAMES");
        }
    }

    #[test]
    fn allow_kinds() {
        assert!(is_allow_kind("blocking"));
        assert!(is_allow_kind("cast"));
        assert!(is_allow_kind("arith"));
        assert!(is_allow_kind("index"));
        assert!(is_allow_kind("seqcst"));
        assert!(is_allow_kind("hot-path-alloc"));
        assert!(!is_allow_kind("frobnicate"));
        assert_eq!(rule_for_allow_kind("blocking"), "blocking-in-event-loop");
        assert_eq!(rule_for_allow_kind("cast"), "cast-truncation");
        assert_eq!(rule_for_allow_kind("arith"), "int-overflow");
        assert_eq!(rule_for_allow_kind("index"), "slice-index");
        assert_eq!(rule_for_allow_kind("seqcst"), "atomic-ordering");
        assert_eq!(rule_for_allow_kind("float-eq"), "float-eq");
    }

    #[test]
    fn sixteen_rules_with_the_dataflow_tier_last() {
        assert_eq!(RULE_NAMES.len(), 16);
        assert_eq!(
            &RULE_NAMES[13..],
            &["int-overflow", "slice-index", "atomic-ordering"]
        );
    }

    #[test]
    fn unsafe_allowlist_is_sys_only() {
        assert!(unsafe_allowlisted("crates/serve/src/sys.rs"));
        assert!(!unsafe_allowlisted("crates/serve/src/event.rs"));
        assert!(!unsafe_allowlisted("crates/core/src/explore.rs"));
    }

    #[test]
    fn deterministic_crates_exclude_operational_front_ends() {
        assert!(is_deterministic("crates/core/src/explore.rs"));
        assert!(is_deterministic("crates/parallel/src/lib.rs"));
        assert!(is_deterministic("src/lib.rs"));
        // Provenance records attest determinism, so the crate that mints
        // them must itself be free of clocks, RNGs, and env reads.
        assert!(is_deterministic("crates/manifest/src/manifest.rs"));
        assert!(is_deterministic("crates/manifest/src/sha256.rs"));
        assert!(!is_deterministic("crates/serve/src/event.rs"));
        assert!(!is_deterministic("crates/bench/src/context.rs"));
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/explore.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/repro.rs"));
    }
}
