//! Pass 2: conservative intraprocedural dataflow over the lexed stream.
//!
//! After item extraction the analyzer walks every function body once more,
//! this time tracking *value facts* instead of syntax: integer-literal
//! constants, `len()`-derived bounds, `min`/`clamp` range facts, and guard
//! conditions (`if i < xs.len()`). The walk is branch- and loop-aware —
//! facts established by a guard hold only inside the guarded block, and
//! entering a loop body first kills every fact about identifiers the body
//! assigns, because a fact proved on iteration one need not hold on
//! iteration two.
//!
//! The pass produces two site lists that the rule layer turns into the
//! `int-overflow` and `slice-index` rules:
//!
//! - every unchecked `+ - * <<` (and compound `+= -= *= <<=`) whose
//!   operands are provably integer, classified *proven in-range* or not;
//! - every postfix bracket-index expression, classified *proven bounded*
//!   or not.
//!
//! Everything here is a deliberate under-approximation: a fact is only
//! recorded when the token pattern is unambiguous, and any write the walk
//! cannot see through (`x = …`, `&mut x`, a length-mutating method call)
//! kills the facts it might invalidate. Two documented approximations
//! remain: closures are walked linearly (a closure body sees the facts
//! live at its *definition* site), and the `a >= b ⇒ a - b` proof assumes
//! the operands share a sign, which holds for the unsigned counters it is
//! designed for.
//!
//! The engine is intraprocedural by construction: each `fn` body is a
//! *barrier* frame, so facts never leak between functions — but parameter
//! type annotations (`i: usize`) do seed integer-typedness.

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One unchecked arithmetic site found by the dataflow walk.
#[derive(Debug, Clone)]
pub struct ArithSite {
    /// 1-based line of the operator token.
    pub line: u32,
    /// 1-based column of the operator token.
    pub col: u32,
    /// The operator text (`+`, `-`, `*`, `<<`, `+=`, …).
    pub op: String,
    /// Whether dataflow proved the result in-range.
    pub proven: bool,
}

/// One postfix bracket-index site found by the dataflow walk.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// 1-based line of the `[` token.
    pub line: u32,
    /// 1-based column of the `[` token.
    pub col: u32,
    /// Whether dataflow proved the index bounded by the receiver's length.
    pub proven: bool,
}

/// All dataflow findings for one file.
#[derive(Debug, Clone, Default)]
pub struct FileDataflow {
    /// Integer arithmetic sites, in token order.
    pub arith: Vec<ArithSite>,
    /// Bracket-index sites, in token order.
    pub indexes: Vec<IndexSite>,
}

/// Runs the dataflow pass over a file's non-comment tokens.
pub fn analyze_source(code: &[&Token]) -> FileDataflow {
    let mut w = Walker {
        code,
        frames: vec![Frame::barrier()],
        out: FileDataflow::default(),
    };
    w.walk(0, code.len());
    w.out
}

/// The `(line, col)` positions of every bracket-index site the dataflow
/// pass proved bounded. Item extraction uses this to keep proven indexing
/// out of the panic-fact set (and therefore out of the reachability
/// baseline).
pub fn proven_index_sites(code: &[&Token]) -> BTreeSet<(u32, u32)> {
    analyze_source(code)
        .indexes
        .iter()
        .filter(|s| s.proven)
        .map(|s| (s.line, s.col))
        .collect()
}

/// Integer type names, for typedness seeding and per-type limits.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Methods that can change a collection's length; a call through one kills
/// every `len()`-derived fact about the receiver.
const LEN_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "swap_remove",
    "clear",
    "truncate",
    "resize",
    "resize_with",
    "extend",
    "extend_from_slice",
    "append",
    "drain",
    "retain",
    "split_off",
    "dedup",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
];

/// Keywords that can precede a binary-looking operator without being an
/// operand (`return -1`, `match x`, …). Mirrors the item extractor's list.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// The maximum value of a suffixed integer type, saturated to `i128`.
fn type_max(ty: &str) -> i128 {
    match ty {
        "u8" => i128::from(u8::MAX),
        "u16" => i128::from(u16::MAX),
        "u32" => i128::from(u32::MAX),
        "u64" => i128::from(u64::MAX),
        "u128" => i128::MAX,
        "usize" => i128::from(u64::MAX),
        "i8" => i128::from(i8::MAX),
        "i16" => i128::from(i16::MAX),
        "i32" => i128::from(i32::MAX),
        "i64" => i128::from(i64::MAX),
        "i128" => i128::MAX,
        "isize" => i128::from(i64::MAX),
        _ => i128::from(i32::MAX),
    }
}

/// Default fold limit when no operand carries a type suffix: the smallest
/// limit an unannotated literal can end up with is dwarfed by `i32`'s in
/// practice, but a bound variable could be `u8`/`i8`, so proofs through a
/// *variable* bound use [`FALLBACK_MAX`] instead.
// ce:allow(cast, reason = "const context: widening i32::MAX into i128 is lossless")
const DEFAULT_MAX: i128 = i32::MAX as i128;

/// Limit used when a bound variable's concrete integer type is unknown:
/// `i8::MAX`, the smallest maximum any integer type has, so the proof
/// holds whatever the type turns out to be.
// ce:allow(cast, reason = "const context: widening i8::MAX into i128 is lossless")
const FALLBACK_MAX: i128 = i8::MAX as i128;

/// Parses an integer literal token (underscores, radix prefixes, and type
/// suffixes included) into its value and optional suffix.
fn parse_int(text: &str) -> Option<(i128, Option<&'static str>)> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let mut body = clean.as_str();
    let mut suffix = None;
    for ty in INT_TYPES {
        if let Some(stripped) = body.strip_suffix(ty) {
            // `0x1e` must not lose a hex digit to suffix stripping: only
            // strip when what remains is a well-formed literal body.
            if !stripped.is_empty() && stripped != "0x" && stripped != "0X" {
                body = stripped;
                suffix = Some(*ty);
                break;
            }
        }
    }
    let (digits, radix) = if let Some(rest) = body.strip_prefix("0x").or(body.strip_prefix("0X")) {
        (rest, 16)
    } else if let Some(rest) = body.strip_prefix("0o").or(body.strip_prefix("0O")) {
        (rest, 8)
    } else if let Some(rest) = body.strip_prefix("0b").or(body.strip_prefix("0B")) {
        (rest, 2)
    } else {
        (body, 10)
    };
    i128::from_str_radix(digits, radix)
        .ok()
        .map(|v| (v, suffix))
}

/// An upper bound attached to an identifier.
#[derive(Debug, Clone, PartialEq)]
enum Upper {
    /// `ident < <recv>.len()` — `recv` is a normalized receiver text.
    LtLen(String),
    /// `ident < value`.
    LtConst(i128),
}

/// Everything known about one identifier.
#[derive(Debug, Clone, Default)]
struct IdentFact {
    /// Provably integer-typed.
    int: bool,
    /// Provably float-typed (suppresses arithmetic flagging).
    float: bool,
    /// Exact constant value, when bound from a literal.
    value: Option<i128>,
    /// Strict upper bound, when guarded or range-bound.
    upper: Option<Upper>,
    /// Concrete integer type, when an annotation or suffix names one.
    ty: Option<&'static str>,
}

/// One lexical scope's facts. `barrier` frames (function bodies) stop
/// lookups from reaching enclosing functions.
#[derive(Debug, Default)]
struct Frame {
    barrier: bool,
    idents: BTreeMap<String, IdentFact>,
    /// `recv.len() >= value` facts, keyed by normalized receiver text.
    len_ge: BTreeMap<String, i128>,
    /// `lhs >= rhs` guard facts as normalized expression texts.
    ge_pairs: Vec<(String, String)>,
}

impl Frame {
    fn barrier() -> Self {
        Frame {
            barrier: true,
            ..Frame::default()
        }
    }
}

/// Facts parsed out of one guard condition, applied to a fresh frame.
#[derive(Debug, Default)]
struct GuardFacts {
    idents: Vec<(String, IdentFact)>,
    len_ge: Vec<(String, i128)>,
    ge_pairs: Vec<(String, String)>,
}

impl GuardFacts {
    fn is_empty(&self) -> bool {
        self.idents.is_empty() && self.len_ge.is_empty() && self.ge_pairs.is_empty()
    }
}

struct Walker<'a> {
    code: &'a [&'a Token],
    frames: Vec<Frame>,
    out: FileDataflow,
}

/// How one operand of an arithmetic op classifies.
#[derive(Debug, Clone)]
enum Operand {
    /// An integer constant (literal or const-bound ident).
    Const(i128, Option<&'static str>),
    /// A provably-integer identifier with its facts.
    IntIdent(String, IdentFact),
    /// `<recv>.len()`.
    Len(String),
    /// Provably integer but otherwise unknown (e.g. an `as usize` cast).
    IntUnknown,
    /// Provably float — never flagged.
    Float,
    /// Unknown type; carries normalized text for `>=`-pair matching.
    Unknown(Option<String>),
}

impl Operand {
    fn provably_int(&self) -> bool {
        matches!(
            self,
            Operand::Const(..) | Operand::IntIdent(..) | Operand::Len(_) | Operand::IntUnknown
        )
    }

    fn is_float(&self) -> bool {
        matches!(self, Operand::Float)
    }
}

impl<'a> Walker<'a> {
    // ---- frame and fact plumbing -------------------------------------

    fn lookup(&self, name: &str) -> Option<IdentFact> {
        for frame in self.frames.iter().rev() {
            if let Some(f) = frame.idents.get(name) {
                return Some(f.clone());
            }
            if frame.barrier {
                break;
            }
        }
        None
    }

    fn len_ge(&self, recv: &str) -> Option<i128> {
        let mut best = None;
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.len_ge.get(recv) {
                best = Some(best.map_or(*v, |b: i128| b.max(*v)));
            }
            if frame.barrier {
                break;
            }
        }
        best
    }

    fn has_ge_pair(&self, lhs: &str, rhs: &str) -> bool {
        for frame in self.frames.iter().rev() {
            if frame.ge_pairs.iter().any(|(l, r)| l == lhs && r == rhs) {
                return true;
            }
            if frame.barrier {
                break;
            }
        }
        false
    }

    fn set_fact(&mut self, name: String, fact: IdentFact) {
        self.kill_ident(&name);
        if let Some(top) = self.frames.last_mut() {
            top.idents.insert(name, fact);
        }
    }

    /// Invalidates every *value* fact about `name` — its constant, its
    /// upper bound, and every derived fact whose text mentions it (a
    /// reassigned receiver invalidates its old length). Typedness stays:
    /// assignment cannot change a variable's type.
    fn kill_ident(&mut self, name: &str) {
        let mentions = |text: &str| text.split(' ').any(|t| t == name);
        for frame in self.frames.iter_mut().rev() {
            if let Some(f) = frame.idents.get_mut(name) {
                f.value = None;
                f.upper = None;
            }
            for fact in frame.idents.values_mut() {
                if let Some(Upper::LtLen(recv)) = &fact.upper {
                    if mentions(recv) {
                        fact.upper = None;
                    }
                }
            }
            frame.len_ge.retain(|recv, _| !mentions(recv));
            frame.ge_pairs.retain(|(l, r)| !mentions(l) && !mentions(r));
            if frame.barrier {
                break;
            }
        }
    }

    /// Kills `len()`-derived facts about one receiver (after `push` etc.).
    fn kill_len(&mut self, recv: &str) {
        for frame in self.frames.iter_mut().rev() {
            frame.len_ge.remove(recv);
            for fact in frame.idents.values_mut() {
                if fact.upper == Some(Upper::LtLen(recv.to_string())) {
                    fact.upper = None;
                }
            }
            if frame.barrier {
                break;
            }
        }
    }

    // ---- token helpers -----------------------------------------------

    fn text(&self, i: usize) -> &str {
        self.code[i].text.as_str()
    }

    fn kind(&self, i: usize) -> TokenKind {
        self.code[i].kind
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        i < self.code.len() && self.code[i].is_punct(p)
    }

    fn is_ident(&self, i: usize, t: &str) -> bool {
        i < self.code.len() && self.code[i].is_ident(t)
    }

    /// Finds the matching close for an open delimiter at `open`, tracking
    /// all three bracket kinds together.
    fn matching(&self, open: usize, end: usize) -> usize {
        let close = match self.text(open) {
            "{" => "}",
            "(" => ")",
            "[" => "]",
            _ => return open,
        };
        let opens = ["{", "(", "["];
        let closes = ["}", ")", "]"];
        let mut depth = 0usize;
        for i in open..end {
            if self.kind(i) == TokenKind::Punct {
                let t = self.text(i);
                if opens.contains(&t) {
                    depth += 1;
                } else if closes.contains(&t) {
                    depth -= 1;
                    if depth == 0 {
                        if t != close {
                            return i; // unbalanced; stop where we are
                        }
                        return i;
                    }
                }
            }
        }
        end.saturating_sub(1).max(open)
    }

    /// The first `{` at delimiter depth 0 in `start..end`, or `end`.
    fn body_open(&self, start: usize, end: usize) -> usize {
        let mut depth = 0usize;
        for i in start..end {
            if self.kind(i) == TokenKind::Punct {
                match self.text(i) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => return i,
                    ";" if depth == 0 => return end, // bodiless (trait fn)
                    _ => {}
                }
            }
        }
        end
    }

    /// Normalized text of tokens `start..end`, joined with single spaces.
    fn span_text(&self, start: usize, end: usize) -> String {
        let mut s = String::new();
        for i in start..end {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(self.text(i));
        }
        s
    }

    /// Captures a simple receiver chain ending at token `last` (inclusive),
    /// walking back through `ident (. ident)*` and `self`-rooted chains.
    /// Returns the normalized text and the index of the chain's first
    /// token, or `None` if the expression ending there is not a chain.
    fn chain_back(&self, last: usize) -> Option<(String, usize)> {
        if (self.kind(last) != TokenKind::Ident || is_keyword(self.text(last)))
            && !self.is_ident(last, "self")
        {
            return None;
        }
        let mut first = last;
        while first >= 2
            && self.is_punct(first - 1, ".")
            && (self.kind(first - 2) == TokenKind::Ident
                && (!is_keyword(self.text(first - 2)) || self.is_ident(first - 2, "self")))
        {
            first -= 2;
        }
        Some((self.span_text(first, last + 1), first))
    }

    /// Captures a simple operand *ending* just before `op_idx` (i.e. the
    /// left operand of a binary op), returning its normalized text when it
    /// is a chain or a call `chain ( … )`.
    fn left_operand_text(&self, op_idx: usize) -> Option<String> {
        if op_idx == 0 {
            return None;
        }
        let last = op_idx - 1;
        if self.is_punct(last, ")") {
            // A call: find the open paren, then the chain before it.
            let mut depth = 0usize;
            let mut open = None;
            for i in (0..=last).rev() {
                if self.is_punct(i, ")") {
                    depth += 1;
                } else if self.is_punct(i, "(") {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(i);
                        break;
                    }
                }
            }
            let open = open?;
            if open == 0 {
                return None;
            }
            let (chain, first) = self.chain_back(open - 1)?;
            let _ = chain;
            return Some(self.span_text(first, last + 1));
        }
        let (chain, _) = self.chain_back(last)?;
        Some(chain)
    }

    /// Captures a simple operand *starting* at `start` (the right operand
    /// of a binary op): a chain, optionally followed by one call's
    /// argument list. Returns `(text, one-past-end)`.
    fn right_operand_text(&self, start: usize, end: usize) -> Option<(String, usize)> {
        if start >= end {
            return None;
        }
        if self.kind(start) == TokenKind::Int {
            return Some((self.text(start).to_string(), start + 1));
        }
        if (self.kind(start) != TokenKind::Ident || is_keyword(self.text(start)))
            && !self.is_ident(start, "self")
        {
            return None;
        }
        let mut i = start;
        while i + 2 < end && self.is_punct(i + 1, ".") && self.kind(i + 2) == TokenKind::Ident {
            i += 2;
        }
        let mut stop = i + 1;
        if stop < end && self.is_punct(stop, "(") {
            stop = self.matching(stop, end) + 1;
        }
        Some((self.span_text(start, stop), stop))
    }

    // ---- the walk ----------------------------------------------------

    fn walk(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            let t = self.code[i];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "fn") => i = self.handle_fn(i, end),
                (TokenKind::Ident, "if") => i = self.handle_if(i, end),
                (TokenKind::Ident, "while") => i = self.handle_while(i, end),
                (TokenKind::Ident, "for") => i = self.handle_for(i, end),
                (TokenKind::Ident, "loop") => i = self.handle_loop(i, end),
                (TokenKind::Ident, "let") => i = self.handle_let(i, end),
                (TokenKind::Punct, "{") => {
                    let close = self.matching(i, end);
                    self.frames.push(Frame::default());
                    self.walk(i + 1, close);
                    self.frames.pop();
                    i = close + 1;
                }
                (TokenKind::Punct, "[") if self.is_postfix_bracket(i) => {
                    self.check_index(i, end);
                    i += 1; // contents are walked linearly
                }
                (TokenKind::Punct, "+")
                | (TokenKind::Punct, "-")
                | (TokenKind::Punct, "*")
                | (TokenKind::Punct, "<<") => {
                    self.check_arith(i, end, false);
                    i += 1;
                }
                (TokenKind::Punct, "+=")
                | (TokenKind::Punct, "-=")
                | (TokenKind::Punct, "*=")
                | (TokenKind::Punct, "<<=") => {
                    self.check_arith(i, end, true);
                    i += 1;
                }
                (TokenKind::Punct, "=" | "/=" | "%=" | ">>=" | "&=" | "|=" | "^=") => {
                    // Plain or non-arith compound assignment to a simple
                    // ident or chain head: kill its facts.
                    if i > 0 {
                        if let Some((chain, first)) = self.chain_back(i - 1) {
                            let _ = chain;
                            let head = self.text(first).to_string();
                            if !is_keyword(&head) || head == "self" {
                                self.kill_ident(&head);
                            }
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, "&") if self.is_ident_at(i + 1, "mut") => {
                    // `&mut x` hands out mutable access: kill x.
                    if i + 2 < end && self.kind(i + 2) == TokenKind::Ident {
                        let name = self.text(i + 2).to_string();
                        if !is_keyword(&name) {
                            self.kill_ident(&name);
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, ".")
                    if i + 1 < end
                        && self.kind(i + 1) == TokenKind::Ident
                        && LEN_MUTATORS.contains(&self.text(i + 1))
                        && self.is_punct(i + 2, "(") =>
                {
                    if i > 0 {
                        if let Some((recv, _)) = self.chain_back(i - 1) {
                            self.kill_len(&recv);
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    fn is_ident_at(&self, i: usize, t: &str) -> bool {
        i < self.code.len() && self.code[i].is_ident(t)
    }

    /// Whether the `[` at `i` is a postfix index (receiver expression ends
    /// just before it), not an array literal, type, or attribute.
    fn is_postfix_bracket(&self, i: usize) -> bool {
        if i == 0 {
            return false;
        }
        let prev = self.code[i - 1];
        match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text) || prev.text == "self",
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        }
    }

    // ---- statements --------------------------------------------------

    /// `fn name(params) -> ret { body }` — a fresh barrier frame seeded
    /// with parameter typedness facts.
    fn handle_fn(&mut self, fn_idx: usize, end: usize) -> usize {
        let open = self.body_open(fn_idx + 1, end);
        if open >= end {
            return fn_idx + 1; // bodiless (trait method) or garbled
        }
        let close = self.matching(open, end);
        let mut frame = Frame::barrier();
        // The parameter list is the first `(` outside the generics.
        let mut angle = 0i64;
        let mut param_paren = None;
        for j in fn_idx + 1..open {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, "<<") => angle += 2,
                (TokenKind::Punct, ">>") => angle -= 2,
                (TokenKind::Punct, "(") if angle <= 0 => {
                    param_paren = Some(j);
                    break;
                }
                _ => {}
            }
        }
        // Parameter scan: `[mut] ident : [&] [mut] type` at paren depth 1.
        if let Some(paren) = param_paren {
            let pclose = self.matching(paren, open);
            let mut j = paren + 1;
            let mut depth = 1usize;
            while j < pclose {
                match (self.kind(j), self.text(j)) {
                    (TokenKind::Punct, "(") | (TokenKind::Punct, "[") | (TokenKind::Punct, "<") => {
                        depth += 1
                    }
                    (TokenKind::Punct, ")") | (TokenKind::Punct, "]") | (TokenKind::Punct, ">") => {
                        depth = depth.saturating_sub(1)
                    }
                    (TokenKind::Ident, name)
                        if depth == 1 && !is_keyword(name) && self.is_punct(j + 1, ":") =>
                    {
                        let mut k = j + 2;
                        while k < pclose
                            && (self.is_punct(k, "&")
                                || self.kind(k) == TokenKind::Lifetime
                                || self.is_ident_at(k, "mut"))
                        {
                            k += 1;
                        }
                        if k < pclose && self.kind(k) == TokenKind::Ident {
                            let ty = self.text(k);
                            if let Some(ty) = INT_TYPES.iter().find(|t| **t == ty) {
                                frame.idents.insert(
                                    name.to_string(),
                                    IdentFact {
                                        int: true,
                                        ty: Some(ty),
                                        ..IdentFact::default()
                                    },
                                );
                            } else if ty == "f32" || ty == "f64" {
                                frame.idents.insert(
                                    name.to_string(),
                                    IdentFact {
                                        float: true,
                                        ..IdentFact::default()
                                    },
                                );
                            }
                        }
                        j = k;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        self.frames.push(frame);
        self.walk(open + 1, close);
        self.frames.pop();
        close + 1
    }

    /// `if cond { then } [else if … ] [else { … }]`.
    fn handle_if(&mut self, if_idx: usize, end: usize) -> usize {
        if self.is_ident_at(if_idx + 1, "let") {
            // if-let: no value facts, walk body in a plain frame.
            let open = self.body_open(if_idx + 1, end);
            if open >= end {
                return if_idx + 1;
            }
            let close = self.matching(open, end);
            self.walk(if_idx + 2, open); // scrutinee expression
            self.frames.push(Frame::default());
            self.walk(open + 1, close);
            self.frames.pop();
            return self.handle_else(close + 1, end);
        }
        let open = self.body_open(if_idx + 1, end);
        if open >= end {
            return if_idx + 1;
        }
        let close = self.matching(open, end);
        // Walk the condition itself first (it may contain sites).
        self.walk(if_idx + 1, open);
        let facts = self.parse_condition(if_idx + 1, open);
        let mut frame = Frame::default();
        apply_guard(&mut frame, facts);
        self.frames.push(frame);
        self.walk(open + 1, close);
        self.frames.pop();
        // Early-exit negation: `if i >= n { return; }` leaves `i < n`
        // true afterwards, when there is no else branch.
        let has_else = self.is_ident_at(close + 1, "else");
        if !has_else && self.block_is_early_exit(open, close) {
            let neg = self.negated_condition(if_idx + 1, open);
            if let Some(top) = self.frames.last_mut() {
                apply_guard(top, neg);
            }
        }
        self.handle_else(close + 1, end)
    }

    fn handle_else(&mut self, i: usize, end: usize) -> usize {
        if !self.is_ident_at(i, "else") {
            return i;
        }
        if self.is_ident_at(i + 1, "if") {
            return self.handle_if(i + 1, end);
        }
        if self.is_punct(i + 1, "{") {
            let close = self.matching(i + 1, end);
            self.frames.push(Frame::default());
            self.walk(i + 2, close);
            self.frames.pop();
            return close + 1;
        }
        i + 1
    }

    /// Whether a block consists of a single `return`/`break`/`continue`
    /// statement (the shape the early-exit negation is sound for).
    fn block_is_early_exit(&self, open: usize, close: usize) -> bool {
        if open + 1 >= close {
            return false;
        }
        matches!(self.text(open + 1), "return" | "break" | "continue")
    }

    /// `while cond { body }` — body-assigned idents are killed *before*
    /// the guard fact is asserted, because the guard re-holds at the top
    /// of every iteration but pre-loop facts do not.
    fn handle_while(&mut self, w_idx: usize, end: usize) -> usize {
        let open = self.body_open(w_idx + 1, end);
        if open >= end {
            return w_idx + 1;
        }
        let close = self.matching(open, end);
        self.walk(w_idx + 1, open); // condition sites, pre-kill facts
        self.kill_body_assigned(open + 1, close);
        let facts = if self.is_ident_at(w_idx + 1, "let") {
            GuardFacts::default()
        } else {
            self.parse_condition(w_idx + 1, open)
        };
        let mut frame = Frame::default();
        apply_guard(&mut frame, facts);
        self.frames.push(frame);
        self.walk(open + 1, close);
        self.frames.pop();
        close + 1
    }

    /// `for pat in iter { body }` — an exclusive int range bounds the
    /// loop variable.
    fn handle_for(&mut self, f_idx: usize, end: usize) -> usize {
        let open = self.body_open(f_idx + 1, end);
        if open >= end {
            return f_idx + 1;
        }
        let close = self.matching(open, end);
        // Locate `in` at depth 0 between the pattern and the iterator.
        let mut in_idx = None;
        let mut depth = 0usize;
        for j in f_idx + 1..open {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Ident, "in") if depth == 0 => {
                    in_idx = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let Some(in_idx) = in_idx else {
            return open + 1;
        };
        self.walk(in_idx + 1, open); // iterator expression sites
        self.kill_body_assigned(open + 1, close);
        let mut frame = Frame::default();
        // Pattern: a bare ident (optionally `mut`) picks up range bounds.
        let mut pat = f_idx + 1;
        if self.is_ident_at(pat, "mut") {
            pat += 1;
        }
        if pat + 1 == in_idx && self.kind(pat) == TokenKind::Ident && !is_keyword(self.text(pat)) {
            let var = self.text(pat).to_string();
            if let Some(fact) = self.range_bound_fact(in_idx + 1, open) {
                frame.idents.insert(var, fact);
            }
        }
        self.frames.push(frame);
        self.walk(open + 1, close);
        self.frames.pop();
        close + 1
    }

    /// The loop-variable fact for an `A..B` / `A..=B` iterator expression.
    fn range_bound_fact(&self, start: usize, end: usize) -> Option<IdentFact> {
        let mut depth = 0usize;
        let mut dots = None;
        for j in start..end {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Punct, "..") | (TokenKind::Punct, "..=") if depth == 0 => {
                    dots = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let dots = dots?;
        let inclusive = self.text(dots) == "..=";
        let hi_start = dots + 1;
        if hi_start >= end {
            return None;
        }
        let mut fact = IdentFact {
            int: true,
            ..IdentFact::default()
        };
        // `..xs.len()` upper bound.
        if let Some((text, stop)) = self.right_operand_text(hi_start, end) {
            if stop == end && text.ends_with(". len ( )") {
                if !inclusive {
                    let recv = text.trim_end_matches(" . len ( )").to_string();
                    fact.upper = Some(Upper::LtLen(recv));
                }
                return Some(fact);
            }
        }
        // `..N` literal upper bound.
        if hi_start + 1 == end && self.kind(hi_start) == TokenKind::Int {
            if let Some((v, ty)) = parse_int(self.text(hi_start)) {
                fact.upper = Some(Upper::LtConst(if inclusive { v + 1 } else { v }));
                fact.ty = ty;
            }
            return Some(fact);
        }
        // `..n` where n is a known constant.
        if hi_start + 1 == end && self.kind(hi_start) == TokenKind::Ident {
            if let Some(f) = self.lookup(self.text(hi_start)) {
                if let Some(v) = f.value {
                    fact.upper = Some(Upper::LtConst(if inclusive { v + 1 } else { v }));
                }
            }
            return Some(fact);
        }
        Some(fact)
    }

    /// `loop { body }`.
    fn handle_loop(&mut self, l_idx: usize, end: usize) -> usize {
        if !self.is_punct(l_idx + 1, "{") {
            return l_idx + 1;
        }
        let close = self.matching(l_idx + 1, end);
        self.kill_body_assigned(l_idx + 2, close);
        self.frames.push(Frame::default());
        self.walk(l_idx + 2, close);
        self.frames.pop();
        close + 1
    }

    /// Kills facts about every identifier a loop body assigns to, passes
    /// `&mut` on, or calls a length-mutating method on. Runs before the
    /// loop's guard facts are asserted.
    fn kill_body_assigned(&mut self, start: usize, end: usize) {
        let mut killed: Vec<String> = Vec::new();
        let mut len_killed: Vec<String> = Vec::new();
        for j in start..end {
            if self.kind(j) != TokenKind::Punct {
                continue;
            }
            let t = self.text(j);
            let is_assign = matches!(
                t,
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "<<=" | ">>=" | "&=" | "|=" | "^="
            );
            if is_assign && j > start {
                if let Some((_, first)) = self.chain_back(j - 1) {
                    let head = self.text(first).to_string();
                    if !is_keyword(&head) || head == "self" {
                        killed.push(head);
                    }
                }
            } else if t == "&" && self.is_ident_at(j + 1, "mut") {
                if j + 2 < end && self.kind(j + 2) == TokenKind::Ident {
                    killed.push(self.text(j + 2).to_string());
                }
            } else if t == "."
                && j + 1 < end
                && self.kind(j + 1) == TokenKind::Ident
                && LEN_MUTATORS.contains(&self.text(j + 1))
                && self.is_punct(j + 2, "(")
                && j > start
            {
                if let Some((recv, _)) = self.chain_back(j - 1) {
                    len_killed.push(recv);
                }
            }
        }
        for name in killed {
            self.kill_ident(&name);
        }
        for recv in len_killed {
            self.kill_len(&recv);
        }
    }

    /// `let [mut] name [: ty] = init ;` — binds simple value facts.
    /// The fact is applied immediately (the old binding is killed first),
    /// which is sound because the recognized initializer shapes cannot
    /// contain sites that consult the new binding.
    fn handle_let(&mut self, let_idx: usize, end: usize) -> usize {
        let mut i = let_idx + 1;
        if self.is_ident_at(i, "mut") {
            i += 1;
        }
        if i >= end || self.kind(i) != TokenKind::Ident || is_keyword(self.text(i)) {
            return let_idx + 1; // destructuring pattern: no facts
        }
        let name = self.text(i).to_string();
        let mut fact = IdentFact::default();
        i += 1;
        if self.is_punct(i, ":") {
            let mut k = i + 1;
            while k < end
                && (self.is_punct(k, "&")
                    || self.kind(k) == TokenKind::Lifetime
                    || self.is_ident_at(k, "mut"))
            {
                k += 1;
            }
            if k < end && self.kind(k) == TokenKind::Ident {
                let ty = self.text(k);
                if let Some(ty) = INT_TYPES.iter().find(|t| **t == ty) {
                    fact.int = true;
                    fact.ty = Some(ty);
                } else if ty == "f32" || ty == "f64" {
                    fact.float = true;
                }
            }
            // Skip to the `=` or `;` at depth 0.
            let mut depth = 0usize;
            while k < end {
                match (self.kind(k), self.text(k)) {
                    (TokenKind::Punct, "(") | (TokenKind::Punct, "[") | (TokenKind::Punct, "<") => {
                        depth += 1
                    }
                    (TokenKind::Punct, ")") | (TokenKind::Punct, "]") | (TokenKind::Punct, ">") => {
                        depth = depth.saturating_sub(1)
                    }
                    (TokenKind::Punct, "=") | (TokenKind::Punct, ";") if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            i = k;
        }
        if !self.is_punct(i, "=") {
            self.set_fact(name, fact);
            return i;
        }
        let init = i + 1;
        // Find the statement end at depth 0.
        let mut depth = 0usize;
        let mut semi = end;
        for j in init..end {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") | (TokenKind::Punct, "{") => {
                    depth += 1
                }
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") | (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Punct, ";") if depth == 0 => {
                    semi = j;
                    break;
                }
                _ => {}
            }
        }
        self.bind_init_fact(&mut fact, init, semi);
        self.set_fact(name, fact);
        // Resume at the initializer (walked linearly for sites) so the
        // binding's own `=` is not mistaken for a fact-killing assignment.
        init
    }

    /// Recognizes the simple initializer shapes that yield value facts.
    fn bind_init_fact(&mut self, fact: &mut IdentFact, init: usize, semi: usize) {
        if init >= semi {
            return;
        }
        // `= 42;`
        if init + 1 == semi && self.kind(init) == TokenKind::Int {
            if let Some((v, ty)) = parse_int(self.text(init)) {
                fact.int = true;
                fact.value = Some(v);
                fact.upper = Some(Upper::LtConst(v + 1));
                if fact.ty.is_none() {
                    fact.ty = ty;
                }
            }
            return;
        }
        // `= 1.5;`
        if init + 1 == semi && self.kind(init) == TokenKind::Float {
            fact.float = true;
            return;
        }
        // `= <chain>.len();`
        if let Some((text, stop)) = self.right_operand_text(init, semi) {
            if stop == semi && text.ends_with(". len ( )") {
                fact.int = true;
                fact.ty = Some("usize");
                return;
            }
        }
        // `= <chain>.len() - 1;` — the canonical last index, a valid
        // upper bound whenever the receiver is known non-empty (without
        // that guard the subtraction itself is the arith rule's problem).
        let span = self.span_text(init, semi);
        if let Some(recv) = span.strip_suffix(" . len ( ) - 1") {
            fact.int = true;
            fact.ty = Some("usize");
            if self.len_ge(recv).is_some_and(|n| n >= 1) {
                fact.upper = Some(Upper::LtLen(recv.to_string()));
            }
            return;
        }
        // `= <expr> as <int ty>;`
        if semi >= 2 && self.kind(semi - 1) == TokenKind::Ident && self.is_ident_at(semi - 2, "as")
        {
            let ty = self.text(semi - 1);
            if let Some(ty) = INT_TYPES.iter().find(|t| **t == ty) {
                fact.int = true;
                fact.ty = Some(ty);
            } else if ty == "f32" || ty == "f64" {
                fact.float = true;
            }
            return;
        }
        // `= <expr>.min(<bound>);`  /  `= <expr>.clamp(<lo>, <hi>);`
        // The bound argument becomes an inclusive upper bound.
        if self.is_punct(semi.wrapping_sub(1), ")") {
            let mut depth = 0usize;
            let mut open = None;
            for j in (init..semi).rev() {
                if self.is_punct(j, ")") {
                    depth += 1;
                } else if self.is_punct(j, "(") {
                    depth -= 1;
                    if depth == 0 {
                        open = Some(j);
                        break;
                    }
                }
            }
            if let Some(open) = open {
                if open >= 2 && self.is_punct(open - 2, ".") {
                    let method = self.text(open - 1);
                    if method == "min" || method == "clamp" {
                        // min: single arg is the bound; clamp: second arg.
                        let bound_range = if method == "min" {
                            Some((open + 1, semi - 1))
                        } else {
                            // Find the depth-0 comma inside the parens.
                            let mut d = 0usize;
                            let mut comma = None;
                            for j in open + 1..semi - 1 {
                                match (self.kind(j), self.text(j)) {
                                    (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => d += 1,
                                    (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                                        d = d.saturating_sub(1)
                                    }
                                    (TokenKind::Punct, ",") if d == 0 => {
                                        comma = Some(j);
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            comma.map(|c| (c + 1, semi - 1))
                        };
                        if let Some((bs, be)) = bound_range {
                            self.min_bound_fact(fact, bs, be);
                        }
                    }
                }
            }
        }
    }

    /// Interprets a `.min(bound)` / `.clamp(_, bound)` argument as an
    /// inclusive upper bound on the bound variable.
    fn min_bound_fact(&self, fact: &mut IdentFact, bs: usize, be: usize) {
        fact.int = true; // min/clamp against an int bound implies int
                         // `.min(N)` literal.
        if bs + 1 == be && self.kind(bs) == TokenKind::Int {
            if let Some((v, ty)) = parse_int(self.text(bs)) {
                fact.upper = Some(Upper::LtConst(v + 1));
                if fact.ty.is_none() {
                    fact.ty = ty;
                }
            } else {
                fact.int = false;
            }
            return;
        }
        // `.min(bound)` where `bound` is a variable: the clamp result
        // inherits the bound variable's own value or upper bound.
        if bs + 1 == be && self.kind(bs) == TokenKind::Ident {
            if let Some(f) = self.lookup(self.text(bs)) {
                if let Some(v) = f.value {
                    fact.upper = Some(Upper::LtConst(v + 1));
                    if fact.ty.is_none() {
                        fact.ty = f.ty;
                    }
                    return;
                }
                if f.upper.is_some() {
                    fact.upper = f.upper;
                    if fact.ty.is_none() {
                        fact.ty = f.ty;
                    }
                    return;
                }
            }
            fact.int = false;
            return;
        }
        // `.min(<chain>.len() - 1)` — the canonical last-index clamp.
        let text = self.span_text(bs, be);
        if let Some(recv) = text.strip_suffix(" . len ( ) - 1") {
            fact.upper = Some(Upper::LtLen(recv.to_string()));
            return;
        }
        fact.int = false; // unknown bound shape: typedness unproven too
    }

    // ---- guards -------------------------------------------------------

    /// Parses a guard condition in `start..end` into facts. Conjunctions
    /// contribute each recognized conjunct; any top-level `||` voids all.
    fn parse_condition(&self, start: usize, end: usize) -> GuardFacts {
        let mut facts = GuardFacts::default();
        let mut depth = 0usize;
        let mut piece_start = start;
        let mut pieces = Vec::new();
        for j in start..end {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") | (TokenKind::Punct, "{") => {
                    depth += 1
                }
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") | (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Punct, "||") if depth == 0 => return facts,
                (TokenKind::Punct, "&&") if depth == 0 => {
                    pieces.push((piece_start, j));
                    piece_start = j + 1;
                }
                _ => {}
            }
        }
        pieces.push((piece_start, end));
        for (s, e) in pieces {
            self.parse_comparison(s, e, &mut facts);
        }
        facts
    }

    /// Parses one conjunct into facts, when it is a recognized shape.
    fn parse_comparison(&self, start: usize, end: usize, facts: &mut GuardFacts) {
        if start >= end {
            return;
        }
        // `!xs.is_empty()`
        if self.is_punct(start, "!") {
            if let Some((text, stop)) = self.right_operand_text(start + 1, end) {
                if stop == end {
                    if let Some(recv) = text.strip_suffix(" . is_empty ( )") {
                        facts.len_ge.push((recv.to_string(), 1));
                    }
                }
            }
            return;
        }
        // Find the comparison operator at depth 0.
        let mut depth = 0usize;
        let mut cmp = None;
        for j in start..end {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Punct, op)
                    if depth == 0 && matches!(op, "<" | "<=" | ">" | ">=" | "==") =>
                {
                    cmp = Some((j, op));
                    break;
                }
                _ => {}
            }
        }
        let Some((at, op)) = cmp else { return };
        let lhs = match self.comparison_side(start, at) {
            Some(s) => s,
            None => return,
        };
        let rhs = match self.comparison_side(at + 1, end) {
            Some(s) => s,
            None => return,
        };
        // Normalize to `small REL big` by flipping `>`/`>=`.
        let (small, big, strict) = match op {
            "<" => (&lhs, &rhs, true),
            "<=" => (&lhs, &rhs, false),
            ">" => (&rhs, &lhs, true),
            ">=" => (&rhs, &lhs, false),
            "==" => {
                if let (Side::Ident(name), Side::Const(v, ty)) = (&lhs, &rhs) {
                    facts.idents.push((
                        name.clone(),
                        IdentFact {
                            int: true,
                            value: Some(*v),
                            upper: Some(Upper::LtConst(v + 1)),
                            ty: *ty,
                            ..IdentFact::default()
                        },
                    ));
                }
                return;
            }
            _ => return,
        };
        // `big >= small` pair fact, for subtraction proofs.
        facts
            .ge_pairs
            .push((big.text().to_string(), small.text().to_string()));
        match (small, big) {
            (Side::Ident(name), Side::Len(recv)) if strict => {
                facts.idents.push((
                    name.clone(),
                    IdentFact {
                        int: true,
                        upper: Some(Upper::LtLen(recv.clone())),
                        ..IdentFact::default()
                    },
                ));
            }
            (Side::Ident(name), Side::Const(v, ty)) => {
                facts.idents.push((
                    name.clone(),
                    IdentFact {
                        int: true,
                        upper: Some(Upper::LtConst(if strict { *v } else { v + 1 })),
                        ty: *ty,
                        ..IdentFact::default()
                    },
                ));
            }
            (Side::Const(v, _), Side::Len(recv)) => {
                // `C < xs.len()` ⇒ len >= C+1 ; `C <= xs.len()` ⇒ len >= C.
                facts
                    .len_ge
                    .push((recv.clone(), if strict { v + 1 } else { *v }));
            }
            _ => {}
        }
    }

    /// The negation of a *single-comparison* condition, for early-exit
    /// blocks. Conjunctions and disjunctions negate to nothing usable.
    fn negated_condition(&self, start: usize, end: usize) -> GuardFacts {
        // Bail on any top-level `&&`/`||`/`!`.
        let mut depth = 0usize;
        for j in start..end {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Punct, "&&") | (TokenKind::Punct, "||") | (TokenKind::Punct, "!")
                    if depth == 0 =>
                {
                    return GuardFacts::default()
                }
                _ => {}
            }
        }
        // Rewrite the operator and reuse the positive parser.
        let mut depth = 0usize;
        for j in start..end {
            match (self.kind(j), self.text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    depth = depth.saturating_sub(1)
                }
                (TokenKind::Punct, op) if depth == 0 && matches!(op, "<" | "<=" | ">" | ">=") => {
                    let flipped = match op {
                        "<" => ">=",
                        "<=" => ">",
                        ">" => "<=",
                        _ => "<",
                    };
                    let mut facts = GuardFacts::default();
                    self.parse_flipped_comparison(start, j, end, flipped, &mut facts);
                    return facts;
                }
                _ => {}
            }
        }
        GuardFacts::default()
    }

    /// `parse_comparison` with the operator at `at` replaced by `flipped`.
    fn parse_flipped_comparison(
        &self,
        start: usize,
        at: usize,
        end: usize,
        flipped: &str,
        facts: &mut GuardFacts,
    ) {
        let lhs = match self.comparison_side(start, at) {
            Some(s) => s,
            None => return,
        };
        let rhs = match self.comparison_side(at + 1, end) {
            Some(s) => s,
            None => return,
        };
        let (small, big, strict) = match flipped {
            "<" => (&lhs, &rhs, true),
            "<=" => (&lhs, &rhs, false),
            ">" => (&rhs, &lhs, true),
            ">=" => (&rhs, &lhs, false),
            _ => return,
        };
        facts
            .ge_pairs
            .push((big.text().to_string(), small.text().to_string()));
        match (small, big) {
            (Side::Ident(name), Side::Len(recv)) if strict => {
                facts.idents.push((
                    name.clone(),
                    IdentFact {
                        int: true,
                        upper: Some(Upper::LtLen(recv.clone())),
                        ..IdentFact::default()
                    },
                ));
            }
            (Side::Ident(name), Side::Const(v, ty)) => {
                facts.idents.push((
                    name.clone(),
                    IdentFact {
                        int: true,
                        upper: Some(Upper::LtConst(if strict { *v } else { v + 1 })),
                        ty: *ty,
                        ..IdentFact::default()
                    },
                ));
            }
            (Side::Const(v, _), Side::Len(recv)) => {
                facts
                    .len_ge
                    .push((recv.clone(), if strict { v + 1 } else { *v }));
            }
            _ => {}
        }
    }

    /// One side of a comparison, when it is a recognized simple shape.
    fn comparison_side(&self, start: usize, end: usize) -> Option<Side> {
        if start >= end {
            return None;
        }
        if start + 1 == end && self.kind(start) == TokenKind::Int {
            let (v, ty) = parse_int(self.text(start))?;
            return Some(Side::Const(v, ty));
        }
        let (text, stop) = self.right_operand_text(start, end)?;
        if stop != end {
            return None;
        }
        if let Some(recv) = text.strip_suffix(" . len ( )") {
            return Some(Side::Len(recv.to_string()));
        }
        if start + 1 == end && self.kind(start) == TokenKind::Ident {
            let name = self.text(start);
            if !is_keyword(name) {
                // A const-valued ident compares like its value.
                if let Some(f) = self.lookup(name) {
                    if let Some(v) = f.value {
                        return Some(Side::Const(v, f.ty));
                    }
                }
                return Some(Side::Ident(name.to_string()));
            }
        }
        Some(Side::Expr(text))
    }

    // ---- sites --------------------------------------------------------

    /// Classifies the operand ending at `op_idx - 1`.
    fn left_operand(&self, op_idx: usize) -> Operand {
        if op_idx == 0 {
            return Operand::Unknown(None);
        }
        let prev = self.code[op_idx - 1];
        match prev.kind {
            TokenKind::Int => match parse_int(&prev.text) {
                Some((v, ty)) => Operand::Const(v, ty),
                None => Operand::IntUnknown,
            },
            TokenKind::Float => Operand::Float,
            TokenKind::Ident => {
                let name = prev.text.as_str();
                if INT_TYPES.contains(&name) {
                    // `expr as usize + 1` — cast result, provably int.
                    return Operand::IntUnknown;
                }
                if name == "f32" || name == "f64" {
                    return Operand::Float;
                }
                if is_keyword(name) && name != "self" {
                    return Operand::Unknown(None);
                }
                match self.lookup(name) {
                    Some(f) if f.float => Operand::Float,
                    Some(IdentFact {
                        value: Some(v), ty, ..
                    }) => Operand::Const(v, ty),
                    Some(f) if f.int => Operand::IntIdent(name.to_string(), f),
                    _ => Operand::Unknown(self.left_operand_text(op_idx)),
                }
            }
            TokenKind::Punct if prev.text == ")" => {
                // `<chain>.len() OP …` pattern.
                if op_idx >= 5
                    && self.is_punct(op_idx - 2, "(")
                    && self.is_ident_at(op_idx - 3, "len")
                    && self.is_punct(op_idx - 4, ".")
                {
                    if let Some((recv, _)) = self.chain_back(op_idx - 5) {
                        return Operand::Len(recv);
                    }
                }
                Operand::Unknown(self.left_operand_text(op_idx))
            }
            _ => Operand::Unknown(None),
        }
    }

    /// Classifies the operand starting at `start`.
    fn right_operand(&self, start: usize, end: usize) -> Operand {
        if start >= end {
            return Operand::Unknown(None);
        }
        let tok = self.code[start];
        match tok.kind {
            TokenKind::Int => match parse_int(&tok.text) {
                Some((v, ty)) => Operand::Const(v, ty),
                None => Operand::IntUnknown,
            },
            TokenKind::Float => Operand::Float,
            TokenKind::Punct if tok.text == "-" => {
                // Negative literal constant.
                if start + 1 < end && self.kind(start + 1) == TokenKind::Int {
                    if let Some((v, ty)) = parse_int(self.text(start + 1)) {
                        return Operand::Const(-v, ty);
                    }
                }
                Operand::Unknown(None)
            }
            TokenKind::Ident => {
                let name = tok.text.as_str();
                if is_keyword(name) && name != "self" {
                    return Operand::Unknown(None);
                }
                // Bare ident (not a call or chain)?
                let next_dot = self.is_punct(start + 1, ".");
                let next_call = self.is_punct(start + 1, "(") || self.is_punct(start + 1, "::");
                if !next_dot && !next_call {
                    return match self.lookup(name) {
                        Some(f) if f.float => Operand::Float,
                        Some(IdentFact {
                            value: Some(v), ty, ..
                        }) => Operand::Const(v, ty),
                        Some(f) if f.int => Operand::IntIdent(name.to_string(), f),
                        _ => Operand::Unknown(Some(name.to_string())),
                    };
                }
                // `<chain>.len()` as the right operand.
                if let Some((text, _)) = self.right_operand_text(start, end) {
                    if let Some(recv) = text.strip_suffix(" . len ( )") {
                        return Operand::Len(recv.to_string());
                    }
                    return Operand::Unknown(Some(text));
                }
                Operand::Unknown(None)
            }
            _ => Operand::Unknown(None),
        }
    }

    /// Records (and tries to prove) one arithmetic site at `op_idx`.
    fn check_arith(&mut self, op_idx: usize, end: usize, compound: bool) {
        let tok = self.code[op_idx];
        let op = tok.text.as_str();
        if !compound {
            // Binary use only: the previous token must end an operand.
            if op_idx == 0 {
                return;
            }
            let prev = self.code[op_idx - 1];
            let binary = match prev.kind {
                TokenKind::Ident => !is_keyword(&prev.text) || prev.text == "self",
                TokenKind::Int | TokenKind::Float => true,
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if !binary {
                return;
            }
            // `*const` / `*mut` raw-pointer types.
            if op == "*"
                && (self.is_ident_at(op_idx + 1, "const") || self.is_ident_at(op_idx + 1, "mut"))
            {
                return;
            }
        }
        let left = self.left_operand(op_idx);
        let right = self.right_operand(op_idx + 1, end);
        if left.is_float() || right.is_float() {
            return;
        }
        if !left.provably_int() && !right.provably_int() {
            return;
        }
        let base_op = op.trim_end_matches('=');
        let proven = self.prove_arith(base_op, &left, &right, op_idx);
        self.out.arith.push(ArithSite {
            line: tok.line,
            col: tok.col,
            op: op.to_string(),
            proven,
        });
        if compound {
            // The assigned ident's facts are now stale.
            if op_idx > 0 && self.kind(op_idx - 1) == TokenKind::Ident {
                let name = self.text(op_idx - 1).to_string();
                self.kill_ident(&name);
            } else if op_idx > 0 {
                if let Some((_, first)) = self.chain_back(op_idx - 1) {
                    let head = self.text(first).to_string();
                    self.kill_ident(&head);
                }
            }
        }
    }

    /// The in-range proof for one arithmetic site.
    fn prove_arith(&self, op: &str, left: &Operand, right: &Operand, op_idx: usize) -> bool {
        let limit = |a: &Operand, b: &Operand| -> i128 {
            let ty = match (a, b) {
                (Operand::Const(_, Some(t)), _) => Some(*t),
                (_, Operand::Const(_, Some(t))) => Some(*t),
                (Operand::IntIdent(_, f), _) if f.ty.is_some() => f.ty,
                (_, Operand::IntIdent(_, f)) if f.ty.is_some() => f.ty,
                _ => None,
            };
            ty.map_or(DEFAULT_MAX, type_max)
        };
        match op {
            "+" => match (left, right) {
                (Operand::Const(a, _), Operand::Const(b, _)) => a
                    .checked_add(*b)
                    .is_some_and(|r| r >= 0 && r <= limit(left, right)),
                (Operand::IntIdent(_, f), Operand::Const(c, _))
                | (Operand::Const(c, _), Operand::IntIdent(_, f)) => self.bounded_add(f, *c),
                _ => false,
            },
            "-" => {
                // Guard-pair proof: `big - small` under `big >= small`.
                if let (Some(l), Some(r)) = (operand_text(left, self, op_idx), right_text(right)) {
                    if self.has_ge_pair(&l, &r) {
                        return true;
                    }
                }
                match (left, right) {
                    (Operand::Const(a, _), Operand::Const(b, _)) => a
                        .checked_sub(*b)
                        .is_some_and(|r| r >= 0 && r <= limit(left, right)),
                    (Operand::Len(recv), Operand::Const(c, _)) => {
                        *c >= 0 && self.len_ge(recv).is_some_and(|k| k >= *c)
                    }
                    _ => false,
                }
            }
            "*" => match (left, right) {
                (Operand::Const(a, _), Operand::Const(b, _)) => a
                    .checked_mul(*b)
                    .is_some_and(|r| r >= 0 && r <= limit(left, right)),
                _ => false,
            },
            "<<" => match (left, right) {
                (Operand::Const(a, _), Operand::Const(b, _)) => u32::try_from(*b)
                    .ok()
                    .filter(|s| *s < 128)
                    .and_then(|s| a.checked_shl(s))
                    .is_some_and(|r| r >= 0 && r <= limit(left, right)),
                _ => false,
            },
            _ => false,
        }
    }

    /// `x + c` where `x` carries a strict upper bound: `x < B ⇒ x + c ≤
    /// B - 1 + c`. Length bounds absorb exactly `+ 1` (an index strictly
    /// below `len` is at most `len`, which always fits the index type);
    /// constant bounds use the ident's type limit, falling back to the
    /// smallest integer maximum when the type is unknown.
    fn bounded_add(&self, f: &IdentFact, c: i128) -> bool {
        if c < 0 {
            return false;
        }
        match &f.upper {
            Some(Upper::LtLen(_)) => c <= 1,
            Some(Upper::LtConst(b)) => {
                let max = f.ty.map_or(FALLBACK_MAX, type_max);
                b.checked_add(c).is_some_and(|r| r - 1 <= max)
            }
            None => false,
        }
    }

    /// Records (and tries to prove) one index site at `open` (a `[`).
    fn check_index(&mut self, open: usize, end: usize) {
        let close = self.matching(open, end);
        let tok = self.code[open];
        let recv = if open > 0 {
            self.chain_back(open - 1).map(|(text, _)| text)
        } else {
            None
        };
        let proven = self.prove_index(open + 1, close, recv.as_deref());
        self.out.indexes.push(IndexSite {
            line: tok.line,
            col: tok.col,
            proven,
        });
    }

    /// The boundedness proof for one index expression.
    fn prove_index(&self, start: usize, end: usize, recv: Option<&str>) -> bool {
        let Some(recv) = recv else { return false };
        if start >= end {
            return false;
        }
        // `xs[C]` with `xs.len() >= C + 1` known.
        if start + 1 == end && self.kind(start) == TokenKind::Int {
            if let Some((v, _)) = parse_int(self.text(start)) {
                return self.len_ge(recv).is_some_and(|k| k > v);
            }
            return false;
        }
        // `xs[i]` with `i < xs.len()` or `i == C < known len`.
        if start + 1 == end && self.kind(start) == TokenKind::Ident {
            let name = self.text(start);
            if let Some(f) = self.lookup(name) {
                if f.upper == Some(Upper::LtLen(recv.to_string())) {
                    return true;
                }
                if let Some(v) = f.value {
                    return self.len_ge(recv).is_some_and(|k| k > v);
                }
                // `i < B` with `xs.len() >= B` known.
                if let Some(Upper::LtConst(b)) = f.upper {
                    return self.len_ge(recv).is_some_and(|k| k >= b);
                }
            }
        }
        false
    }
}

/// One side of a comparison.
#[derive(Debug, Clone)]
enum Side {
    Ident(String),
    Const(i128, Option<&'static str>),
    Len(String),
    Expr(String),
}

impl Side {
    fn text(&self) -> String {
        match self {
            Side::Ident(s) => s.clone(),
            Side::Const(v, _) => v.to_string(),
            Side::Len(recv) => format!("{recv} . len ( )"),
            Side::Expr(s) => s.clone(),
        }
    }
}

fn apply_guard(frame: &mut Frame, facts: GuardFacts) {
    if facts.is_empty() {
        return;
    }
    for (name, fact) in facts.idents {
        frame.idents.insert(name, fact);
    }
    for (recv, v) in facts.len_ge {
        let e = frame.len_ge.entry(recv).or_insert(v);
        *e = (*e).max(v);
    }
    for pair in facts.ge_pairs {
        frame.ge_pairs.push(pair);
    }
}

/// Normalized left-operand text for the `>=`-pair subtraction proof.
fn operand_text(op: &Operand, w: &Walker<'_>, op_idx: usize) -> Option<String> {
    match op {
        Operand::IntIdent(name, _) => Some(name.clone()),
        Operand::Unknown(Some(text)) => Some(text.clone()),
        Operand::Len(recv) => Some(format!("{recv} . len ( )")),
        Operand::Const(v, _) => Some(v.to_string()),
        _ => w.left_operand_text(op_idx),
    }
}

/// Normalized right-operand text for the `>=`-pair subtraction proof.
fn right_text(op: &Operand) -> Option<String> {
    match op {
        Operand::IntIdent(name, _) => Some(name.clone()),
        Operand::Unknown(Some(text)) => Some(text.clone()),
        Operand::Len(recv) => Some(format!("{recv} . len ( )")),
        Operand::Const(v, _) => Some(v.to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> FileDataflow {
        let tokens = lex(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        analyze_source(&code)
    }

    fn arith_flags(src: &str) -> Vec<bool> {
        run(src).arith.iter().map(|s| s.proven).collect()
    }

    fn index_flags(src: &str) -> Vec<bool> {
        run(src).indexes.iter().map(|s| s.proven).collect()
    }

    #[test]
    fn const_folding_proves_small_sums() {
        assert_eq!(arith_flags("fn f() -> u32 { 2 + 3 }"), vec![true]);
        assert_eq!(arith_flags("fn f() -> u32 { 1 << 10 }"), vec![true]);
        assert_eq!(arith_flags("fn f() -> u64 { 1u64 << 63 }"), vec![true]);
        // Unsuffixed shift past i32::MAX is not provable.
        assert_eq!(arith_flags("fn f() -> u64 { 1 << 40 }"), vec![false]);
    }

    #[test]
    fn guarded_increment_is_proven() {
        let src = "fn f(i: usize, xs: &[u32]) { if i < xs.len() { let j = i + 1; } }";
        assert_eq!(arith_flags(src), vec![true]);
        // Without the guard the same increment is unproven.
        let src = "fn f(i: usize) { let j = i + 1; }";
        assert_eq!(arith_flags(src), vec![false]);
    }

    #[test]
    fn while_guard_proves_subtraction() {
        let src = "fn f(mut h: u32, y: u32) { while h >= hours(y) { h -= hours(y); } }";
        assert_eq!(arith_flags(src), vec![true]);
        // The same subtraction outside the guard is unproven.
        let src = "fn f(mut h: u32, y: u32) { h -= hours(y); }";
        assert_eq!(arith_flags(src), vec![false]);
    }

    #[test]
    fn len_minus_one_needs_nonempty_guard() {
        let ok = "fn f(xs: &[u32]) { if !xs.is_empty() { let l = xs.len() - 1; } }";
        assert_eq!(arith_flags(ok), vec![true]);
        let bad = "fn f(xs: &[u32]) { let l = xs.len() - 1; }";
        assert_eq!(arith_flags(bad), vec![false]);
    }

    #[test]
    fn guarded_index_is_proven() {
        let ok = "fn f(i: usize, xs: &[u32]) -> u32 { if i < xs.len() { xs[i] } else { 0 } }";
        assert_eq!(index_flags(ok), vec![true]);
        let bad = "fn f(i: usize, xs: &[u32]) -> u32 { xs[i] }";
        assert_eq!(index_flags(bad), vec![false]);
    }

    #[test]
    fn range_loop_bounds_the_index() {
        let src = "fn f(xs: &[u32]) { for i in 0..xs.len() { use_it(xs[i]); } }";
        assert_eq!(index_flags(src), vec![true]);
        // An inclusive range does not bound strictly below len.
        let src = "fn f(xs: &[u32]) { for i in 0..=xs.len() { use_it(xs[i]); } }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn min_clamp_binds_a_last_index_bound() {
        let src = "fn f(b: usize, xs: &[u32]) -> u32 { let i = b.min(xs.len() - 1); xs[i] }";
        // Two sites: the `len() - 1` subtraction (unproven without a
        // nonempty guard) and the index (proven by the min bound).
        assert_eq!(index_flags(src), vec![true]);
        let src = "fn f(b: usize, xs: &[u32]) -> u32 { let i = b; xs[i] }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn last_index_binding_needs_a_nonempty_guard() {
        // `len() - 1` is a valid last-index bound only once the receiver
        // is known non-empty; the bound then flows through `.min(ident)`.
        let src = "fn f(b: usize, xs: &[u32]) -> u32 { \
                   if !xs.is_empty() { let last = xs.len() - 1; let i = b.min(last); xs[i] } \
                   else { 0 } }";
        assert_eq!(index_flags(src), vec![true]);
        // Without the guard the binding carries no upper bound.
        let src = "fn f(b: usize, xs: &[u32]) -> u32 { \
                   let last = xs.len() - 1; let i = b.min(last); xs[i] }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn min_against_a_const_variable_inherits_its_value() {
        let src = "fn f(b: usize, xs: &[u32]) -> u32 { \
                   let cap = 3; let i = b.min(cap); if 4 < xs.len() { xs[i] } else { 0 } }";
        assert_eq!(index_flags(src), vec![true]);
    }

    #[test]
    fn early_exit_negation_holds_after_the_block() {
        let src = "fn f(i: usize, xs: &[u32]) -> u32 { if i >= xs.len() { return 0; } xs[i] }";
        assert_eq!(index_flags(src), vec![true]);
        // With an else branch the negation is not applied.
        let src =
            "fn f(i: usize, xs: &[u32]) -> u32 { if i >= xs.len() { return 0; } else { g(); } xs[i] }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn loop_entry_kills_stale_facts() {
        // `i` is bounded before the loop but assigned inside it: the
        // pre-scan kill makes the in-loop index unproven.
        let src = "fn f(xs: &[u32]) { let i = 0; while go() { use_it(xs[i]); i += 1; } }";
        assert_eq!(index_flags(src), vec![false]);
        // Without the in-loop assignment the fact survives.
        let src =
            "fn f(xs: &[u32]) { if 0 < xs.len() { let i = 0; while go() { use_it(xs[i]); } } }";
        assert_eq!(index_flags(src), vec![true]);
    }

    #[test]
    fn mutation_kills_len_facts() {
        let src = "fn f(i: usize, xs: &mut Vec<u32>) -> u32 { if i < xs.len() { xs.pop(); return xs[i]; } 0 }";
        assert_eq!(index_flags(src), vec![false]);
        let src =
            "fn f(i: usize, xs: &mut Vec<u32>) -> u32 { if i < xs.len() { return xs[i]; } 0 }";
        assert_eq!(index_flags(src), vec![true]);
    }

    #[test]
    fn reassignment_kills_value_facts() {
        let src = "fn f(xs: &[u32], n: usize) { let mut i = 0; i = n; use_it(xs[i]); }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn guard_facts_do_not_leak_out_of_the_block() {
        let src = "fn f(i: usize, xs: &[u32]) -> u32 { if i < xs.len() { g(); } xs[i] }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn facts_do_not_cross_fn_barriers() {
        let src = "fn outer(i: usize, xs: &[u32]) { if i < xs.len() { fn inner(i: usize, xs: &[u32]) -> u32 { xs[i] } } }";
        assert_eq!(index_flags(src), vec![false]);
    }

    #[test]
    fn float_arithmetic_is_not_flagged() {
        assert!(run("fn f(a: f64) -> f64 { a + 1.0 }").arith.is_empty());
        assert!(run("fn f() -> f64 { 0.5 * 2.0 }").arith.is_empty());
        // Mixed unknown + float literal: still float.
        assert!(run("fn f(a: f64, b: f64) -> f64 { a * b + 0.5 }")
            .arith
            .is_empty());
    }

    #[test]
    fn unknown_operands_are_not_flagged() {
        // Neither side provably integer: no site at all.
        assert!(run("fn f(a: T, b: T) -> T { a + b }").arith.is_empty());
        // A literal operand makes the op auditable.
        assert_eq!(run("fn f(a: T) -> T { a + 1 }").arith.len(), 1);
    }

    #[test]
    fn unary_and_type_positions_are_skipped() {
        assert!(run("fn f(a: i64) -> i64 { -a }").arith.is_empty());
        assert!(run("fn f(p: *const u8) {}").arith.is_empty());
        assert!(run("fn f(x: &u32) -> u32 { *x }").arith.is_empty());
    }

    #[test]
    fn array_literals_and_attributes_are_not_index_sites() {
        assert!(run("fn f() -> [u32; 4] { [0; 4] }").indexes.is_empty());
        assert!(run("#[derive(Debug)] struct S;").indexes.is_empty());
        assert!(run("fn f(xs: &[u32]) {}").indexes.is_empty());
    }

    #[test]
    fn literal_index_under_len_guard() {
        let src = "fn f(xs: &[u32]) -> u32 { if xs.len() > 2 { xs[2] } else { 0 } }";
        assert_eq!(index_flags(src), vec![true]);
        let src = "fn f(xs: &[u32]) -> u32 { if xs.len() > 2 { xs[3] } else { 0 } }";
        assert_eq!(index_flags(src), vec![false]);
        let src = "fn f(xs: &[u32]) -> u32 { if !xs.is_empty() { xs[0] } else { 0 } }";
        assert_eq!(index_flags(src), vec![true]);
    }

    #[test]
    fn compound_increment_under_loop_guard() {
        let src = "fn f() { let mut m = 1; while m < 12 { m += 1; } }";
        assert_eq!(arith_flags(src), vec![true]);
        let src = "fn f(mut m: u32) { m += 1; }";
        assert_eq!(arith_flags(src), vec![false]);
    }

    #[test]
    fn int_literal_parsing() {
        assert_eq!(parse_int("42"), Some((42, None)));
        assert_eq!(parse_int("1_000u64"), Some((1000, Some("u64"))));
        assert_eq!(parse_int("0x1E"), Some((30, None)));
        assert_eq!(parse_int("0b101"), Some((5, None)));
        assert_eq!(parse_int("0o17"), Some((15, None)));
        assert_eq!(parse_int("7usize"), Some((7, Some("usize"))));
    }
}
