//! The CLI driver: walks the workspace, runs all three analysis passes,
//! applies the baseline ratchets, and renders diagnostics.
//!
//! Scan set: `crates/*/src/**/*.rs` plus the facade crate's `src/**/*.rs`,
//! in sorted path order so output (and the JSON report) is deterministic —
//! the analyzer holds itself to the invariants it enforces. `vendor/` and
//! `target/` are out of scope. Tests, benches, and examples are scanned as
//! *reference* files only: their identifiers feed the `dead-pub-api`
//! liveness index, but no rules run on them.
//!
//! File reading is sequential; the per-file work (lexing, file-local
//! rules, item extraction) fans out over `ce_parallel::par_map`, whose
//! input-order result guarantee keeps diagnostics byte-identical to a
//! serial run (pinned by the serial-vs-parallel equality test).

use crate::baseline::{Baseline, ReachBaseline};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::items::extract;
use crate::resolve::{resolve, CrateGraph, Workspace};
use crate::rules::{analyze_file, analyze_graph, DeadFinding, ReachFinding, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Output format for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line:col: [rule] message`, one per line, plus a summary.
    Human,
    /// A single JSON object (for CI artifacts).
    Json,
    /// GitHub Actions workflow commands (`::error file=…,line=…::…`),
    /// one per violation, plus a plain summary line.
    Github,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (defaults to searching upward from cwd).
    pub root: PathBuf,
    /// Output format.
    pub format: Format,
    /// Rewrite both baselines from the current counts.
    pub write_baseline: bool,
    /// Print the rule table (name, tier, description) and exit.
    pub list_rules: bool,
    /// Path of the panic-site baseline (default: `<root>/lint-baseline.json`).
    pub baseline_path: PathBuf,
    /// Path of the reachability/dead-API baseline (default:
    /// `<root>/reach-baseline.json`).
    pub reach_baseline_path: PathBuf,
}

/// The exit status the process should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All rules clean; exit 0.
    Clean,
    /// One or more violations; exit 1.
    Violations,
    /// The analyzer itself could not run; exit 2.
    Error,
}

impl Outcome {
    /// The process exit code for this outcome.
    pub fn code(self) -> i32 {
        match self {
            Outcome::Clean => 0,
            Outcome::Violations => 1,
            Outcome::Error => 2,
        }
    }
}

/// Parses CLI arguments (everything after the program name).
///
/// # Errors
///
/// Returns a usage message on unknown flags or missing values.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut write_baseline = false;
    let mut list_rules = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut reach_baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("github") => Format::Github,
                    other => {
                        return Err(format!(
                            "--format must be `human`, `json`, or `github`, got {other:?}"
                        ))
                    }
                };
            }
            "--write-baseline" => write_baseline = true,
            "--list-rules" => list_rules = true,
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file path")?,
                ));
            }
            "--reach-baseline" => {
                reach_baseline_path = Some(PathBuf::from(
                    it.next().ok_or("--reach-baseline needs a file path")?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        // --list-rules never touches the workspace; don't demand one.
        None if list_rules => PathBuf::from("."),
        None => find_workspace_root()?,
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
    let reach_baseline_path =
        reach_baseline_path.unwrap_or_else(|| root.join("reach-baseline.json"));
    Ok(Options {
        root,
        format,
        write_baseline,
        list_rules,
        baseline_path,
        reach_baseline_path,
    })
}

const USAGE: &str = "usage: ce-analyzer [--root DIR] [--format human|json|github] \
[--baseline FILE] [--reach-baseline FILE] [--write-baseline] [--list-rules]";

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

/// The complete result of both analysis passes — pure data, independent
/// of baselines and output format, so tests can compare serial and
/// parallel runs for equality.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkspaceAnalysis {
    /// File-local violations plus graph-rule hard violations, unsorted
    /// (the driver sorts after ratcheting).
    pub violations: Vec<Violation>,
    /// Per-file panic-site lines, for the `panic-in-lib` ratchet.
    pub panic_counts: BTreeMap<String, Vec<u32>>,
    /// Per-file lossy-cast lines, for the `cast-truncation` ratchet.
    pub cast_counts: BTreeMap<String, Vec<u32>>,
    /// Per-file justified-unsafe lines, for the `unsafe-boundary` ratchet.
    pub unsafe_counts: BTreeMap<String, Vec<u32>>,
    /// Per-file unproven-arithmetic lines, for the `int-overflow` ratchet.
    pub arith_counts: BTreeMap<String, Vec<u32>>,
    /// Per-file unproven-index lines, for the `slice-index` ratchet.
    pub index_counts: BTreeMap<String, Vec<u32>>,
    /// `panic-reachability` findings with witnesses.
    pub panic_reach: Vec<ReachFinding>,
    /// `dead-pub-api` findings.
    pub dead_api: Vec<DeadFinding>,
    /// Library files scanned.
    pub files_scanned: usize,
    /// Functions in the call graph.
    pub fn_count: usize,
    /// Resolved call edges.
    pub edge_count: usize,
}

/// Runs both passes over in-memory sources. `lib_sources` are
/// `(workspace-relative path, contents)` pairs for library files (rules +
/// extraction); `ref_sources` are tests/benches/examples (reference index
/// only). Pure: same inputs, same output, parallel or serial.
pub fn analyze_workspace(
    lib_sources: &[(String, String)],
    ref_sources: &[(String, String)],
    crates: CrateGraph,
    config: &Config,
) -> WorkspaceAnalysis {
    // Pass 1, fanned out per file. par_map returns results in input
    // order, so everything downstream is deterministic.
    let per_file = ce_parallel::par_map(lib_sources, |(rel, src)| {
        (analyze_file(rel, src, config), extract(rel, src))
    });
    let ref_items = ce_parallel::par_map(ref_sources, |(rel, src)| extract(rel, src));

    let mut violations = Vec::new();
    let mut panic_counts = BTreeMap::new();
    let mut cast_counts = BTreeMap::new();
    let mut unsafe_counts = BTreeMap::new();
    let mut arith_counts = BTreeMap::new();
    let mut index_counts = BTreeMap::new();
    let mut lib_items = Vec::with_capacity(per_file.len());
    for ((analysis, items), (rel, _)) in per_file.into_iter().zip(lib_sources) {
        violations.extend(analysis.violations);
        if !analysis.panic_sites.is_empty() {
            panic_counts.insert(rel.clone(), analysis.panic_sites);
        }
        if !analysis.cast_sites.is_empty() {
            cast_counts.insert(rel.clone(), analysis.cast_sites);
        }
        if !analysis.unsafe_sites.is_empty() {
            unsafe_counts.insert(rel.clone(), analysis.unsafe_sites);
        }
        if !analysis.arith_sites.is_empty() {
            arith_counts.insert(rel.clone(), analysis.arith_sites);
        }
        if !analysis.index_sites.is_empty() {
            index_counts.insert(rel.clone(), analysis.index_sites);
        }
        lib_items.push(items);
    }

    // Pass 3: merge, resolve, run the graph rules.
    let ws = Workspace::build(lib_items, ref_items, crates);
    let graph = CallGraph::new(resolve(&ws));
    let ga = analyze_graph(&ws, &graph);
    violations.extend(ga.violations);

    WorkspaceAnalysis {
        violations,
        panic_counts,
        cast_counts,
        unsafe_counts,
        arith_counts,
        index_counts,
        panic_reach: ga.panic_reach,
        dead_api: ga.dead_api,
        files_scanned: lib_sources.len(),
        fn_count: ws.fns.len(),
        edge_count: graph.edge_count(),
    }
}

/// Sorted `(workspace-relative path, contents)` pairs for one scan set.
pub type SourceSet = Vec<(String, String)>;

/// Reads both scan sets from disk: library sources (rules + extraction)
/// and reference sources (tests/benches/examples, liveness index only),
/// each as sorted `(workspace-relative path, contents)` pairs.
///
/// # Errors
///
/// Returns a message if a directory or file cannot be read.
pub fn scan_workspace(root: &Path) -> Result<(SourceSet, SourceSet), String> {
    let read_all = |files: Vec<String>| -> Result<Vec<(String, String)>, String> {
        files
            .into_iter()
            .map(|rel| {
                let path = root.join(&rel);
                fs::read_to_string(&path)
                    .map(|src| (rel, src))
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))
            })
            .collect()
    };
    Ok((read_all(scan_set(root)?)?, read_all(ref_scan_set(root)?)?))
}

/// Runs the analyzer with `opts`, printing diagnostics to stdout.
/// This is the whole program; `main` only parses arguments.
pub fn run(opts: &Options) -> Outcome {
    if opts.list_rules {
        print!("{}", render_rule_table());
        return Outcome::Clean;
    }
    let (lib_sources, ref_sources) = match scan_workspace(&opts.root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ce-analyzer: {e}");
            return Outcome::Error;
        }
    };
    let crates = match CrateGraph::from_root(&opts.root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ce-analyzer: {e}");
            return Outcome::Error;
        }
    };

    let config = Config::default();
    let analysis = analyze_workspace(&lib_sources, &ref_sources, crates, &config);
    let mut violations = analysis.violations.clone();

    if opts.write_baseline {
        if let Err(e) = write_baselines(opts, &analysis) {
            eprintln!("ce-analyzer: {e}");
            return Outcome::Error;
        }
    } else {
        let scanned: std::collections::BTreeSet<&str> =
            lib_sources.iter().map(|(rel, _)| rel.as_str()).collect();
        apply_ratchet(opts, &analysis, &scanned, &mut violations);
        apply_reach_ratchet(opts, &analysis, &scanned, &mut violations);
    }

    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));

    let stats = ReportStats {
        files_scanned: analysis.files_scanned,
        panic_sites: analysis.panic_counts.values().map(Vec::len).sum(),
        lossy_casts: analysis.cast_counts.values().map(Vec::len).sum(),
        unsafe_sites: analysis.unsafe_counts.values().map(Vec::len).sum(),
        arith_sites: analysis.arith_counts.values().map(Vec::len).sum(),
        index_sites: analysis.index_counts.values().map(Vec::len).sum(),
        fns: analysis.fn_count,
        call_edges: analysis.edge_count,
        reachable_findings: analysis.panic_reach.len(),
        dead_pub_items: analysis.dead_api.len(),
    };
    match opts.format {
        Format::Human => print_human(&violations, &stats),
        Format::Json => println!("{}", render_json(&violations, &stats)),
        Format::Github => print_github(&violations, &stats),
    }
    if violations.is_empty() {
        Outcome::Clean
    } else {
        Outcome::Violations
    }
}

/// Writes both baselines from the current analysis.
fn write_baselines(opts: &Options, analysis: &WorkspaceAnalysis) -> Result<(), String> {
    let count = |m: &BTreeMap<String, Vec<u32>>| -> BTreeMap<String, usize> {
        m.iter()
            .map(|(p, sites)| (p.clone(), sites.len()))
            .collect()
    };
    let baseline = Baseline {
        files: count(&analysis.panic_counts),
        casts: count(&analysis.cast_counts),
        unsafe_sites: count(&analysis.unsafe_counts),
        arith: count(&analysis.arith_counts),
        indexes: count(&analysis.index_counts),
    };
    fs::write(&opts.baseline_path, baseline.render())
        .map_err(|e| format!("cannot write {}: {e}", opts.baseline_path.display()))?;
    eprintln!(
        "ce-analyzer: wrote baseline ({} panic sites, {} lossy casts, {} unsafe sites, \
         {} unproven arith, {} unproven indexes) to {}",
        baseline.files.values().sum::<usize>(),
        baseline.casts.values().sum::<usize>(),
        baseline.unsafe_sites.values().sum::<usize>(),
        baseline.arith.values().sum::<usize>(),
        baseline.indexes.values().sum::<usize>(),
        opts.baseline_path.display()
    );
    let mut reach = ReachBaseline::default();
    for f in &analysis.panic_reach {
        *reach.panic_reach.entry(f.file.clone()).or_insert(0) += 1;
    }
    for d in &analysis.dead_api {
        *reach.dead_api.entry(d.file.clone()).or_insert(0) += 1;
    }
    fs::write(&opts.reach_baseline_path, reach.render())
        .map_err(|e| format!("cannot write {}: {e}", opts.reach_baseline_path.display()))?;
    eprintln!(
        "ce-analyzer: wrote reach baseline ({} reachable panic sites, {} dead pub items) to {}",
        reach.panic_reach.values().sum::<usize>(),
        reach.dead_api.values().sum::<usize>(),
        opts.reach_baseline_path.display()
    );
    Ok(())
}

/// Compares current file-local site counts (panic, lossy-cast, unsafe)
/// to the baseline, producing violations for growth and for stale entries
/// (a baselined file that left the scan set), and stderr notes for
/// shrinkage.
fn apply_ratchet(
    opts: &Options,
    analysis: &WorkspaceAnalysis,
    scanned: &std::collections::BTreeSet<&str>,
    violations: &mut Vec<Violation>,
) {
    let baseline = match fs::read_to_string(&opts.baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                violations.push(Violation {
                    rule: "panic-in-lib".to_string(),
                    file: "lint-baseline.json".to_string(),
                    line: 1,
                    col: 1,
                    message: format!("baseline is unreadable: {e}"),
                });
                return;
            }
        },
        Err(_) => {
            violations.push(Violation {
                rule: "panic-in-lib".to_string(),
                file: "lint-baseline.json".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "no baseline at {}; run `ce-analyzer --write-baseline` and commit it",
                    opts.baseline_path.display()
                ),
            });
            return;
        }
    };
    /// One ratcheted section: (rule, human label, live counts, allowances).
    type Section<'a> = (
        &'a str,
        &'a str,
        &'a BTreeMap<String, Vec<u32>>,
        &'a BTreeMap<String, usize>,
    );
    let sections: [Section<'_>; 5] = [
        (
            "panic-in-lib",
            "panic sites (unwrap/expect/panic!/unreachable!)",
            &analysis.panic_counts,
            &baseline.files,
        ),
        (
            "cast-truncation",
            "lossy `as` casts",
            &analysis.cast_counts,
            &baseline.casts,
        ),
        (
            "unsafe-boundary",
            "unsafe sites",
            &analysis.unsafe_counts,
            &baseline.unsafe_sites,
        ),
        (
            "int-overflow",
            "unproven arithmetic sites",
            &analysis.arith_counts,
            &baseline.arith,
        ),
        (
            "slice-index",
            "unproven bracket-index sites",
            &analysis.index_counts,
            &baseline.indexes,
        ),
    ];
    let mut shrunk = 0usize;
    for (rule, what, counts, allowed_files) in sections {
        for (file, sites) in counts {
            let allowed = allowed_files.get(file).copied().unwrap_or(0);
            if sites.len() > allowed {
                // Point at the last site: appended code is the likely culprit.
                let line = sites.last().copied().unwrap_or(1);
                violations.push(Violation {
                    rule: rule.to_string(),
                    file: file.clone(),
                    line,
                    col: 1,
                    message: format!(
                        "{} {what} but the baseline ratchet allows {allowed}; fix the new \
                         site, or shrink another and rerun --write-baseline",
                        sites.len()
                    ),
                });
            } else if sites.len() < allowed {
                shrunk += allowed - sites.len();
            }
        }
        for (file, &allowed) in allowed_files {
            if counts.contains_key(file) {
                continue;
            }
            if scanned.contains(file.as_str()) {
                // Still scanned, now clean: shrinkage to lock in.
                shrunk += allowed;
            } else {
                // The file itself is gone: a dead allowance, not shrinkage.
                violations.push(stale_entry_violation(rule, file, "lint-baseline.json"));
            }
        }
    }
    if shrunk > 0 {
        eprintln!(
            "ce-analyzer: note: {shrunk} baselined lint sites below baseline — run \
             `ce-analyzer --write-baseline` to ratchet down"
        );
    }
}

/// A hard violation for a baseline entry whose file has left the scan set.
fn stale_entry_violation(rule: &str, file: &str, baseline_file: &str) -> Violation {
    Violation {
        rule: rule.to_string(),
        file: baseline_file.to_string(),
        line: 1,
        col: 1,
        message: format!(
            "stale baseline entry: `{file}` is no longer in the scan set; \
             rerun `ce-analyzer --write-baseline` to prune it"
        ),
    }
}

/// Compares graph-rule finding counts to `reach-baseline.json`. A file
/// whose count rises fails with one violation **per finding** in that
/// file, each carrying its witness path, so the culprit is identifiable
/// without rerunning anything.
fn apply_reach_ratchet(
    opts: &Options,
    analysis: &WorkspaceAnalysis,
    scanned: &std::collections::BTreeSet<&str>,
    violations: &mut Vec<Violation>,
) {
    let baseline = match fs::read_to_string(&opts.reach_baseline_path) {
        Ok(text) => match ReachBaseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                violations.push(Violation {
                    rule: "panic-reachability".to_string(),
                    file: "reach-baseline.json".to_string(),
                    line: 1,
                    col: 1,
                    message: format!("reach baseline is unreadable: {e}"),
                });
                return;
            }
        },
        Err(_) => {
            violations.push(Violation {
                rule: "panic-reachability".to_string(),
                file: "reach-baseline.json".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "no reach baseline at {}; run `ce-analyzer --write-baseline` and commit it",
                    opts.reach_baseline_path.display()
                ),
            });
            return;
        }
    };

    let mut reach_by_file: BTreeMap<&str, Vec<&ReachFinding>> = BTreeMap::new();
    for f in &analysis.panic_reach {
        reach_by_file.entry(f.file.as_str()).or_default().push(f);
    }
    let mut shrunk = 0usize;
    for (file, findings) in &reach_by_file {
        let allowed = baseline.allowed_reach(file);
        if findings.len() > allowed {
            for f in findings {
                violations.push(Violation {
                    rule: "panic-reachability".to_string(),
                    file: f.file.clone(),
                    line: f.line,
                    col: f.col,
                    message: format!(
                        "{} in `{}` is reachable from a hot/entry root via {} — {} \
                         reachable panic sites in this file vs baseline {allowed}",
                        f.what,
                        f.in_fn,
                        f.witness,
                        findings.len()
                    ),
                });
            }
        } else if findings.len() < allowed {
            shrunk += allowed - findings.len();
        }
    }
    for (file, &allowed) in &baseline.panic_reach {
        if reach_by_file.contains_key(file.as_str()) {
            continue;
        }
        if scanned.contains(file.as_str()) {
            shrunk += allowed;
        } else {
            violations.push(stale_entry_violation(
                "panic-reachability",
                file,
                "reach-baseline.json",
            ));
        }
    }

    let mut dead_by_file: BTreeMap<&str, Vec<&DeadFinding>> = BTreeMap::new();
    for d in &analysis.dead_api {
        dead_by_file.entry(d.file.as_str()).or_default().push(d);
    }
    for (file, findings) in &dead_by_file {
        let allowed = baseline.allowed_dead(file);
        if findings.len() > allowed {
            for d in findings {
                violations.push(Violation {
                    rule: "dead-pub-api".to_string(),
                    file: d.file.clone(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "pub {} `{}` is never referenced anywhere in the workspace, tests, \
                         benches, or examples — {} dead pub items in this file vs baseline \
                         {allowed}",
                        d.kind,
                        d.name,
                        findings.len()
                    ),
                });
            }
        } else if findings.len() < allowed {
            shrunk += allowed - findings.len();
        }
    }
    for (file, &allowed) in &baseline.dead_api {
        if dead_by_file.contains_key(file.as_str()) {
            continue;
        }
        if scanned.contains(file.as_str()) {
            shrunk += allowed;
        } else {
            violations.push(stale_entry_violation(
                "dead-pub-api",
                file,
                "reach-baseline.json",
            ));
        }
    }
    if shrunk > 0 {
        eprintln!(
            "ce-analyzer: note: {shrunk} reachability/dead-API findings below baseline — \
             run `ce-analyzer --write-baseline` to ratchet down"
        );
    }
}

/// Collects the workspace-relative library scan set, sorted.
fn scan_set(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut files)?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk_rs(&facade_src, root, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Collects the reference scan set — tests, benches, and examples across
/// the workspace — sorted. These feed the `dead-pub-api` liveness index
/// only.
fn ref_scan_set(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        for sub in ["tests", "benches", "examples"] {
            let dir = entry.path().join(sub);
            if dir.is_dir() {
                walk_rs(&dir, root, &mut files)?;
            }
        }
    }
    for sub in ["tests", "examples", "benches"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_rs(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| "scan path escaped the workspace root".to_string())?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Summary counters for the report footers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportStats {
    /// Library files scanned.
    pub files_scanned: usize,
    /// Total baselined panic sites.
    pub panic_sites: usize,
    /// Total baselined lossy-cast sites.
    pub lossy_casts: usize,
    /// Total baselined (justified, allowlisted) unsafe sites.
    pub unsafe_sites: usize,
    /// Total baselined dataflow-unproven arithmetic sites.
    pub arith_sites: usize,
    /// Total baselined dataflow-unproven bracket-index sites.
    pub index_sites: usize,
    /// Functions in the call graph.
    pub fns: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Panic sites reachable from hot/entry roots.
    pub reachable_findings: usize,
    /// Unreferenced pub items.
    pub dead_pub_items: usize,
}

/// Renders the `--list-rules` table from [`crate::config::RULE_INFO`] —
/// the single source of truth, so the docs and the binary can't drift.
pub fn render_rule_table() -> String {
    let info = crate::config::RULE_INFO;
    let name_w = info.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
    let tier_w = info.iter().map(|(_, t, _)| t.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, tier, desc) in info {
        let _ = writeln!(out, "{name:name_w$}  {tier:tier_w$}  {desc}");
    }
    out
}

fn print_human(violations: &[Violation], stats: &ReportStats) {
    for v in violations {
        println!(
            "{}:{}:{}: [{}] {}",
            v.file, v.line, v.col, v.rule, v.message
        );
    }
    if violations.is_empty() {
        println!(
            "ce-analyzer: clean — {} files, {} rules, {} fns / {} call edges, \
             {} baselined panic sites, {} lossy casts + {} unsafe sites baselined, \
             {} unproven arith + {} unproven index sites baselined, \
             {} reachable + {} dead-API findings baselined",
            stats.files_scanned,
            crate::config::RULE_NAMES.len(),
            stats.fns,
            stats.call_edges,
            stats.panic_sites,
            stats.lossy_casts,
            stats.unsafe_sites,
            stats.arith_sites,
            stats.index_sites,
            stats.reachable_findings,
            stats.dead_pub_items
        );
    } else {
        println!(
            "ce-analyzer: {} violation(s) in {} files",
            violations.len(),
            stats.files_scanned
        );
    }
}

/// Prints GitHub Actions `::error` workflow commands, one per violation.
fn print_github(violations: &[Violation], stats: &ReportStats) {
    for v in violations {
        println!(
            "::error file={},line={},col={},title=ce-analyzer {}::{}",
            github_escape_property(&v.file),
            v.line,
            v.col,
            github_escape_property(&v.rule),
            github_escape_message(&v.message)
        );
    }
    if violations.is_empty() {
        println!(
            "ce-analyzer: clean — {} files, {} fns / {} call edges",
            stats.files_scanned, stats.fns, stats.call_edges
        );
    } else {
        println!(
            "ce-analyzer: {} violation(s) in {} files",
            violations.len(),
            stats.files_scanned
        );
    }
}

/// Escapes a workflow-command message (`%`, CR, LF).
fn github_escape_message(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property (message escapes plus `:` and `,`).
fn github_escape_property(s: &str) -> String {
    github_escape_message(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Renders the machine-readable report (stable field and entry order).
pub fn render_json(violations: &[Violation], stats: &ReportStats) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"ok\": {},", violations.is_empty());
    let _ = writeln!(out, "  \"files_scanned\": {},", stats.files_scanned);
    let _ = writeln!(out, "  \"panic_sites\": {},", stats.panic_sites);
    let _ = writeln!(out, "  \"lossy_casts\": {},", stats.lossy_casts);
    let _ = writeln!(out, "  \"unsafe_sites\": {},", stats.unsafe_sites);
    let _ = writeln!(out, "  \"arith_sites\": {},", stats.arith_sites);
    let _ = writeln!(out, "  \"index_sites\": {},", stats.index_sites);
    let _ = writeln!(out, "  \"fns\": {},", stats.fns);
    let _ = writeln!(out, "  \"call_edges\": {},", stats.call_edges);
    let _ = writeln!(
        out,
        "  \"reachable_findings\": {},",
        stats.reachable_findings
    );
    let _ = writeln!(out, "  \"dead_pub_items\": {},", stats.dead_pub_items);
    out.push_str("  \"violations\": [\n");
    let n = violations.len();
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}{comma}",
            json_escape(&v.rule),
            json_escape(&v.file),
            v.line,
            v.col,
            json_escape(&v.message)
        );
    }
    out.push_str("  ]\n}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults() {
        let opts = parse_args(&["--root".to_string(), "/tmp/ws".to_string()]).unwrap();
        assert_eq!(opts.root, PathBuf::from("/tmp/ws"));
        assert_eq!(opts.format, Format::Human);
        assert!(!opts.write_baseline);
        assert_eq!(
            opts.baseline_path,
            PathBuf::from("/tmp/ws/lint-baseline.json")
        );
        assert_eq!(
            opts.reach_baseline_path,
            PathBuf::from("/tmp/ws/reach-baseline.json")
        );
    }

    #[test]
    fn args_json_and_baseline() {
        let opts = parse_args(&[
            "--root".to_string(),
            "/ws".to_string(),
            "--format".to_string(),
            "json".to_string(),
            "--write-baseline".to_string(),
            "--baseline".to_string(),
            "/elsewhere/b.json".to_string(),
            "--reach-baseline".to_string(),
            "/elsewhere/r.json".to_string(),
        ])
        .unwrap();
        assert_eq!(opts.format, Format::Json);
        assert!(opts.write_baseline);
        assert_eq!(opts.baseline_path, PathBuf::from("/elsewhere/b.json"));
        assert_eq!(opts.reach_baseline_path, PathBuf::from("/elsewhere/r.json"));
    }

    #[test]
    fn args_github_format() {
        let opts = parse_args(&[
            "--root".to_string(),
            "/ws".to_string(),
            "--format".to_string(),
            "github".to_string(),
        ])
        .unwrap();
        assert_eq!(opts.format, Format::Github);
    }

    #[test]
    fn args_rejects_unknown() {
        assert!(parse_args(&["--frobnicate".to_string()]).is_err());
        assert!(parse_args(&["--format".to_string(), "xml".to_string()]).is_err());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn github_escaping() {
        assert_eq!(github_escape_message("50% a\nb"), "50%25 a%0Ab");
        assert_eq!(github_escape_property("a:b,c"), "a%3Ab%2Cc");
    }

    fn sample_stats() -> ReportStats {
        ReportStats {
            files_scanned: 10,
            panic_sites: 42,
            lossy_casts: 5,
            unsafe_sites: 2,
            arith_sites: 9,
            index_sites: 6,
            fns: 100,
            call_edges: 250,
            reachable_findings: 7,
            dead_pub_items: 2,
        }
    }

    #[test]
    fn json_report_shape() {
        let v = Violation {
            rule: "float-eq".to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "msg".to_string(),
        };
        let json = render_json(&[v], &sample_stats());
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"files_scanned\": 10"));
        assert!(json.contains("\"panic_sites\": 42"));
        assert!(json.contains("\"lossy_casts\": 5"));
        assert!(json.contains("\"unsafe_sites\": 2"));
        assert!(json.contains("\"arith_sites\": 9"));
        assert!(json.contains("\"index_sites\": 6"));
        assert!(json.contains("\"fns\": 100"));
        assert!(json.contains("\"call_edges\": 250"));
        assert!(json.contains("\"reachable_findings\": 7"));
        assert!(json.contains("\"dead_pub_items\": 2"));
        assert!(json.contains("\"line\": 3"));
        let clean = render_json(&[], &sample_stats());
        assert!(clean.contains("\"ok\": true"));
    }

    #[test]
    fn args_list_rules_needs_no_workspace() {
        let opts = parse_args(&["--list-rules".to_string()]).unwrap();
        assert!(opts.list_rules);
    }

    #[test]
    fn rule_table_lists_every_rule() {
        let table = render_rule_table();
        for rule in crate::config::RULE_NAMES {
            assert!(table.contains(rule), "missing {rule} in rule table");
        }
        assert_eq!(table.lines().count(), crate::config::RULE_NAMES.len());
    }
}
