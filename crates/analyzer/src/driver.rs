//! The CLI driver: walks the workspace, runs every rule, applies the
//! baseline ratchet, and renders diagnostics.
//!
//! Scan set: `crates/*/src/**/*.rs` plus the facade crate's `src/**/*.rs`,
//! in sorted path order so output (and the JSON report) is deterministic —
//! the analyzer holds itself to the invariants it enforces. `vendor/`,
//! `target/`, tests, benches, and examples are out of scope: the rules
//! protect library code.

use crate::baseline::Baseline;
use crate::config::Config;
use crate::rules::{analyze_file, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Output format for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line:col: [rule] message`, one per line, plus a summary.
    Human,
    /// A single JSON object (for CI).
    Json,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (defaults to searching upward from cwd).
    pub root: PathBuf,
    /// Output format.
    pub format: Format,
    /// Rewrite the baseline from the current panic-site counts.
    pub write_baseline: bool,
    /// Path of the baseline file (default: `<root>/lint-baseline.json`).
    pub baseline_path: PathBuf,
}

/// The exit status the process should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All rules clean; exit 0.
    Clean,
    /// One or more violations; exit 1.
    Violations,
    /// The analyzer itself could not run; exit 2.
    Error,
}

impl Outcome {
    /// The process exit code for this outcome.
    pub fn code(self) -> i32 {
        match self {
            Outcome::Clean => 0,
            Outcome::Violations => 1,
            Outcome::Error => 2,
        }
    }
}

/// Parses CLI arguments (everything after the program name).
///
/// # Errors
///
/// Returns a usage message on unknown flags or missing values.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut write_baseline = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!("--format must be `human` or `json`, got {other:?}"))
                    }
                };
            }
            "--write-baseline" => write_baseline = true,
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file path")?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
    Ok(Options {
        root,
        format,
        write_baseline,
        baseline_path,
    })
}

const USAGE: &str = "usage: ce-analyzer [--root DIR] [--format human|json] \
[--baseline FILE] [--write-baseline]";

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

/// Runs the analyzer with `opts`, printing diagnostics to stdout.
/// This is the whole program; `main` only parses arguments.
pub fn run(opts: &Options) -> Outcome {
    let files = match scan_set(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ce-analyzer: {e}");
            return Outcome::Error;
        }
    };
    let config = Config::default();

    let mut violations: Vec<Violation> = Vec::new();
    let mut panic_counts: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for rel in &files {
        let path = opts.root.join(rel);
        let source = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ce-analyzer: cannot read {}: {e}", path.display());
                return Outcome::Error;
            }
        };
        let analysis = analyze_file(rel, &source, &config);
        violations.extend(analysis.violations);
        if !analysis.panic_sites.is_empty() {
            panic_counts.insert(rel.clone(), analysis.panic_sites);
        }
    }

    if opts.write_baseline {
        let baseline = Baseline {
            files: panic_counts
                .iter()
                .map(|(p, sites)| (p.clone(), sites.len()))
                .collect(),
        };
        if let Err(e) = fs::write(&opts.baseline_path, baseline.render()) {
            eprintln!(
                "ce-analyzer: cannot write {}: {e}",
                opts.baseline_path.display()
            );
            return Outcome::Error;
        }
        eprintln!(
            "ce-analyzer: wrote baseline ({} panic sites in {} files) to {}",
            baseline.total(),
            baseline.files.len(),
            opts.baseline_path.display()
        );
    } else {
        apply_ratchet(opts, &panic_counts, &mut violations);
    }

    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));

    let current_total: usize = panic_counts.values().map(Vec::len).sum();
    match opts.format {
        Format::Human => print_human(&violations, files.len(), current_total),
        Format::Json => println!("{}", render_json(&violations, files.len(), current_total)),
    }
    if violations.is_empty() {
        Outcome::Clean
    } else {
        Outcome::Violations
    }
}

/// Compares current panic counts to the baseline, producing violations
/// for growth and stderr notes for shrinkage.
fn apply_ratchet(
    opts: &Options,
    panic_counts: &BTreeMap<String, Vec<u32>>,
    violations: &mut Vec<Violation>,
) {
    let baseline = match fs::read_to_string(&opts.baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                violations.push(Violation {
                    rule: "panic-in-lib".to_string(),
                    file: "lint-baseline.json".to_string(),
                    line: 1,
                    col: 1,
                    message: format!("baseline is unreadable: {e}"),
                });
                return;
            }
        },
        Err(_) => {
            violations.push(Violation {
                rule: "panic-in-lib".to_string(),
                file: "lint-baseline.json".to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "no baseline at {}; run `ce-analyzer --write-baseline` and commit it",
                    opts.baseline_path.display()
                ),
            });
            return;
        }
    };
    let mut shrunk = 0usize;
    for (file, sites) in panic_counts {
        let allowed = baseline.allowed(file);
        if sites.len() > allowed {
            // Point at the last site: appended code is the likely culprit.
            let line = sites.last().copied().unwrap_or(1);
            violations.push(Violation {
                rule: "panic-in-lib".to_string(),
                file: file.clone(),
                line,
                col: 1,
                message: format!(
                    "{} panic sites (unwrap/expect/panic!/unreachable!) but the baseline \
                     ratchet allows {allowed}; return Result instead, or shrink another \
                     site and rerun --write-baseline",
                    sites.len()
                ),
            });
        } else if sites.len() < allowed {
            shrunk += allowed - sites.len();
        }
    }
    // Files that dropped out of the scan entirely also count as shrinkage.
    for (file, &allowed) in &baseline.files {
        if !panic_counts.contains_key(file) {
            shrunk += allowed;
        }
    }
    if shrunk > 0 {
        eprintln!(
            "ce-analyzer: note: {shrunk} panic sites below baseline — run \
             `ce-analyzer --write-baseline` to ratchet down"
        );
    }
}

/// Collects the workspace-relative scan set, sorted.
fn scan_set(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut files)?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk_rs(&facade_src, root, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| "scan path escaped the workspace root".to_string())?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

fn print_human(violations: &[Violation], files_scanned: usize, panic_total: usize) {
    for v in violations {
        println!(
            "{}:{}:{}: [{}] {}",
            v.file, v.line, v.col, v.rule, v.message
        );
    }
    if violations.is_empty() {
        println!(
            "ce-analyzer: clean — {files_scanned} files, 6 rules, \
             {panic_total} baselined panic sites"
        );
    } else {
        println!(
            "ce-analyzer: {} violation(s) in {files_scanned} files",
            violations.len()
        );
    }
}

/// Renders the machine-readable report (stable field and entry order).
pub fn render_json(violations: &[Violation], files_scanned: usize, panic_total: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"ok\": {},", violations.is_empty());
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"panic_sites\": {panic_total},");
    out.push_str("  \"violations\": [\n");
    let n = violations.len();
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 == n { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}{comma}",
            json_escape(&v.rule),
            json_escape(&v.file),
            v.line,
            v.col,
            json_escape(&v.message)
        );
    }
    out.push_str("  ]\n}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults() {
        let opts = parse_args(&["--root".to_string(), "/tmp/ws".to_string()]).unwrap();
        assert_eq!(opts.root, PathBuf::from("/tmp/ws"));
        assert_eq!(opts.format, Format::Human);
        assert!(!opts.write_baseline);
        assert_eq!(
            opts.baseline_path,
            PathBuf::from("/tmp/ws/lint-baseline.json")
        );
    }

    #[test]
    fn args_json_and_baseline() {
        let opts = parse_args(&[
            "--root".to_string(),
            "/ws".to_string(),
            "--format".to_string(),
            "json".to_string(),
            "--write-baseline".to_string(),
            "--baseline".to_string(),
            "/elsewhere/b.json".to_string(),
        ])
        .unwrap();
        assert_eq!(opts.format, Format::Json);
        assert!(opts.write_baseline);
        assert_eq!(opts.baseline_path, PathBuf::from("/elsewhere/b.json"));
    }

    #[test]
    fn args_rejects_unknown() {
        assert!(parse_args(&["--frobnicate".to_string()]).is_err());
        assert!(parse_args(&["--format".to_string(), "xml".to_string()]).is_err());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_report_shape() {
        let v = Violation {
            rule: "float-eq".to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "msg".to_string(),
        };
        let json = render_json(&[v], 10, 42);
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"files_scanned\": 10"));
        assert!(json.contains("\"panic_sites\": 42"));
        assert!(json.contains("\"line\": 3"));
        let clean = render_json(&[], 10, 42);
        assert!(clean.contains("\"ok\": true"));
    }
}
