//! Pass 1 of the three-pass analyzer: per-file item extraction.
//!
//! The file-local rules in [`rules`](crate::rules) see one file at a time;
//! the graph rules need a workspace-wide view. This module recovers that
//! view from the token stream of each file: every `fn` item (with its
//! visibility, owning `impl` type, `ce:` markers, and body extent), every
//! call site inside a body (free calls, path calls, method calls), the
//! per-function *facts* the graph rules reason about (allocation sites,
//! panic sites including slice indexing, nondeterminism-allowance uses),
//! every `pub` item eligible for dead-API detection, the file's `use`
//! imports, and a count of every identifier mentioned (the reference index
//! liveness is judged against).
//!
//! Extraction is purely syntactic and deliberately over-approximate in
//! the same direction everywhere: when the tokens are ambiguous, we record
//! *more* (an extra call edge, an extra fact) rather than less, so the
//! graph rules built on top can miss nothing that the lexer saw.

use crate::config::crate_key;
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{fn_prefix_info, item_end, matching_brace, matching_paren, test_region_mask};
use std::collections::BTreeSet;

/// One fact location inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found there (e.g. `` `.unwrap()` `` or `` `vec!` ``).
    pub what: String,
}

/// A call site inside a function body, as lexed (resolution happens in
/// [`resolve`](crate::resolve)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// An unqualified call `name(...)`.
    Free {
        /// Callee identifier.
        name: String,
        /// 1-based line of the callee token.
        line: u32,
    },
    /// A path-qualified call `a::b::name(...)`.
    Path {
        /// All path segments, last one being the callee name.
        segs: Vec<String>,
        /// 1-based line of the callee token.
        line: u32,
    },
    /// A method call `recv.name(...)`.
    Method {
        /// Method identifier.
        name: String,
        /// 1-based line of the callee token.
        line: u32,
    },
}

impl Call {
    /// The callee identifier (last path segment for path calls).
    pub fn name(&self) -> &str {
        match self {
            Call::Free { name, .. } | Call::Method { name, .. } => name,
            Call::Path { segs, .. } => segs.last().map(String::as_str).unwrap_or(""),
        }
    }

    /// The 1-based source line of the callee token.
    pub fn line(&self) -> u32 {
        match self {
            Call::Free { line, .. } | Call::Path { line, .. } | Call::Method { line, .. } => *line,
        }
    }
}

/// One `fn` item with everything the graph rules need to know about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Workspace-relative file path.
    pub file: String,
    /// Owning crate key (see [`crate_key`]).
    pub crate_key: String,
    /// Function name.
    pub name: String,
    /// The `impl` type this is a method of, if any.
    pub owner: Option<String>,
    /// Whether the surrounding impl is a trait impl (`impl T for U`) —
    /// such methods are reachable through the trait and never "dead".
    pub trait_impl: bool,
    /// Plain `pub` visibility (`pub(crate)`/`pub(super)` count as private).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Annotated `// ce:hot`.
    pub hot: bool,
    /// Annotated `// ce:entry` (request-handler root).
    pub entry: bool,
    /// Annotated `// ce:nonblocking` (event-loop tick, state-machine
    /// advance, …) — must not transitively reach a blocking fact.
    pub nonblocking: bool,
    /// Rules suppressed at this function by `ce:allow` markers bound to it.
    pub allows: Vec<String>,
    /// `(line, rule)` of every `ce:allow` marker *inside* the body —
    /// call-site-level suppression (the marker's line or the line below).
    pub allow_sites: Vec<(u32, String)>,
    /// Call sites inside the body (excluding nested `fn` bodies).
    pub calls: Vec<Call>,
    /// Allocation facts inside the body.
    pub allocs: Vec<Site>,
    /// Panic facts inside the body (unwrap/expect/panic-family macros and
    /// slice/array indexing).
    pub panics: Vec<Site>,
    /// Nondeterminism-allowance uses (wall clock, sockets) inside the
    /// body — the facts `determinism-taint` propagates.
    pub taints: Vec<Site>,
    /// Blocking facts inside the body (mutex/condvar waits, thread
    /// sleeps/joins, channel receives, blocking socket reads/accepts) —
    /// the facts `blocking-in-event-loop` propagates.
    pub blocking: Vec<Site>,
    /// `Ordering::SeqCst` sites inside the body — the facts the
    /// reachability half of `atomic-ordering` propagates.
    pub seqcst: Vec<Site>,
}

impl FnItem {
    /// Display name for witness paths: `Owner::name` or `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `pub` item eligible for `dead-pub-api` (free fn, inherent method,
/// struct, or enum in a library file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Workspace-relative file path.
    pub file: String,
    /// Owning crate key.
    pub crate_key: String,
    /// `"fn"`, `"struct"`, or `"enum"`.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// How many identifier tokens equal to `name` lie inside the item's
    /// own definition (at least 1: the name itself). Liveness requires
    /// more references than this across the whole workspace.
    pub own_refs: usize,
    /// Rules suppressed at this item by `ce:allow` markers bound to it.
    pub allows: Vec<String>,
}

/// Everything pass 1 extracted from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    /// Workspace-relative file path.
    pub file: String,
    /// Non-test `fn` items.
    pub fns: Vec<FnItem>,
    /// `pub` items eligible for dead-API detection.
    pub pub_items: Vec<PubItem>,
    /// `use` imports: local name → full path segments.
    pub imports: Vec<(String, Vec<String>)>,
    /// Glob imports (`use a::b::*`): the path prefix segments.
    pub globs: Vec<Vec<String>>,
    /// Identifier reference counts over every code token in the file
    /// (test regions included — a test is a legitimate consumer).
    pub refs: Vec<(String, usize)>,
}

/// Iterator-adapter method names that, when invoked on the *result of
/// another call in the same chain*, are taken to be `std` iterator/slice
/// adapters rather than workspace methods. This is the one deliberate
/// precision carve-out in method resolution: `xs.iter().zip(ys).map(f)`
/// would otherwise resolve `.map` to every workspace method named `map`.
/// A direct `receiver.map(f)` on a named receiver still resolves
/// conservatively to all same-named workspace methods.
pub const ITER_CHAIN_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "chars",
    "bytes",
    "lines",
    "split",
    "split_whitespace",
    "splitn",
    "windows",
    "chunks",
    "chunks_exact",
    "enumerate",
    "zip",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "rev",
    "take",
    "skip",
    "take_while",
    "skip_while",
    "step_by",
    "chain",
    "copied",
    "cloned",
    "peekable",
    "by_ref",
    "values",
    "keys",
    // Consumers: legal as the *end* of a chain (their receiver is an
    // adapter's output); a direct `recv.sum()` still stays ambiguous.
    "sum",
    "product",
    "fold",
    "count",
    "any",
    "all",
    "find",
    "position",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "last",
    "nth",
    "for_each",
    "unzip",
    "partition",
];

/// How many lines above a `fn`/`pub` item a `ce:allow` marker may sit and
/// still bind to that item (room for the `// ce:hot` marker and one
/// attribute line in between).
const ITEM_MARKER_REACH: u32 = 3;

/// Extracts every item, call, and fact from one file.
///
/// `rel_path` is workspace-relative with `/` separators; it decides the
/// crate key and whether the file is a binary root (whose `pub` items are
/// exempt from dead-API detection).
pub fn extract(rel_path: &str, source: &str) -> FileItems {
    let tokens = lex(source);
    let mut hot_lines: Vec<u32> = Vec::new();
    let mut entry_lines: Vec<u32> = Vec::new();
    let mut nonblocking_lines: Vec<u32> = Vec::new();
    let mut allow_markers: Vec<(u32, String)> = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        if body == "ce:hot" || body.starts_with("ce:hot ") {
            hot_lines.push(t.line);
        } else if body == "ce:entry" || body.starts_with("ce:entry ") {
            entry_lines.push(t.line);
        } else if body == "ce:nonblocking" || body.starts_with("ce:nonblocking ") {
            nonblocking_lines.push(t.line);
        } else if let Some(rest) = body.strip_prefix("ce:allow(") {
            let inner = rest.split(')').next().unwrap_or("");
            let rule = inner.split(',').next().unwrap_or("").trim().to_string();
            if !rule.is_empty() {
                allow_markers.push((t.line, rule));
            }
        }
    }

    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    // Index sites pass 2 proves bounded never become panic facts, so every
    // new dataflow proof burns the `panic-reachability` ratchet down.
    let proven_indexes = crate::dataflow::proven_index_sites(&code);
    let test_mask = test_region_mask(&code);
    let impls = impl_spans(&code);
    let raw_fns = fn_spans(&code);

    let key = crate_key(rel_path);
    let is_bin = rel_path.ends_with("/main.rs") || rel_path.contains("/src/bin/");

    let mut fns = Vec::new();
    for raw in &raw_fns {
        if test_mask.get(raw.fn_idx).copied().unwrap_or(false) {
            continue;
        }
        let Some((open, close)) = raw.body else {
            continue; // trait method declaration without a body
        };
        let fn_line = code[raw.fn_idx].line;
        let (owner, trait_impl) = innermost_impl(&impls, raw.fn_idx)
            .map(|im| (Some(im.owner.clone()), im.trait_impl))
            .unwrap_or((None, false));
        let (is_pub, _) = fn_prefix_info(&code, raw.fn_idx);
        let nested: Vec<(usize, usize)> = raw_fns
            .iter()
            .filter_map(|other| other.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        let mut item = FnItem {
            file: rel_path.to_string(),
            crate_key: key.clone(),
            name: raw.name.clone(),
            owner,
            trait_impl,
            is_pub,
            line: fn_line,
            hot: bound_marker(&hot_lines, fn_line, &raw_fns, &code),
            entry: bound_marker(&entry_lines, fn_line, &raw_fns, &code),
            nonblocking: bound_marker(&nonblocking_lines, fn_line, &raw_fns, &code),
            allows: bound_allows(&allow_markers, fn_line),
            allow_sites: {
                let (body_start, body_end) = (code[open].line, code[close].line);
                allow_markers
                    .iter()
                    .filter(|(l, _)| *l >= body_start && *l <= body_end)
                    .cloned()
                    .collect()
            },
            calls: Vec::new(),
            allocs: Vec::new(),
            panics: Vec::new(),
            taints: Vec::new(),
            blocking: Vec::new(),
            seqcst: Vec::new(),
        };
        collect_body_facts(
            &code,
            open,
            close,
            &nested,
            &allow_markers,
            &proven_indexes,
            &mut item,
        );
        fns.push(item);
    }

    let mut pub_items = Vec::new();
    if !is_bin {
        collect_pub_items(
            &code,
            &test_mask,
            rel_path,
            &key,
            &allow_markers,
            &fns,
            &raw_fns,
            &mut pub_items,
        );
    }

    let (imports, globs) = collect_imports(&code);
    let mut ref_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for t in &code {
        if t.kind == TokenKind::Ident {
            *ref_counts.entry(t.text.clone()).or_insert(0) += 1;
        }
    }

    FileItems {
        file: rel_path.to_string(),
        fns,
        pub_items,
        imports,
        globs,
        refs: ref_counts.into_iter().collect(),
    }
}

/// An `impl` block span with its subject type.
struct ImplSpan {
    open: usize,
    close: usize,
    owner: String,
    trait_impl: bool,
}

/// Finds every `impl` block: its brace span, the implemented-on type name,
/// and whether it is a trait impl.
fn impl_spans(code: &[&Token]) -> Vec<ImplSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Header runs to the opening brace (skip generic params; `<`/`>`
        // only nest as generics in this position).
        let mut j = i + 1;
        let mut open = None;
        let mut saw_for = false;
        let mut owner: Option<String> = None;
        let mut depth = 0i32;
        while j < code.len() {
            let t = code[j];
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(">>") {
                depth -= 2;
            } else if depth == 0 {
                if t.is_punct("{") {
                    open = Some(j);
                    break;
                }
                if t.is_ident("for") {
                    saw_for = true;
                    owner = None;
                } else if t.kind == TokenKind::Ident
                    && owner.is_none()
                    && !t.is_ident("dyn")
                    && !t.is_ident("mut")
                {
                    owner = Some(t.text.clone());
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        let close = matching_brace(code, open);
        spans.push(ImplSpan {
            open,
            close,
            owner: owner.unwrap_or_default(),
            trait_impl: saw_for,
        });
        // Continue scanning *inside* the impl too (nested impls are rare
        // but legal); the outer loop just advances past the keyword.
        i += 1;
    }
    spans
}

/// The innermost impl span containing code index `idx`.
fn innermost_impl(impls: &[ImplSpan], idx: usize) -> Option<&ImplSpan> {
    impls
        .iter()
        .filter(|im| im.open < idx && idx < im.close)
        .min_by_key(|im| im.close - im.open)
}

/// A raw `fn` definition: keyword index, name, and body brace span
/// (`None` for bodiless trait declarations).
struct RawFn {
    fn_idx: usize,
    name: String,
    body: Option<(usize, usize)>,
}

/// Finds every `fn` definition and its body span.
fn fn_spans(code: &[&Token]) -> Vec<RawFn> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("fn") || !code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            i += 1;
            continue;
        }
        let name = code[i + 1].text.clone();
        // Find the parameter list: the first `(` outside generic params.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut params_open = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(">>") {
                angle -= 2;
            } else if t.is_punct("(") && angle <= 0 {
                params_open = Some(j);
                break;
            } else if t.is_punct("{") || t.is_punct(";") {
                break; // malformed; bail on this candidate
            }
            j += 1;
        }
        let Some(params_open) = params_open else {
            i += 2;
            continue;
        };
        let params_close = matching_paren(code, params_open);
        // Find the body `{` (or `;` for a bodiless declaration), skipping
        // the return type and where clause.
        let mut k = params_close + 1;
        let mut body = None;
        let mut depth = 0i32;
        while k < code.len() {
            let t = code[k];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 {
                if t.is_punct("{") {
                    body = Some((k, matching_brace(code, k)));
                    break;
                }
                if t.is_punct(";") {
                    break;
                }
            }
            k += 1;
        }
        fns.push(RawFn {
            fn_idx: i,
            name,
            body,
        });
        i += 2;
    }
    fns
}

/// Whether any marker line binds to the fn starting at `fn_line` — the
/// marker's next `fn` in the file must be this one (same binding rule as
/// the file-local `ce:hot` handling).
fn bound_marker(marker_lines: &[u32], fn_line: u32, fns: &[RawFn], code: &[&Token]) -> bool {
    marker_lines.iter().any(|&ml| {
        ml < fn_line
            && fns
                .iter()
                .filter(|f| code[f.fn_idx].line > ml)
                .map(|f| code[f.fn_idx].line)
                .min()
                == Some(fn_line)
    })
}

/// `ce:allow` rules bound to an item on `item_line`: markers at most
/// [`ITEM_MARKER_REACH`] lines above it (or on the same line).
fn bound_allows(markers: &[(u32, String)], item_line: u32) -> Vec<String> {
    markers
        .iter()
        .filter(|(ml, _)| *ml <= item_line && item_line - *ml <= ITEM_MARKER_REACH)
        .map(|(_, rule)| rule.clone())
        .collect()
}

/// Collects calls, allocation facts, panic facts, and taint facts from one
/// fn body (skipping nested fn bodies, which own their tokens).
fn collect_body_facts(
    code: &[&Token],
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
    allow_markers: &[(u32, String)],
    proven_indexes: &BTreeSet<(u32, u32)>,
    item: &mut FnItem,
) {
    let allow = crate::config::allowances_for(&item.file);
    let cfg = crate::config::Config::default();
    // An alloc fact carrying a site-level allow marker for either alloc
    // rule is deliberate and does not taint callers transitively.
    let alloc_allowed = |line: u32| {
        allow_markers.iter().any(|(ml, rule)| {
            (*ml == line || ml + 1 == line)
                && (rule == "hot-path-alloc" || rule == "hot-path-transitive-alloc")
        })
    };
    // A blocking fact under a site-level `ce:allow(blocking, …)` is a
    // reviewed, bounded wait (or a nonblocking-mode fd call that merely
    // shares a blocking API's name) and is not propagated to callers.
    let blocking_allowed = |line: u32| {
        allow_markers
            .iter()
            .any(|(ml, rule)| (*ml == line || ml + 1 == line) && rule == "blocking")
    };
    let mut i = open;
    while i <= close.min(code.len().saturating_sub(1)) {
        if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == i) {
            i = nc + 1;
            continue;
        }
        let t = code[i];

        // Indexing: `[` in postfix position after an expression.
        if t.is_punct("[") && i > open {
            let prev = code[i - 1];
            let postfix = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(")")
                || prev.is_punct("]");
            if postfix && !proven_indexes.contains(&(t.line, t.col)) {
                item.panics.push(Site {
                    line: t.line,
                    col: t.col,
                    what: "slice/array indexing".to_string(),
                });
            }
            i += 1;
            continue;
        }

        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let prev_dot = i > 0 && code[i - 1].is_punct(".");
        let prev_colons = i > 0 && code[i - 1].is_punct("::");
        let next_paren = code.get(i + 1).is_some_and(|n| n.is_punct("("));
        let next_bang = code.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let next_colons = code.get(i + 1).is_some_and(|n| n.is_punct("::"));

        // Panic facts.
        let panic_what = if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
            Some(format!("`.{}()`", t.text))
        } else if next_bang
            && matches!(
                t.text.as_str(),
                "panic"
                    | "unreachable"
                    | "todo"
                    | "unimplemented"
                    | "assert"
                    | "assert_eq"
                    | "assert_ne"
            )
        {
            Some(format!("`{}!`", t.text))
        } else {
            None
        };
        if let Some(what) = panic_what {
            item.panics.push(Site {
                line: t.line,
                col: t.col,
                what,
            });
        }

        // `Ordering::SeqCst` facts — the graph half of `atomic-ordering`
        // flags these when they are reachable from a hot/nonblocking root.
        if t.text == "Ordering"
            && next_colons
            && code.get(i + 2).is_some_and(|n| n.is_ident("SeqCst"))
        {
            item.seqcst.push(Site {
                line: t.line,
                col: t.col,
                what: "`Ordering::SeqCst`".to_string(),
            });
        }

        // Allocation facts (same vocabulary as the file-local
        // `hot-path-alloc` rule).
        if !alloc_allowed(t.line) {
            if prev_dot
                && (next_paren || next_colons)
                && cfg.hot_forbidden_methods.contains(&t.text.as_str())
            {
                item.allocs.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("`.{}()`", t.text),
                });
            } else if next_bang && cfg.hot_forbidden_macros.contains(&t.text.as_str()) {
                item.allocs.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("`{}!`", t.text),
                });
            } else if next_colons
                && code.get(i + 2).is_some()
                && cfg
                    .hot_forbidden_paths
                    .iter()
                    .any(|(ty, m)| t.text == *ty && code[i + 2].is_ident(m))
            {
                item.allocs.push(Site {
                    line: t.line,
                    col: t.col,
                    what: format!("`{}::{}`", t.text, code[i + 2].text),
                });
            }
        }

        // Taint facts: wall-clock and socket uses (legal here only under
        // a crate allowance; the taint rule stops deterministic crates
        // from *reaching* them).
        if (t.text == "Instant" || t.text == "SystemTime")
            && next_colons
            && code.get(i + 2).is_some_and(|n| n.is_ident("now"))
            && allow.wall_clock
        {
            item.taints.push(Site {
                line: t.line,
                col: t.col,
                what: format!("`{}::now` (wall clock)", t.text),
            });
        } else if matches!(t.text.as_str(), "TcpListener" | "TcpStream" | "UdpSocket")
            && allow.sockets
        {
            item.taints.push(Site {
                line: t.line,
                col: t.col,
                what: format!("`{}` (socket)", t.text),
            });
        } else if matches!(
            t.text.as_str(),
            "AsRawFd" | "RawFd" | "as_raw_fd" | "from_raw_fd" | "into_raw_fd"
        ) && allow.raw_fds
        {
            // Raw-fd surface is a taint fact like sockets: legal only in
            // the event loop, and deterministic crates must not reach it.
            item.taints.push(Site {
                line: t.line,
                col: t.col,
                what: format!("`{}` (raw fd)", t.text),
            });
        }

        // Blocking facts: calls that can park the thread. Name-based and
        // over-approximate like everything else here — a lock-free method
        // that shares a blocking API's name either gets renamed (the
        // honest fix) or a justified site-level `ce:allow(blocking)`.
        if !blocking_allowed(t.line) {
            let blocking_what = if prev_dot && next_paren {
                match t.text.as_str() {
                    "lock" | "try_lock_until" => Some(format!("`.{}()` (mutex)", t.text)),
                    "wait" | "wait_timeout" | "wait_while" => {
                        Some(format!("`.{}()` (condvar)", t.text))
                    }
                    "recv" | "recv_timeout" | "recv_deadline" => {
                        Some(format!("`.{}()` (channel receive)", t.text))
                    }
                    "read" | "read_exact" | "read_to_end" | "read_to_string" => {
                        Some(format!("`.{}()` (blocking read)", t.text))
                    }
                    "accept" => Some("`.accept()` (blocking accept)".to_string()),
                    // Only the no-argument form is a thread join;
                    // `slice.join(", ")` is string concatenation.
                    "join" if code.get(i + 2).is_some_and(|n| n.is_punct(")")) => {
                        Some("`.join()` (thread join)".to_string())
                    }
                    _ => None,
                }
            } else if t.text == "sleep"
                && next_paren
                && prev_colons
                && i >= 2
                && code[i - 2].is_ident("thread")
            {
                Some("`thread::sleep`".to_string())
            } else {
                None
            };
            if let Some(what) = blocking_what {
                item.blocking.push(Site {
                    line: t.line,
                    col: t.col,
                    what,
                });
            }
        }

        // Call sites.
        if next_paren && !next_bang {
            if prev_dot {
                if !is_std_chain_link(code, i) {
                    item.calls.push(Call::Method {
                        name: t.text.clone(),
                        line: t.line,
                    });
                }
            } else if prev_colons {
                let segs = path_segments_ending_at(code, i);
                if segs.len() > 1 {
                    item.calls.push(Call::Path { segs, line: t.line });
                }
            } else if !is_keyword(&t.text) && (i == 0 || !code[i - 1].is_ident("fn")) {
                item.calls.push(Call::Free {
                    name: t.text.clone(),
                    line: t.line,
                });
            }
        } else if prev_dot && next_colons && !is_std_chain_link(code, i) {
            // Turbofish method call `.collect::<Vec<_>>()`.
            item.calls.push(Call::Method {
                name: t.text.clone(),
                line: t.line,
            });
        }
        i += 1;
    }
}

/// Is the method call at code index `i` (an ident preceded by `.`) a link
/// in a `std` iterator chain? True when its receiver is the result of a
/// previous `.adapter(...)` call whose name is in [`ITER_CHAIN_METHODS`].
fn is_std_chain_link(code: &[&Token], i: usize) -> bool {
    if !ITER_CHAIN_METHODS.contains(&code[i].text.as_str()) {
        return false;
    }
    // Receiver must be `)` closing a previous call...
    if i < 2 || !code[i - 2].is_punct(")") {
        return false;
    }
    // ...whose matching `(` is preceded by `.name` with name in the set.
    let close = i - 2;
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if code[j].is_punct(")") {
            depth += 1;
        } else if code[j].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    j >= 2
        && code[j - 1].kind == TokenKind::Ident
        && ITER_CHAIN_METHODS.contains(&code[j - 1].text.as_str())
        && code[j - 2].is_punct(".")
}

/// Walks back from the callee ident at `i` (preceded by `::`) collecting
/// the full `a::b::name` segment chain, skipping turbofish generics.
fn path_segments_ending_at(code: &[&Token], i: usize) -> Vec<String> {
    let mut segs = vec![code[i].text.clone()];
    let mut j = i;
    while j >= 2 && code[j - 1].is_punct("::") {
        let prev = code[j - 2];
        if prev.is_punct(">") || prev.is_punct(">>") {
            // Turbofish in the middle (`Vec::<u8>::new`): skip the generic
            // group back to its `<`.
            let mut depth: i32 = if prev.is_punct(">>") { 2 } else { 1 };
            let mut k = j - 2;
            while k > 0 && depth > 0 {
                k -= 1;
                if code[k].is_punct(">") {
                    depth += 1;
                } else if code[k].is_punct(">>") {
                    depth += 2;
                } else if code[k].is_punct("<") {
                    depth -= 1;
                }
            }
            // Expression turbofish (`Vec::<u8>::new`) puts `::` between
            // the segment ident and its `<`; type position omits it.
            let seg_idx =
                if k >= 2 && code[k - 1].is_punct("::") && code[k - 2].kind == TokenKind::Ident {
                    k - 2
                } else if k >= 1 && code[k - 1].kind == TokenKind::Ident {
                    k - 1
                } else {
                    break;
                };
            segs.push(code[seg_idx].text.clone());
            j = seg_idx;
        } else if prev.kind == TokenKind::Ident {
            segs.push(prev.text.clone());
            j -= 2;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Rust keywords and primitives that look like calls but are not
/// (`if (x)`, `return (y)`, `matches!`-free forms, tuple-struct-like
/// primitive casts).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "impl"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "const"
            | "static"
            | "type"
            | "trait"
            | "struct"
            | "enum"
            | "extern"
            | "box"
    )
}

/// Collects `pub` free fns, inherent methods, structs, and enums for
/// dead-API detection.
#[allow(clippy::too_many_arguments)]
fn collect_pub_items(
    code: &[&Token],
    test_mask: &[bool],
    rel_path: &str,
    key: &str,
    allow_markers: &[(u32, String)],
    fns: &[FnItem],
    raw_fns: &[RawFn],
    out: &mut Vec<PubItem>,
) {
    // Structs and enums.
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        let kind = if t.is_ident("struct") {
            Some("struct")
        } else if t.is_ident("enum") {
            Some("enum")
        } else {
            None
        };
        if let Some(kind) = kind {
            if !test_mask.get(i).copied().unwrap_or(false)
                && code.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                let (is_pub, _) = fn_prefix_info(code, i);
                if is_pub {
                    let name = code[i + 1].text.clone();
                    let end = item_end(code, i);
                    let own_refs = code[i..=end.min(code.len() - 1)]
                        .iter()
                        .filter(|t| t.is_ident(&name))
                        .count();
                    out.push(PubItem {
                        file: rel_path.to_string(),
                        crate_key: key.to_string(),
                        kind,
                        name,
                        line: t.line,
                        own_refs,
                        allows: bound_allows(allow_markers, t.line),
                    });
                }
            }
        }
        i += 1;
    }
    // Functions: reuse the extracted FnItems (non-test, with bodies) plus
    // their spans from raw_fns for own-reference counting.
    for f in fns {
        if !f.is_pub || f.trait_impl || f.name == "main" {
            continue;
        }
        // A pub method on a private type is reachable only where the type
        // is; keep it in scope anyway — the reference index decides.
        let span = raw_fns
            .iter()
            .find(|r| code[r.fn_idx].line == f.line && r.name == f.name)
            .and_then(|r| r.body.map(|(_, c)| (r.fn_idx, c)));
        let own_refs = match span {
            Some((start, end)) => code[start..=end.min(code.len() - 1)]
                .iter()
                .filter(|t| t.is_ident(&f.name))
                .count(),
            None => 1,
        };
        out.push(PubItem {
            file: rel_path.to_string(),
            crate_key: key.to_string(),
            kind: "fn",
            name: f.name.clone(),
            line: f.line,
            own_refs,
            allows: f.allows.clone(),
        });
    }
}

/// Parses every `use` declaration into (local name → path segments) plus
/// glob prefixes.
#[allow(clippy::type_complexity)]
fn collect_imports(code: &[&Token]) -> (Vec<(String, Vec<String>)>, Vec<Vec<String>>) {
    let mut imports = Vec::new();
    let mut globs = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("use") && !(i > 0 && code[i - 1].is_punct(".")) {
            let end = code
                .iter()
                .enumerate()
                .skip(i)
                .find(|(_, t)| t.is_punct(";"))
                .map(|(k, _)| k)
                .unwrap_or(code.len());
            parse_use_tree(&code[i + 1..end], &[], &mut imports, &mut globs);
            i = end + 1;
            continue;
        }
        i += 1;
    }
    (imports, globs)
}

/// Recursive-descent parse of a use tree (`a::b::{c, d as e, f::*}`).
fn parse_use_tree(
    toks: &[&Token],
    prefix: &[String],
    imports: &mut Vec<(String, Vec<String>)>,
    globs: &mut Vec<Vec<String>>,
) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Ident && t.text != "as" {
            segs.push(t.text.clone());
            i += 1;
        } else if t.is_punct("::") {
            i += 1;
        } else if t.is_punct("*") {
            let mut full = prefix.to_vec();
            full.extend(segs.iter().cloned());
            globs.push(full);
            return;
        } else if t.is_punct("{") {
            let close = brace_end(toks, i);
            let mut full = prefix.to_vec();
            full.extend(segs.iter().cloned());
            // Split the group on top-level commas.
            let inner = &toks[i + 1..close];
            let mut start = 0;
            let mut depth = 0i32;
            for (k, it) in inner.iter().enumerate() {
                if it.is_punct("{") {
                    depth += 1;
                } else if it.is_punct("}") {
                    depth -= 1;
                } else if it.is_punct(",") && depth == 0 {
                    parse_use_tree(&inner[start..k], &full, imports, globs);
                    start = k + 1;
                }
            }
            if start < inner.len() {
                parse_use_tree(&inner[start..], &full, imports, globs);
            }
            return;
        } else if t.is_ident("as") {
            // `path as alias`
            if let Some(alias) = toks.get(i + 1) {
                let mut full = prefix.to_vec();
                full.extend(segs.iter().cloned());
                imports.push((alias.text.clone(), full));
            }
            return;
        } else {
            i += 1;
        }
    }
    if let Some(last) = segs.last().cloned() {
        let mut full = prefix.to_vec();
        full.extend(segs);
        imports.push((last, full));
    }
}

/// Index of the `}` matching the `{` at `open` within a token slice.
fn brace_end(toks: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_fn<'a>(items: &'a FileItems, name: &str) -> &'a FnItem {
        items
            .fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` extracted: {:?}", items.fns))
    }

    #[test]
    fn extracts_fn_with_owner_and_visibility() {
        let src =
            "struct S;\nimpl S {\n  pub fn m(&self) {}\n  fn p(&self) {}\n}\npub fn free() {}";
        let items = extract("crates/core/src/x.rs", src);
        let m = first_fn(&items, "m");
        assert_eq!(m.owner.as_deref(), Some("S"));
        assert!(m.is_pub && !m.trait_impl);
        let p = first_fn(&items, "p");
        assert!(!p.is_pub);
        let free = first_fn(&items, "free");
        assert!(free.owner.is_none() && free.is_pub);
    }

    #[test]
    fn trait_impl_methods_marked() {
        let src = "impl std::fmt::Display for S {\n  fn fmt(&self) {}\n}";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "fmt");
        assert_eq!(f.owner.as_deref(), Some("S"));
        assert!(f.trait_impl);
    }

    #[test]
    fn call_kinds_extracted() {
        let src =
            "fn f() {\n  helper();\n  a::b::qualified();\n  recv.method();\n  Vec::<u8>::new();\n}";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "f");
        let names: Vec<&str> = f.calls.iter().map(|c| c.name()).collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"qualified"));
        assert!(names.contains(&"method"));
        assert!(names.contains(&"new"));
        let path = f
            .calls
            .iter()
            .find_map(|c| match c {
                Call::Path { segs, .. } if segs.last().is_some_and(|s| s == "qualified") => {
                    Some(segs.clone())
                }
                _ => None,
            })
            .expect("path call");
        assert_eq!(path, ["a", "b", "qualified"]);
    }

    #[test]
    fn iterator_chain_methods_are_not_calls() {
        let src = "fn f(xs: &[f64]) -> f64 {\n  xs.iter().zip(xs).map(|(a, b)| a * b).sum()\n}";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "f");
        // `.iter` is ambiguous (named receiver) but `.zip`/`.map`/`.sum`
        // ride the chain; `.sum` follows `.map(...)` so it is std too.
        let names: Vec<&str> = f.calls.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["iter"], "{:?}", f.calls);
    }

    #[test]
    fn direct_receiver_method_stays_ambiguous() {
        let src = "fn f(s: &Series) -> Series { s.map(|v| v + 1.0) }";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name(), "map");
    }

    #[test]
    fn panic_and_alloc_facts() {
        let src = "fn f(o: Option<u32>, xs: &[u32]) -> u32 {\n  let v = vec![1];\n  let _ = v.to_vec();\n  panic!();\n  xs[0] + o.unwrap()\n}";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "f");
        let panics: Vec<&str> = f.panics.iter().map(|s| s.what.as_str()).collect();
        assert!(panics.contains(&"`panic!`"));
        assert!(panics.contains(&"`.unwrap()`"));
        assert!(panics.contains(&"slice/array indexing"));
        let allocs: Vec<&str> = f.allocs.iter().map(|s| s.what.as_str()).collect();
        assert!(allocs.contains(&"`vec!`"));
        assert!(allocs.contains(&"`.to_vec()`"));
    }

    #[test]
    fn attribute_and_type_brackets_are_not_indexing() {
        let src = "#[derive(Debug)]\nfn f(a: [u8; 4], b: &[f64]) -> Vec<[u8; 2]> { let _ = (a, b); Vec::new() }";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "f");
        assert!(f.panics.is_empty(), "{:?}", f.panics);
    }

    #[test]
    fn test_fns_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n  fn helper(o: Option<u32>) -> u32 { o.unwrap() }\n}\nfn live() {}";
        let items = extract("crates/core/src/x.rs", src);
        assert!(items.fns.iter().all(|f| f.name != "helper"));
        assert!(items.fns.iter().any(|f| f.name == "live"));
    }

    #[test]
    fn markers_bind_to_next_fn() {
        let src = "// ce:hot\nfn hot() {}\n// ce:entry\nfn entry() {}\nfn neither() {}";
        let items = extract("crates/core/src/x.rs", src);
        assert!(first_fn(&items, "hot").hot);
        assert!(!first_fn(&items, "hot").entry);
        assert!(first_fn(&items, "entry").entry);
        assert!(!first_fn(&items, "neither").hot && !first_fn(&items, "neither").entry);
    }

    #[test]
    fn allow_markers_bind_within_reach() {
        let src = "// ce:allow(panic-reachability, reason = \"checked\")\n// ce:hot\nfn close() {}\n\n\n\n// ce:allow(dead-pub-api, reason = \"far\")\n\n\n\nfn far() {}";
        let items = extract("crates/core/src/x.rs", src);
        assert_eq!(first_fn(&items, "close").allows, ["panic-reachability"]);
        assert!(first_fn(&items, "far").allows.is_empty());
    }

    #[test]
    fn pub_items_and_own_refs() {
        let src = "pub struct Lonely { x: u32 }\npub fn solo() { solo_helper(); }\nfn solo_helper() {}\npub(crate) fn internal() {}";
        let items = extract("crates/core/src/x.rs", src);
        let kinds: Vec<(&str, &str)> = items
            .pub_items
            .iter()
            .map(|p| (p.kind, p.name.as_str()))
            .collect();
        assert!(kinds.contains(&("struct", "Lonely")));
        assert!(kinds.contains(&("fn", "solo")));
        assert!(!kinds.iter().any(|(_, n)| *n == "internal"));
        let lonely = items.pub_items.iter().find(|p| p.name == "Lonely").unwrap();
        assert_eq!(lonely.own_refs, 1);
    }

    #[test]
    fn bin_files_have_no_pub_items() {
        let src = "pub fn helper() {}\nfn main() { helper(); }";
        let items = extract("crates/bench/src/bin/tool.rs", src);
        assert!(items.pub_items.is_empty());
        let items = extract("crates/serve/src/main.rs", src);
        assert!(items.pub_items.is_empty());
    }

    #[test]
    fn imports_parsed_with_groups_aliases_and_globs() {
        let src = "use std::collections::BTreeMap;\nuse ce_timeseries::{HourlySeries, kernels::dot_slices};\nuse a::b as c;\nuse ce_grid::prelude::*;";
        let items = extract("crates/core/src/x.rs", src);
        let get = |name: &str| {
            items
                .imports
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| p.clone())
        };
        assert_eq!(get("BTreeMap").unwrap(), ["std", "collections", "BTreeMap"]);
        assert_eq!(
            get("HourlySeries").unwrap(),
            ["ce_timeseries", "HourlySeries"]
        );
        assert_eq!(
            get("dot_slices").unwrap(),
            ["ce_timeseries", "kernels", "dot_slices"]
        );
        assert_eq!(get("c").unwrap(), ["a", "b"]);
        assert_eq!(items.globs, vec![vec!["ce_grid", "prelude"]]);
    }

    #[test]
    fn refs_count_all_identifiers() {
        let src = "fn f() { g(); }\n#[cfg(test)]\nmod tests { fn t() { super::f(); } }";
        let items = extract("crates/core/src/x.rs", src);
        let count = |n: &str| {
            items
                .refs
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(count("f"), 2);
        assert_eq!(count("g"), 1);
    }

    #[test]
    fn nonblocking_marker_binds_to_next_fn() {
        let src = "// ce:nonblocking\nfn tick() {}\nfn other() {}";
        let items = extract("crates/serve/src/x.rs", src);
        assert!(first_fn(&items, "tick").nonblocking);
        assert!(!first_fn(&items, "other").nonblocking);
    }

    #[test]
    fn blocking_facts_extracted() {
        let src = "fn f(m: &std::sync::Mutex<u32>, h: std::thread::JoinHandle<()>) {\n  let _ = m.lock();\n  std::thread::sleep(std::time::Duration::from_millis(1));\n  let _ = h.join();\n  let _ = rx.recv();\n}";
        let items = extract("crates/core/src/x.rs", src);
        let f = first_fn(&items, "f");
        let whats: Vec<&str> = f.blocking.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&"`.lock()` (mutex)"), "{whats:?}");
        assert!(whats.contains(&"`thread::sleep`"), "{whats:?}");
        assert!(whats.contains(&"`.join()` (thread join)"), "{whats:?}");
        assert!(whats.contains(&"`.recv()` (channel receive)"), "{whats:?}");
    }

    #[test]
    fn string_join_is_not_a_blocking_fact() {
        let src = "fn f(parts: &[&str]) -> String { parts.join(\", \") }";
        let items = extract("crates/core/src/x.rs", src);
        assert!(first_fn(&items, "f").blocking.is_empty());
    }

    #[test]
    fn allow_blocking_suppresses_the_fact() {
        let src = "fn f(m: &std::sync::Mutex<u32>) {\n  // ce:allow(blocking, reason = \"bounded critical section\")\n  let _ = m.lock();\n}";
        let items = extract("crates/serve/src/x.rs", src);
        assert!(first_fn(&items, "f").blocking.is_empty());
    }

    #[test]
    fn taint_facts_only_in_allowance_crates() {
        let src = "fn f() { let _ = std::time::Instant::now(); \
                   let _l: Option<TcpListener> = None; \
                   let _fd = listener.as_raw_fd(); }";
        let serve = extract("crates/serve/src/x.rs", src);
        let taints: Vec<&str> = serve.fns[0]
            .taints
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert_eq!(taints.len(), 3, "{taints:?}");
        assert!(taints.iter().any(|t| t.contains("raw fd")), "{taints:?}");
        let core = extract("crates/core/src/x.rs", src);
        assert!(core.fns[0].taints.is_empty());
    }
}
