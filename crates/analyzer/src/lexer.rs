//! A small hand-rolled Rust lexer.
//!
//! The analyzer's rules are lexical: they match identifier/punctuation
//! sequences (`HashMap`, `Instant :: now`, `. unwrap (`), comment markers
//! (`// ce:hot`, `// ce:allow(...)`), and literal kinds (float vs integer).
//! Full parsing is unnecessary — and `syn` is unavailable because the
//! workspace builds offline — so this module tokenizes just enough of the
//! language to make those matches sound:
//!
//! - identifiers and keywords (one token kind; rules match on text),
//! - integer vs float literals (including exponents and type suffixes),
//! - string / raw-string / byte-string / char literals (so rule patterns
//!   never fire inside literal text),
//! - lifetimes vs char literals (`'a` vs `'a'`),
//! - line and block comments (kept as tokens — markers live in them),
//! - multi-character operators (`==`, `!=`, `::`, `->`, …) with maximal
//!   munch so `=>` is never misread as `=` `=` or `==`.
//!
//! Every token carries its 1-based line and column for diagnostics.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`0.0`, `1e-9`, `2.5f32`, `1f64`).
    Float,
    /// A string, raw-string, byte-string, or byte literal.
    Str,
    /// A character literal (`'a'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `//` comment (doc comments included); text is the full comment.
    LineComment,
    /// A `/* ... */` comment (nesting handled); text is the full comment.
    BlockComment,
    /// An operator or delimiter, possibly multi-character (`==`, `::`).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// The exact source text of the lexeme.
    pub text: String,
    /// 1-based source line of the first character.
    pub line: u32,
    /// 1-based source column of the first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Multi-character operators, longest first so maximal munch is a simple
/// prefix scan.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Tokenizes Rust source. Unknown bytes become single-character `Punct`
/// tokens, so lexing never fails — a garbled file just produces tokens no
/// rule matches.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one byte (multi-byte UTF-8 continuation bytes keep the
    /// column — close enough for diagnostics).
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek() {
            let (start, line, col) = (self.pos, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek_at(1) == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                b'r' if self.is_raw_string_start(0) => {
                    self.bump(); // r
                    self.raw_string();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek_at(1) == Some(b'"') => {
                    self.bump(); // b
                    self.bump(); // "
                    self.quoted_string(b'"');
                    self.push(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek_at(1) == Some(b'r') && self.is_raw_string_start(1) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek_at(1) == Some(b'\'') => {
                    self.bump(); // b
                    self.bump(); // '
                    self.quoted_string(b'\'');
                    self.push(TokenKind::Str, start, line, col);
                }
                b'"' => {
                    self.bump();
                    self.quoted_string(b'"');
                    self.push(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    if self.is_lifetime() {
                        self.bump(); // '
                        while self.peek().is_some_and(is_ident_continue) {
                            self.bump();
                        }
                        self.push(TokenKind::Lifetime, start, line, col);
                    } else {
                        self.bump();
                        self.quoted_string(b'\'');
                        self.push(TokenKind::Char, start, line, col);
                    }
                }
                b'0'..=b'9' => {
                    let kind = self.number();
                    self.push(kind, start, line, col);
                }
                _ if is_ident_start(b) => {
                    while self.peek().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ => {
                    let rest = &self.src[self.pos..];
                    let multi = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p));
                    match multi {
                        Some(p) => self.bump_n(p.len()),
                        None => self.bump(),
                    }
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.tokens
    }

    /// Consumes a `/* ... */` comment, handling nesting.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (None, _) => break,
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// Is `r` (at `self.pos + off`) the start of a raw (byte) string,
    /// i.e. followed by zero or more `#` then `"`? Distinguishes `r"..."`
    /// and `r#"..."#` from identifiers like `r#keyword` and plain `r`.
    fn is_raw_string_start(&self, off: usize) -> bool {
        let mut i = off + 1; // past the r
        while self.peek_at(i) == Some(b'#') {
            i += 1;
        }
        // `r#ident` (raw identifier) has a # then an ident char, never a
        // quote, so requiring the quote suffices.
        self.peek_at(i) == Some(b'"')
    }

    /// After consuming `r` (and optionally `b`), consumes `#*" ... "#*`.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() == Some(b'"') {
            self.bump();
        }
        loop {
            match self.peek() {
                None => break,
                Some(b'"') => {
                    self.bump();
                    let mut matched = 0usize;
                    while matched < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        matched += 1;
                    }
                    if matched == hashes {
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes the remainder of a quoted literal (opening quote already
    /// consumed), honoring backslash escapes.
    fn quoted_string(&mut self, quote: u8) {
        loop {
            match self.peek() {
                None => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b) if b == quote => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// `'` starts a lifetime (not a char literal) when followed by an
    /// identifier that is *not* itself closed by another `'`.
    fn is_lifetime(&self) -> bool {
        match self.peek_at(1) {
            Some(b) if is_ident_start(b) => {
                let mut i = 2;
                while self.peek_at(i).is_some_and(is_ident_continue) {
                    i += 1;
                }
                self.peek_at(i) != Some(b'\'')
            }
            _ => false,
        }
    }

    /// Consumes a numeric literal, classifying it as [`TokenKind::Int`] or
    /// [`TokenKind::Float`]. `1.max(2)` lexes as Int `1` + `.` + `max`;
    /// `1.` and `1.5` and `1e9` and `1f64` are floats; `0x1E` is an int.
    fn number(&mut self) -> TokenKind {
        let radix_prefix = self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
            );
        if radix_prefix {
            self.bump();
            self.bump();
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            return TokenKind::Int;
        }

        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
        // Fractional part: a dot NOT followed by an identifier start
        // (method call) or another dot (range).
        if self.peek() == Some(b'.') {
            let next = self.peek_at(1);
            let is_method_or_range = next.is_some_and(|c| is_ident_start(c) || c == b'.');
            if !is_method_or_range {
                is_float = true;
                self.bump(); // .
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut i = 1;
            if matches!(self.peek_at(i), Some(b'+') | Some(b'-')) {
                i += 1;
            }
            if self.peek_at(i).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump_n(i);
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.bump();
                }
            }
        }
        // Type suffix: f32/f64 force float; u*/i* keep int.
        if self.peek().is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek().is_some_and(is_ident_continue) {
                self.bump();
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
        }
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn foo() -> f64 { a == b }");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "foo", "(", ")", "->", "f64", "{", "a", "==", "b", "}"]
        );
        assert_eq!(toks[4].0, TokenKind::Punct); // ->
        assert_eq!(toks[8].0, TokenKind::Punct); // ==
    }

    #[test]
    fn float_vs_int_literals() {
        assert_eq!(kinds("1")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.5e-9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1_000.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("2.5f32")[0].0, TokenKind::Float);
        assert_eq!(kinds("1u64")[0].0, TokenKind::Int);
        assert_eq!(kinds("0x1E")[0].0, TokenKind::Int);
        assert_eq!(kinds("0b101")[0].0, TokenKind::Int);
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".to_string()));
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[2].0, TokenKind::Int);
    }

    #[test]
    fn comments_are_tokens() {
        let toks = kinds("a // ce:hot\nb /* block */ c");
        assert_eq!(toks[1], (TokenKind::LineComment, "// ce:hot".to_string()));
        assert_eq!(toks[3].0, TokenKind::BlockComment);
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn strings_hide_rule_patterns() {
        let toks = kinds(r#"let s = "HashMap == 0.0";"#);
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks.len(), 5); // let s = <str> ;
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"r#"quote " inside"# x"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("&'a str 'x' '\\n'");
        assert_eq!(toks[1].0, TokenKind::Lifetime);
        assert_eq!(toks[3].0, TokenKind::Char);
        assert_eq!(toks[4].0, TokenKind::Char);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#""a \" b" x"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }
}
