//! `ce-analyzer`: the workspace invariant linter.
//!
//! Carbon Explorer's exploration engine rests on three promises that the
//! compiler cannot check: parallel sweeps are **bitwise-identical** to
//! serial runs, the streaming dispatch kernels are **allocation-free**
//! after scratch warm-up, and fused float reductions preserve **exact
//! operation order**. A stray `HashMap` iteration, an `Instant::now`, or a
//! `vec![]` in the wrong function silently invalidates the paper's
//! Figure 13–15 reproduction while every test still passes.
//!
//! This crate is the missing correctness-tooling layer: a dependency-free
//! static-analysis pass (the workspace builds offline, so no `syn`) with a
//! [hand-rolled lexer](lexer) and a **three-pass** architecture. Pass 1
//! lexes every library file in parallel, runs the file-local
//! [rules](rules), and [extracts](items) each file's items — functions,
//! impl owners, visibility, `ce:` markers, call sites, and per-function
//! alloc/panic/nondeterminism/blocking/unsafe/cast/`SeqCst` facts. Pass 2
//! is a conservative intraprocedural [dataflow](dataflow) walk over each
//! function body, tracking integer constants, `len()`-derived bounds,
//! `min`/`clamp` range facts, and guard conditions, and classifying every
//! unchecked arithmetic and bracket-index site as *proven in-range* or
//! not. Pass 3 [resolves](resolve) the call sites into a conservative
//! workspace-wide [call graph](callgraph) and runs the graph rules.
//!
//! File-local rules:
//!
//! 1. `nondeterminism` — no hash-ordered collections or ambient state in
//!    deterministic crates (narrow allowances: `CE_THREADS` in
//!    `ce-parallel`, wall-clock/sockets in `ce-bench`/`ce-serve`);
//! 2. `hot-path-alloc` — functions marked `// ce:hot` must not allocate;
//! 3. `float-eq` — float `==`/`!=` outside tests needs an explicit
//!    `// ce:allow(float-eq, reason = "…")` marker;
//! 4. `panic-in-lib` — panic sites ratchet downward against the committed
//!    [`lint-baseline.json`](baseline);
//! 5. `crate-hygiene` — crate roots carry `#![forbid(unsafe_code)]` and
//!    `#![warn(missing_docs)]`;
//! 6. `must-use` — pure stats/result returns carry `#[must_use]`;
//! 7. `unsafe-boundary` — unsafe scopes only in the allowlisted
//!    `crates/serve/src/sys.rs`, each justified by `// ce:safety(…)`,
//!    counted and ratcheted;
//! 8. `cast-truncation` — lossy `as` casts in deterministic crates need
//!    `try_from`, explicit rounding, or `ce:allow(cast, …)`, ratcheted.
//!
//! Dataflow rules (pass 2):
//!
//! 9. `int-overflow` — unchecked `+ - * <<` on integer operands in
//!    deterministic crates must be proven in-range by dataflow, rewritten
//!    as `checked_*`/`saturating_*`, or carry `ce:allow(arith, …)`;
//!    unproven sites ratchet per file in `lint-baseline.json`;
//! 10. `slice-index` — postfix bracket indexing outside tests must be
//!     proven bounded by dataflow (guard, range loop, or `min`/`clamp`
//!     against `len() - 1`); unproven sites ratchet per file;
//! 11. `atomic-ordering` — every `Ordering::*` at an atomic call site
//!     needs a `// ce:ordering(reason)` within 3 lines.
//!
//! Graph rules (pass 3):
//!
//! 12. `hot-path-transitive-alloc` — a `// ce:hot` fn must not *reach* an
//!     allocating fn through any call chain;
//! 13. `panic-reachability` — every panic/unwrap/expect/indexing site
//!     reachable from a `// ce:hot` fn or `// ce:entry` handler, with a
//!     shortest witness call path, ratcheted by `reach-baseline.json`
//!     (dataflow-proven index sites are not panic facts, so proofs burn
//!     this baseline down);
//! 14. `dead-pub-api` — `pub` items never referenced anywhere in the
//!     workspace, tests, benches, or examples (same ratchet file);
//! 15. `determinism-taint` — deterministic crates must not call into
//!     functions that reach a wall-clock or socket use;
//! 16. `blocking-in-event-loop` — a `// ce:nonblocking` fn (the serve
//!     reactor tick and its helpers) must not *reach* a blocking call,
//!     with a shortest witness path; `ce:allow(blocking, …)` on a call
//!     site cuts exactly that edge. `atomic-ordering` also has a graph
//!     half: a `SeqCst` site reachable from a hot/nonblocking root is a
//!     violation unless justified by `ce:allow(seqcst, …)`.
//!
//! Resolution is conservative: method calls resolve to every same-named
//! workspace method in the caller's dependency closure, so the graph
//! rules over-approximate and cannot miss a real violation.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run --release -p ce-analyzer            # human diagnostics
//! cargo run --release -p ce-analyzer -- --format json     # CI report
//! cargo run --release -p ce-analyzer -- --format github   # CI annotations
//! cargo run --release -p ce-analyzer -- --write-baseline  # refresh both ratchets
//! cargo run --release -p ce-analyzer -- --list-rules      # rule/tier table
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 analyzer error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod driver;
pub mod items;
pub mod lexer;
pub mod resolve;
pub mod rules;

pub use baseline::{Baseline, ReachBaseline};
pub use config::Config;
pub use driver::{
    analyze_workspace, parse_args, run, scan_workspace, Format, Options, Outcome, WorkspaceAnalysis,
};
pub use resolve::CrateGraph;
pub use rules::{analyze_file, analyze_graph, FileAnalysis, GraphAnalysis, Violation};
