//! `ce-analyzer`: the workspace invariant linter.
//!
//! Carbon Explorer's exploration engine rests on three promises that the
//! compiler cannot check: parallel sweeps are **bitwise-identical** to
//! serial runs, the streaming dispatch kernels are **allocation-free**
//! after scratch warm-up, and fused float reductions preserve **exact
//! operation order**. A stray `HashMap` iteration, an `Instant::now`, or a
//! `vec![]` in the wrong function silently invalidates the paper's
//! Figure 13–15 reproduction while every test still passes.
//!
//! This crate is the missing correctness-tooling layer: a dependency-free
//! static-analysis pass (the workspace builds offline, so no `syn`) with a
//! [hand-rolled lexer](lexer) and six [rules](rules):
//!
//! 1. `nondeterminism` — no hash-ordered collections or ambient state in
//!    deterministic crates (narrow allowances: `CE_THREADS` in
//!    `ce-parallel`, wall-clock timing in `ce-bench`);
//! 2. `hot-path-alloc` — functions marked `// ce:hot` must not allocate;
//! 3. `float-eq` — float `==`/`!=` outside tests needs an explicit
//!    `// ce:allow(float-eq, reason = "…")` marker;
//! 4. `panic-in-lib` — panic sites ratchet downward against the committed
//!    [`lint-baseline.json`](baseline);
//! 5. `crate-hygiene` — crate roots carry `#![forbid(unsafe_code)]` and
//!    `#![warn(missing_docs)]`;
//! 6. `must-use` — pure stats/result returns carry `#[must_use]`.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run --release -p ce-analyzer            # human diagnostics
//! cargo run --release -p ce-analyzer -- --format json   # CI
//! cargo run --release -p ce-analyzer -- --write-baseline
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 analyzer error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod driver;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use config::Config;
pub use driver::{parse_args, run, Format, Options, Outcome};
pub use rules::{analyze_file, FileAnalysis, Violation};
