//! `ce-analyzer` CLI entry point. All logic lives in the library so the
//! golden tests can drive it in-process.

use ce_analyzer::driver;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match driver::parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::process::exit(driver::run(&opts).code());
}
