//! Conservative workspace-wide name resolution.
//!
//! Pass 1 ([`items`](crate::items)) leaves call sites as raw names; this
//! module turns them into call-graph edges. Resolution is *conservative by
//! construction*: whenever the tokens do not pin down a unique callee, the
//! call resolves to **every** plausible workspace function, so the graph
//! rules built on top over-approximate reachability and can miss nothing.
//! The precision levers that keep the over-approximation useful are both
//! sound:
//!
//! 1. **Dependency closure.** A call in crate `a` can only land in a crate
//!    `a` (transitively) depends on — Cargo would reject anything else —
//!    so candidates are filtered to the dependency closure parsed from the
//!    workspace manifests.
//! 2. **Import-directed free calls.** `use ce_x::helper;` pins a free call
//!    `helper()` to crate `x`; without an import the call stays in the
//!    calling crate (plus any glob-imported workspace crates).
//!
//! Method calls (`recv.name(...)`) resolve to *all* same-named workspace
//! methods in the closure — receiver types are unknowable without type
//! inference. Paths rooted in `std`/`core`/`alloc` or a vendored stand-in
//! are leaves: their behavior is the rules' vocabulary (alloc/panic
//! facts), not graph edges.

use crate::items::{Call, FileItems, FnItem, PubItem};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// Path roots that terminate resolution: the standard library and the
/// vendored offline stand-ins. Facts *inside* such calls are modeled by
/// the lexical alloc/panic vocabulary instead of graph edges.
const STD_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "rand",
    "serde",
    "proptest",
    "criterion",
];

/// The workspace crate dependency graph, parsed from `Cargo.toml`s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateGraph {
    /// Code identifier (`ce_timeseries`) → crate key (`timeseries`).
    pub ident_to_key: BTreeMap<String, String>,
    /// Crate key → transitive dependency closure, **including itself**.
    pub closure: BTreeMap<String, BTreeSet<String>>,
}

impl CrateGraph {
    /// Parses `crates/*/Cargo.toml` plus the root (facade) manifest.
    ///
    /// # Errors
    ///
    /// Returns a message when the workspace layout cannot be read.
    pub fn from_root(root: &Path) -> Result<Self, String> {
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut ident_to_key = BTreeMap::new();
        let crates_dir = root.join("crates");
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        let mut dirs: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let key = dir
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            let manifest = fs::read_to_string(dir.join("Cargo.toml"))
                .map_err(|e| format!("cannot read {}/Cargo.toml: {e}", dir.display()))?;
            let (name, deps) = parse_manifest(&manifest);
            ident_to_key.insert(name.replace('-', "_"), key.clone());
            direct.insert(key, deps);
        }
        // The facade package lives in the workspace root manifest.
        let root_manifest = fs::read_to_string(root.join("Cargo.toml"))
            .map_err(|e| format!("cannot read root Cargo.toml: {e}"))?;
        let (name, deps) = parse_manifest(&root_manifest);
        ident_to_key.insert(name.replace('-', "_"), "facade".to_string());
        direct.insert("facade".to_string(), deps);
        Ok(Self::from_direct(ident_to_key, direct))
    }

    /// Builds a graph from explicit `(crate, deps)` edges — test harness
    /// entry point; keys double as code identifiers.
    pub fn from_edges(edges: &[(&str, &[&str])]) -> Self {
        let mut direct = BTreeMap::new();
        let mut ident_to_key = BTreeMap::new();
        for (key, deps) in edges {
            // Register both the bare key and the real-world code ident
            // (`ce_timeseries` for the `timeseries` crate dir).
            ident_to_key.insert((*key).to_string(), (*key).to_string());
            ident_to_key.insert(format!("ce_{key}"), (*key).to_string());
            direct.insert(
                (*key).to_string(),
                deps.iter().map(|d| (*d).to_string()).collect(),
            );
        }
        Self::from_direct(ident_to_key, direct)
    }

    fn from_direct(
        ident_to_key: BTreeMap<String, String>,
        direct: BTreeMap<String, BTreeSet<String>>,
    ) -> Self {
        // Direct deps are package names (`ce-x`); normalize to keys via
        // the ident table, dropping anything outside the workspace.
        let pkg_to_key: BTreeMap<String, String> = ident_to_key
            .iter()
            .map(|(ident, key)| (ident.replace('_', "-"), key.clone()))
            .collect();
        let normalized: BTreeMap<String, BTreeSet<String>> = direct
            .iter()
            .map(|(key, deps)| {
                let deps = deps
                    .iter()
                    .filter_map(|d| pkg_to_key.get(d).or(ident_to_key.get(d)))
                    .cloned()
                    .collect();
                (key.clone(), deps)
            })
            .collect();
        // Transitive closure (the graph is a DAG of ~a dozen crates;
        // fixpoint iteration is plenty).
        let mut closure: BTreeMap<String, BTreeSet<String>> = normalized
            .iter()
            .map(|(key, deps)| {
                let mut c = deps.clone();
                c.insert(key.clone());
                (key.clone(), c)
            })
            .collect();
        loop {
            let mut changed = false;
            let keys: Vec<String> = closure.keys().cloned().collect();
            for key in &keys {
                let reach: Vec<String> = closure
                    .get(key)
                    .map(|c| c.iter().cloned().collect())
                    .unwrap_or_default();
                let mut add = BTreeSet::new();
                for dep in &reach {
                    if let Some(dd) = closure.get(dep) {
                        for d in dd {
                            add.insert(d.clone());
                        }
                    }
                }
                if let Some(c) = closure.get_mut(key) {
                    let before = c.len();
                    c.extend(add);
                    changed |= c.len() != before;
                }
            }
            if !changed {
                break;
            }
        }
        Self {
            ident_to_key,
            closure,
        }
    }

    /// The crate key a code identifier (`ce_grid`) refers to, if it is a
    /// workspace crate.
    pub fn key_of_ident(&self, ident: &str) -> Option<&str> {
        self.ident_to_key.get(ident).map(String::as_str)
    }

    /// Whether crate `from` can call into crate `to` (including itself).
    pub fn in_closure(&self, from: &str, to: &str) -> bool {
        self.closure.get(from).is_some_and(|c| c.contains(to))
    }
}

/// Extracts the package name and `ce-*` dependency package names from one
/// manifest, looking only at the `[dependencies]` section (dev-deps do not
/// affect `src/` resolution).
fn parse_manifest(text: &str) -> (String, BTreeSet<String>) {
    let mut name = String::new();
    let mut deps = BTreeSet::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" && name.is_empty() {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().trim_start_matches('=').trim();
                name = rest.trim_matches('"').to_string();
            }
        } else if section == "dependencies" && !line.is_empty() && !line.starts_with('#') {
            let dep: String = line
                .chars()
                .take_while(|c| !matches!(c, ' ' | '.' | '='))
                .collect();
            if dep.starts_with("ce-") {
                deps.insert(dep);
            }
        }
    }
    (name, deps)
}

/// A file's imports, split out of [`FileItems`] for the resolver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileImports {
    /// Local name → full path segments.
    pub named: Vec<(String, Vec<String>)>,
    /// Glob import path prefixes.
    pub globs: Vec<Vec<String>>,
}

/// The merged pass-1 view of the whole workspace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workspace {
    /// Every non-test `fn` in library files, in sorted-file order.
    pub fns: Vec<FnItem>,
    /// Every `pub` item eligible for dead-API detection.
    pub pub_items: Vec<PubItem>,
    /// Imports per library file.
    pub imports: BTreeMap<String, FileImports>,
    /// Global identifier reference counts over library files **and**
    /// reference files (tests/benches/examples) — the liveness index.
    pub refs: BTreeMap<String, usize>,
    /// The crate dependency graph.
    pub crates: CrateGraph,
}

impl Workspace {
    /// Merges per-file extractions. `lib` files contribute functions,
    /// pub items, imports, and references; `refs_only` files (tests,
    /// benches, examples) contribute references alone.
    pub fn build(lib: Vec<FileItems>, refs_only: Vec<FileItems>, crates: CrateGraph) -> Self {
        let mut ws = Workspace {
            crates,
            ..Workspace::default()
        };
        for fi in lib {
            ws.imports.insert(
                fi.file.clone(),
                FileImports {
                    named: fi.imports,
                    globs: fi.globs,
                },
            );
            ws.fns.extend(fi.fns);
            ws.pub_items.extend(fi.pub_items);
            for (name, n) in fi.refs {
                *ws.refs.entry(name).or_insert(0) += n;
            }
        }
        for fi in refs_only {
            for (name, n) in fi.refs {
                *ws.refs.entry(name).or_insert(0) += n;
            }
        }
        ws
    }

    /// Total references to `name` across the workspace.
    pub fn refs_to(&self, name: &str) -> usize {
        self.refs.get(name).copied().unwrap_or(0)
    }
}

/// One resolved call-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee index into [`Workspace::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// Resolves every call site to edges. `adj[i]` lists the distinct callees
/// of `fns[i]` (first call line wins), in callee-index order.
pub fn resolve(ws: &Workspace) -> Vec<Vec<Edge>> {
    // Lookup tables over the fn list.
    let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        match &f.owner {
            None => free
                .entry((f.crate_key.as_str(), f.name.as_str()))
                .or_default()
                .push(i),
            Some(owner) => {
                methods.entry(f.name.as_str()).or_default().push(i);
                assoc
                    .entry((owner.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i);
            }
        }
    }
    let empty_imports = FileImports::default();

    let mut adj: Vec<Vec<Edge>> = Vec::with_capacity(ws.fns.len());
    for f in &ws.fns {
        let imports = ws.imports.get(&f.file).unwrap_or(&empty_imports);
        let own = f.crate_key.as_str();
        let mut edges: BTreeMap<usize, u32> = BTreeMap::new();
        let mut add = |cands: &[usize], line: u32| {
            for &c in cands {
                if ws.crates.in_closure(own, ws.fns[c].crate_key.as_str()) {
                    edges.entry(c).or_insert(line);
                }
            }
        };
        for call in &f.calls {
            match call {
                Call::Method { name, line } => {
                    add(
                        methods.get(name.as_str()).map_or(&[][..], |v| v.as_slice()),
                        *line,
                    );
                }
                Call::Free { name, line } => {
                    let target = imports
                        .named
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, path)| classify_root(ws, own, path));
                    match target {
                        Some(RootKind::Crate(key)) => {
                            add(
                                free.get(&(key, name.as_str()))
                                    .map_or(&[][..], |v| v.as_slice()),
                                *line,
                            );
                        }
                        Some(RootKind::Std) => {}
                        None => {
                            // Unimported: own crate, plus glob-imported
                            // workspace crates.
                            add(
                                free.get(&(own, name.as_str()))
                                    .map_or(&[][..], |v| v.as_slice()),
                                *line,
                            );
                            for glob in &imports.globs {
                                if let RootKind::Crate(key) = classify_root(ws, own, glob) {
                                    if key != own {
                                        add(
                                            free.get(&(key, name.as_str()))
                                                .map_or(&[][..], |v| v.as_slice()),
                                            *line,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                Call::Path { segs, line } => {
                    let name = segs.last().map(String::as_str).unwrap_or("");
                    let qual = segs
                        .get(segs.len().wrapping_sub(2))
                        .map(String::as_str)
                        .unwrap_or("");
                    let qual_is_type = qual.starts_with(char::is_uppercase);
                    if qual_is_type || qual == "Self" {
                        let owner = if qual == "Self" {
                            match &f.owner {
                                Some(o) => o.as_str(),
                                None => continue,
                            }
                        } else {
                            // The qualifier may itself be imported under an
                            // alias; resolution is name-based regardless.
                            qual
                        };
                        add(
                            assoc.get(&(owner, name)).map_or(&[][..], |v| v.as_slice()),
                            *line,
                        );
                    } else {
                        match classify_root(ws, own, segs) {
                            RootKind::Std => {}
                            RootKind::Crate(key) => {
                                add(
                                    free.get(&(key, name)).map_or(&[][..], |v| v.as_slice()),
                                    *line,
                                );
                            }
                        }
                    }
                }
            }
        }
        adj.push(
            edges
                .into_iter()
                .map(|(callee, line)| Edge { callee, line })
                .collect(),
        );
    }
    adj
}

/// Where a path's root segment leads.
enum RootKind<'a> {
    /// A workspace crate (or a path inside the calling crate).
    Crate(&'a str),
    /// The standard library or a vendored stand-in: a resolution leaf.
    Std,
}

/// Classifies a path by its first segment, mapping any import alias for
/// the segment through the file's crate table.
fn classify_root<'a>(ws: &'a Workspace, own: &'a str, path: &[String]) -> RootKind<'a> {
    let Some(first) = path.first() else {
        return RootKind::Crate(own);
    };
    if STD_ROOTS.contains(&first.as_str()) {
        return RootKind::Std;
    }
    if let Some(key) = ws.crates.key_of_ident(first) {
        return RootKind::Crate(key);
    }
    // `crate::`, `self::`, `super::`, or a local module path: stays in
    // the calling crate (conservative: `super` cannot escape a crate).
    RootKind::Crate(own)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;

    fn two_crate_ws() -> Workspace {
        let kernels = extract(
            "crates/timeseries/src/kernels.rs",
            "pub fn dot(xs: &[f64]) -> f64 { helper(xs) }\nfn helper(xs: &[f64]) -> f64 { xs[0] }",
        );
        let core = extract(
            "crates/core/src/explore.rs",
            "use ce_timeseries::dot;\npub fn evaluate() -> f64 { dot(&[1.0]) }\npub fn local() { evaluate(); }",
        );
        let crates = CrateGraph::from_edges(&[("timeseries", &[]), ("core", &["timeseries"])]);
        Workspace::build(vec![kernels, core], vec![], crates)
    }

    fn fn_idx(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).expect(name)
    }

    #[test]
    fn closure_is_transitive_and_reflexive() {
        let g = CrateGraph::from_edges(&[("a", &["b"]), ("b", &["c"]), ("c", &[])]);
        assert!(g.in_closure("a", "a"));
        assert!(g.in_closure("a", "c"));
        assert!(!g.in_closure("c", "a"));
    }

    #[test]
    fn imported_free_call_resolves_cross_crate() {
        let ws = two_crate_ws();
        let adj = resolve(&ws);
        let evaluate = fn_idx(&ws, "evaluate");
        let dot = fn_idx(&ws, "dot");
        assert!(adj[evaluate].iter().any(|e| e.callee == dot));
    }

    #[test]
    fn unimported_free_call_stays_in_crate() {
        let ws = two_crate_ws();
        let adj = resolve(&ws);
        let dot = fn_idx(&ws, "dot");
        let helper = fn_idx(&ws, "helper");
        let local = fn_idx(&ws, "local");
        assert!(adj[dot].iter().any(|e| e.callee == helper));
        // `local` calls `evaluate` unqualified in its own crate.
        assert!(adj[local]
            .iter()
            .any(|e| e.callee == fn_idx(&ws, "evaluate")));
    }

    #[test]
    fn dependency_closure_filters_reverse_edges() {
        // timeseries cannot call into core, even for a same-named fn.
        let kernels = extract(
            "crates/timeseries/src/kernels.rs",
            "pub fn dot() { evaluate(); }",
        );
        let core = extract("crates/core/src/explore.rs", "pub fn evaluate() {}");
        let crates = CrateGraph::from_edges(&[("timeseries", &[]), ("core", &["timeseries"])]);
        let ws = Workspace::build(vec![kernels, core], vec![], crates);
        let adj = resolve(&ws);
        assert!(adj[fn_idx(&ws, "dot")].is_empty());
    }

    #[test]
    fn method_calls_resolve_to_all_candidates_in_closure() {
        let a = extract(
            "crates/timeseries/src/series.rs",
            "pub struct A;\nimpl A { pub fn shift(&self) {} }",
        );
        let b = extract(
            "crates/grid/src/model.rs",
            "pub struct B;\nimpl B { pub fn shift(&self) {} }",
        );
        let user = extract(
            "crates/core/src/explore.rs",
            "pub fn go(x: &Thing) { x.shift(); }",
        );
        let crates = CrateGraph::from_edges(&[
            ("timeseries", &[]),
            ("grid", &["timeseries"]),
            ("core", &["timeseries", "grid"]),
        ]);
        let ws = Workspace::build(vec![a, b, user], vec![], crates);
        let adj = resolve(&ws);
        let go = fn_idx(&ws, "go");
        assert_eq!(adj[go].len(), 2, "ambiguous method resolves to both");
    }

    #[test]
    fn assoc_path_calls_resolve_by_type_name() {
        let a = extract(
            "crates/timeseries/src/series.rs",
            "pub struct Series;\nimpl Series { pub fn with_capacity(n: usize) -> Self { Series } }",
        );
        let user = extract(
            "crates/core/src/explore.rs",
            "pub fn go() { let _s = Series::with_capacity(4); std::mem::drop(1); }",
        );
        let crates = CrateGraph::from_edges(&[("timeseries", &[]), ("core", &["timeseries"])]);
        let ws = Workspace::build(vec![a, user], vec![], crates);
        let adj = resolve(&ws);
        let go = fn_idx(&ws, "go");
        let target = fn_idx(&ws, "with_capacity");
        assert_eq!(adj[go].len(), 1, "std paths are leaves");
        assert_eq!(adj[go][0].callee, target);
    }

    #[test]
    fn self_paths_resolve_to_enclosing_impl() {
        let src = "pub struct S;\nimpl S {\n  pub fn a(&self) { Self::b(); }\n  fn b() {}\n}";
        let fi = extract("crates/core/src/x.rs", src);
        let crates = CrateGraph::from_edges(&[("core", &[])]);
        let ws = Workspace::build(vec![fi], vec![], crates);
        let adj = resolve(&ws);
        let a = fn_idx(&ws, "a");
        let b = fn_idx(&ws, "b");
        assert!(adj[a].iter().any(|e| e.callee == b));
    }

    #[test]
    fn manifest_parsing() {
        let text = "[package]\nname = \"ce-serve\"\nversion.workspace = true\n\n[dependencies]\nce-core.workspace = true\nce-grid = { path = \"../grid\" }\nserde.workspace = true\n\n[dev-dependencies]\nce-bench.workspace = true\n";
        let (name, deps) = parse_manifest(text);
        assert_eq!(name, "ce-serve");
        let deps: Vec<&str> = deps.iter().map(String::as_str).collect();
        assert_eq!(deps, ["ce-core", "ce-grid"]);
    }

    #[test]
    fn refs_merge_lib_and_ref_files() {
        let lib = extract("crates/core/src/x.rs", "pub fn solo() {}");
        let test = extract("crates/core/tests/t.rs", "fn t() { solo(); }");
        let crates = CrateGraph::from_edges(&[("core", &[])]);
        let ws = Workspace::build(vec![lib], vec![test], crates);
        assert_eq!(ws.refs_to("solo"), 2);
    }
}
