//! The file-local rules (pass 1), evaluated over a lexed file, plus the
//! graph rules (pass 2) further down.
//!
//! Each file-local rule is lexical: it matches token patterns, comment
//! markers, and coarse structure (test modules, `fn` bodies) recovered by
//! brace matching. The file-local rules and their rationale:
//!
//! | rule | enforces |
//! |---|---|
//! | `nondeterminism` | no `HashMap`/`HashSet`, `Instant::now`, `SystemTime::now`, `thread::current`, `env::var` in deterministic crates |
//! | `hot-path-alloc` | no allocating calls inside `// ce:hot` functions |
//! | `float-eq` | `==`/`!=` against float operands needs `// ce:allow(float-eq, …)` |
//! | `panic-in-lib` | `unwrap`/`expect`/`panic!`/`unreachable!` counted against the baseline ratchet |
//! | `crate-hygiene` | crate roots carry `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | `must-use` | `pub fn` returning a bare stats/result struct carries `#[must_use]` |
//! | `unsafe-boundary` | unsafe only in the allowlisted FFI module, each site `// ce:safety`-justified and ratcheted |
//! | `cast-truncation` | lossy `as` casts in deterministic crates counted against the baseline ratchet |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt from
//! `nondeterminism`, `float-eq`, `panic-in-lib`, `must-use`, and
//! `cast-truncation` — the invariants protect the sweep engine's
//! production paths, and the bitwise-identity *tests* are precisely where
//! float equality is correct. `unsafe-boundary` has no test exemption:
//! the unsafe surface is audited wherever it appears.
//!
//! # Marker grammar
//!
//! - `// ce:hot` — the next `fn` in the file is a streaming hot path; the
//!   `hot-path-alloc` rule patrols its body.
//! - `// ce:entry` — the next `fn` is a request-handler root for
//!   `panic-reachability`.
//! - `// ce:nonblocking` — the next `fn` is an event-loop step; the
//!   `blocking-in-event-loop` graph rule patrols its closure.
//! - `// ce:safety(<justification>)` — justifies the unsafe fact within
//!   the next three lines; `unsafe-boundary` requires one per site.
//! - `// ce:allow(<kind>, reason = "…")` — suppresses `<kind>` violations
//!   on the same line and the line immediately below. `<kind>` is a rule
//!   name or one of the site-kind shorthands (`blocking`, `cast`). The
//!   reason is mandatory; a marker without one is itself a violation.

use crate::config::{
    allowances_for, is_allow_kind, is_crate_root, is_deterministic, rule_for_allow_kind,
    unsafe_allowlisted, Config,
};
use crate::lexer::{lex, Token, TokenKind};

/// One diagnostic: a rule violated at a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule violated (one of [`crate::config::RULE_NAMES`]).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// The analysis of one file: direct violations plus the per-file site
/// counts the driver compares against the baseline ratchets.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Violations that fail the build outright.
    pub violations: Vec<Violation>,
    /// Non-test `unwrap()`/`expect()`/`panic!`/`unreachable!` sites
    /// (line numbers), for the `panic-in-lib` ratchet.
    pub panic_sites: Vec<u32>,
    /// Lossy `as` cast sites (line numbers) in deterministic crates,
    /// for the `cast-truncation` ratchet.
    pub cast_sites: Vec<u32>,
    /// Justified, allowlisted unsafe sites (line numbers), for the
    /// `unsafe-boundary` ratchet. Unjustified or out-of-allowlist unsafe
    /// is a violation instead.
    pub unsafe_sites: Vec<u32>,
    /// Unproven integer-arithmetic sites (line numbers) in deterministic
    /// crates, for the `int-overflow` ratchet. Dataflow-proven sites are
    /// accepted silently.
    pub arith_sites: Vec<u32>,
    /// Unproven bracket-index sites (line numbers) outside tests, for the
    /// `slice-index` ratchet. Dataflow-proven sites are accepted silently.
    pub index_sites: Vec<u32>,
}

/// A parsed `// ce:allow(rule, reason = "…")` marker.
#[derive(Debug, Clone)]
struct AllowMarker {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// Analyzes one file; `rel_path` is workspace-relative with `/` separators.
pub fn analyze_file(rel_path: &str, source: &str, config: &Config) -> FileAnalysis {
    let tokens = lex(source);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    let mut markers = Vec::new();
    let mut hot_lines = Vec::new();
    let mut safety_lines = Vec::new();
    let mut ordering_lines = Vec::new();
    let mut violations = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        collect_marker(
            t,
            &mut markers,
            &mut hot_lines,
            &mut safety_lines,
            &mut ordering_lines,
            &mut violations,
            rel_path,
        );
    }

    let test_mask = test_region_mask(&code);
    let hot_ranges = hot_fn_ranges(&code, &hot_lines);

    let ctx = RuleCtx {
        rel_path,
        code: &code,
        test_mask: &test_mask,
        markers: &markers,
        config,
    };

    rule_nondeterminism(&ctx, &mut violations);
    rule_hot_path_alloc(&ctx, &hot_ranges, &mut violations);
    rule_float_eq(&ctx, &mut violations);
    rule_crate_hygiene(&ctx, &mut violations);
    rule_must_use(&ctx, &mut violations);
    let panic_sites = panic_sites(&ctx);
    let cast_sites = cast_sites(&ctx);
    let unsafe_sites = rule_unsafe_boundary(&ctx, &safety_lines, &mut violations);
    let df = crate::dataflow::analyze_source(&code);
    let arith_sites = arith_sites(&ctx, &df);
    let index_sites = index_sites(&ctx, &df);
    rule_atomic_ordering(&ctx, &ordering_lines, &mut violations);

    violations.sort_by_key(|v| (v.line, v.col, v.rule.clone()));
    FileAnalysis {
        violations,
        panic_sites,
        cast_sites,
        unsafe_sites,
        arith_sites,
        index_sites,
    }
}

struct RuleCtx<'a> {
    rel_path: &'a str,
    code: &'a [&'a Token],
    /// `test_mask[i]` — is code token `i` inside a test item?
    test_mask: &'a [bool],
    markers: &'a [AllowMarker],
    config: &'a Config,
}

impl RuleCtx<'_> {
    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.markers
            .iter()
            .any(|m| m.rule == rule && m.has_reason && (m.line == line || m.line + 1 == line))
    }

    fn violation(&self, rule: &str, tok: &Token, message: String) -> Option<Violation> {
        if self.allowed(rule, tok.line) {
            return None;
        }
        Some(Violation {
            rule: rule.to_string(),
            file: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        })
    }
}

/// Parses `ce:hot` / `ce:safety` / `ce:allow` markers out of one comment
/// token. (`ce:entry` and `ce:nonblocking` bind to `fn` items and are
/// consumed by the fact extractor in `items.rs`, not here.)
fn collect_marker(
    tok: &Token,
    markers: &mut Vec<AllowMarker>,
    hot_lines: &mut Vec<u32>,
    safety_lines: &mut Vec<u32>,
    ordering_lines: &mut Vec<u32>,
    violations: &mut Vec<Violation>,
    rel_path: &str,
) {
    let body = tok
        .text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    if body == "ce:hot" || body.starts_with("ce:hot ") {
        hot_lines.push(tok.line);
        return;
    }
    if let Some(rest) = body.strip_prefix("ce:safety(") {
        let inner = rest.rsplit_once(')').map_or(rest, |(a, _)| a).trim();
        if inner.is_empty() {
            violations.push(Violation {
                rule: "unsafe-boundary".to_string(),
                file: rel_path.to_string(),
                line: tok.line,
                col: tok.col,
                message: "ce:safety(…) marker carries no justification text".to_string(),
            });
        } else {
            safety_lines.push(tok.line);
        }
        return;
    }
    if let Some(rest) = body.strip_prefix("ce:ordering(") {
        let inner = rest.rsplit_once(')').map_or(rest, |(a, _)| a).trim();
        if inner.is_empty() {
            violations.push(Violation {
                rule: "atomic-ordering".to_string(),
                file: rel_path.to_string(),
                line: tok.line,
                col: tok.col,
                message: "ce:ordering(…) marker carries no justification text".to_string(),
            });
        } else {
            ordering_lines.push(tok.line);
        }
        return;
    }
    let Some(rest) = body.strip_prefix("ce:allow(") else {
        return;
    };
    let inner = rest.split(')').next().unwrap_or("");
    let mut parts = inner.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_string();
    let reason_part = parts.next().unwrap_or("").trim();
    let has_reason = reason_part
        .strip_prefix("reason")
        .map(|r| r.trim_start().starts_with('='))
        .unwrap_or(false);
    if !is_allow_kind(&rule) {
        violations.push(Violation {
            rule: "marker".to_string(),
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!("ce:allow names unknown rule `{rule}`"),
        });
        return;
    }
    if !has_reason {
        let owner = rule_for_allow_kind(&rule);
        violations.push(Violation {
            rule: owner.to_string(),
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!("ce:allow({rule}) marker is missing its mandatory `reason = \"…\"`"),
        });
        return;
    }
    markers.push(AllowMarker {
        line: tok.line,
        rule,
        has_reason,
    });
}

/// Index of the `}` matching the `{` at `open` (counting braces only);
/// falls back to the last token on unbalanced input.
pub(crate) fn matching_brace(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Marks every code token covered by a `#[cfg(test)]` or `#[test]` item.
pub(crate) fn test_region_mask(code: &[&Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct("#") && i + 1 < code.len() && code[i + 1].is_punct("[") {
            let close = matching_bracket(code, i + 1);
            let idents: Vec<&str> = code[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr = match idents.first() {
                Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
                Some(&"test") => idents.len() == 1,
                _ => false,
            };
            if is_test_attr {
                let end = item_end(code, close + 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the `]` matching the `[` at `open`.
pub(crate) fn matching_bracket(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// The index where the item starting at `from` ends: the `;` closing a
/// declaration, or the `}` closing the first top-level brace block.
/// Skips over any further attributes.
pub(crate) fn item_end(code: &[&Token], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < code.len() {
        let t = code[i];
        if depth == 0 {
            if t.is_punct("#") && i + 1 < code.len() && code[i + 1].is_punct("[") {
                i = matching_bracket(code, i + 1) + 1;
                continue;
            }
            if t.is_punct("{") {
                return matching_brace(code, i);
            }
            if t.is_punct(";") {
                return i;
            }
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// A `// ce:hot`-annotated function: its name and body token range.
#[derive(Debug)]
struct HotRange {
    name: String,
    body: (usize, usize),
}

/// Resolves each `// ce:hot` marker to the body of the next `fn`.
fn hot_fn_ranges(code: &[&Token], hot_lines: &[u32]) -> Vec<HotRange> {
    let mut ranges = Vec::new();
    for &line in hot_lines {
        let Some(fn_idx) = code.iter().position(|t| t.line > line && t.is_ident("fn")) else {
            continue;
        };
        let name = code
            .get(fn_idx + 1)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let Some(open) = code
            .iter()
            .skip(fn_idx)
            .position(|t| t.is_punct("{"))
            .map(|p| p + fn_idx)
        else {
            continue;
        };
        let close = matching_brace(code, open);
        ranges.push(HotRange {
            name,
            body: (open, close),
        });
    }
    ranges
}

fn rule_nondeterminism(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "nondeterminism";
    let allow = allowances_for(ctx.rel_path);
    let code = ctx.code;
    for i in 0..code.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let path_call = |seg: &str| -> bool {
            t.text == seg
                && i + 2 < code.len()
                && code[i + 1].is_punct("::")
                && ctx.test_mask.get(i + 2) == Some(&false)
        };
        let v = match t.text.as_str() {
            "HashMap" | "HashSet" => ctx.violation(
                RULE,
                t,
                format!(
                    "`{}` iteration order is nondeterministic; use the BTree equivalent \
                     or a ce:allow marker with justification",
                    t.text
                ),
            ),
            "Instant" if path_call("Instant") && code[i + 2].is_ident("now") && !allow.wall_clock => {
                ctx.violation(
                    RULE,
                    t,
                    "`Instant::now` makes results wall-clock dependent; timing belongs in ce-bench"
                        .to_string(),
                )
            }
            "SystemTime"
                if path_call("SystemTime") && code[i + 2].is_ident("now") && !allow.wall_clock =>
            {
                ctx.violation(
                    RULE,
                    t,
                    "`SystemTime::now` makes results wall-clock dependent; timing belongs in ce-bench"
                        .to_string(),
                )
            }
            "thread" if path_call("thread") && code[i + 2].is_ident("current") => ctx.violation(
                RULE,
                t,
                "`thread::current` is scheduler-dependent and breaks deterministic replay"
                    .to_string(),
            ),
            "thread"
                if path_call("thread")
                    && (code[i + 2].is_ident("spawn") || code[i + 2].is_ident("scope"))
                    && !allow.threads =>
            {
                ctx.violation(
                    RULE,
                    t,
                    format!(
                        "`thread::{}` introduces scheduling nondeterminism; thread pools \
                         belong in ce-parallel or ce-serve",
                        code[i + 2].text
                    ),
                )
            }
            "TcpListener" | "TcpStream" | "UdpSocket" if !allow.sockets => ctx.violation(
                RULE,
                t,
                format!(
                    "`{}` brings network timing into results; sockets belong in \
                     ce-serve or ce-bench",
                    t.text
                ),
            ),
            // Raw fd surface: the traits, the `RawFd` type, and the
            // conversion methods. Only the event-loop front end (which
            // must hand fds to `poll(2)`) holds the allowance — a raw fd
            // anywhere else is I/O smuggled past the socket rule.
            "AsRawFd" | "RawFd" | "AsFd" | "BorrowedFd" | "OwnedFd" | "FromRawFd" | "IntoRawFd"
                if !allow.raw_fds =>
            {
                ctx.violation(
                    RULE,
                    t,
                    format!(
                        "`{}` exposes raw file descriptors; only ce-serve's event loop \
                         may touch fds (to drive poll(2))",
                        t.text
                    ),
                )
            }
            "as_raw_fd" | "from_raw_fd" | "into_raw_fd" | "as_fd"
                if !allow.raw_fds
                    && i > 0
                    && (code[i - 1].is_punct(".") || code[i - 1].is_punct("::")) =>
            {
                ctx.violation(
                    RULE,
                    t,
                    format!(
                        "`{}` exposes raw file descriptors; only ce-serve's event loop \
                         may touch fds (to drive poll(2))",
                        t.text
                    ),
                )
            }
            "env" if path_call("env") && code[i + 2].is_ident("var") => {
                let ce_threads_arg = code[i + 3..code.len().min(i + 8)]
                    .iter()
                    .any(|t| t.kind == TokenKind::Str && t.text.contains("CE_THREADS"));
                if allow.env_var_ce_threads && ce_threads_arg {
                    None
                } else {
                    ctx.violation(
                        RULE,
                        t,
                        "`env::var` injects ambient state; only ce-parallel may read CE_THREADS"
                            .to_string(),
                    )
                }
            }
            _ => None,
        };
        out.extend(v);
    }
}

fn rule_hot_path_alloc(ctx: &RuleCtx<'_>, hot: &[HotRange], out: &mut Vec<Violation>) {
    const RULE: &str = "hot-path-alloc";
    let code = ctx.code;
    let cfg = ctx.config;
    for range in hot {
        let (open, close) = range.body;
        for i in open..=close.min(code.len().saturating_sub(1)) {
            let t = code[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let prev_is_dot = i > 0 && code[i - 1].is_punct(".");
            let next = code.get(i + 1);
            let next_calls = next.is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
            let v = if prev_is_dot
                && next_calls
                && cfg.hot_forbidden_methods.contains(&t.text.as_str())
            {
                ctx.violation(
                    RULE,
                    t,
                    format!(
                        "`.{}()` allocates inside hot fn `{}` (marked // ce:hot)",
                        t.text, range.name
                    ),
                )
            } else if next.is_some_and(|n| n.is_punct("!"))
                && cfg.hot_forbidden_macros.contains(&t.text.as_str())
            {
                ctx.violation(
                    RULE,
                    t,
                    format!(
                        "`{}!` allocates inside hot fn `{}` (marked // ce:hot)",
                        t.text, range.name
                    ),
                )
            } else if next.is_some_and(|n| n.is_punct("::"))
                && code.get(i + 2).is_some()
                && cfg
                    .hot_forbidden_paths
                    .iter()
                    .any(|(ty, m)| t.text == *ty && code[i + 2].is_ident(m))
            {
                ctx.violation(
                    RULE,
                    t,
                    format!(
                        "`{}::{}` allocates inside hot fn `{}` (marked // ce:hot)",
                        t.text,
                        code[i + 2].text,
                        range.name
                    ),
                )
            } else {
                None
            };
            out.extend(v);
        }
    }
}

fn rule_float_eq(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "float-eq";
    let code = ctx.code;
    let is_float_operand = |t: &Token| -> bool {
        t.kind == TokenKind::Float || t.is_ident("f64") || t.is_ident("f32")
    };
    for i in 0..code.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = code[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let floaty = (i > 0 && is_float_operand(code[i - 1]))
            || code.get(i + 1).is_some_and(|n| is_float_operand(n));
        if floaty {
            out.extend(ctx.violation(
                RULE,
                t,
                format!(
                    "float `{}` comparison outside tests; restructure (epsilon/`total_cmp`/\
                     `to_bits`) or mark `// ce:allow(float-eq, reason = \"…\")`",
                    t.text
                ),
            ));
        }
    }
}

/// Non-test panic sites, for the ratchet. Not marker-suppressible: the
/// baseline is the escape hatch, and it only ratchets down.
fn panic_sites(ctx: &RuleCtx<'_>) -> Vec<u32> {
    let code = ctx.code;
    let mut sites = Vec::new();
    for i in 0..code.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_is_dot = i > 0 && code[i - 1].is_punct(".");
        let next_is_paren = code.get(i + 1).is_some_and(|n| n.is_punct("("));
        let next_is_bang = code.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => prev_is_dot && next_is_paren,
            "panic" | "unreachable" => next_is_bang,
            _ => false,
        };
        if hit {
            sites.push(t.line);
        }
    }
    sites
}

/// Targets of an `as` cast that can truncate or lose precision. `f64` is
/// deliberately absent: the integers this workspace lifts to `f64` fit in
/// its 53-bit mantissa, and flagging them would bury the real hazards.
const LOSSY_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Non-test lossy `as` casts in deterministic crates, for the
/// `cast-truncation` ratchet. `ce:allow(cast, reason = "…")` suppresses a
/// site; casts whose operand ends in an explicit rounding or clamping
/// call (`.round()`, `.floor()`, `.ceil()`, `.trunc()`, `.clamp(…)`,
/// `.min(…)`, `.max(…)`) already state their precision intent and are
/// exempt.
fn cast_sites(ctx: &RuleCtx<'_>) -> Vec<u32> {
    if !is_deterministic(ctx.rel_path) {
        return Vec::new();
    }
    let code = ctx.code;
    let mut sites = Vec::new();
    for i in 0..code.len() {
        if ctx.test_mask[i] || !code[i].is_ident("as") {
            continue;
        }
        let lossy = code.get(i + 1).is_some_and(|n| {
            n.kind == TokenKind::Ident && LOSSY_CAST_TARGETS.contains(&n.text.as_str())
        });
        if lossy && !ctx.allowed("cast", code[i].line) && !rounding_exempt(code, i) {
            sites.push(code[i].line);
        }
    }
    sites
}

/// Is the operand of the `as` at `idx` a call to an explicit rounding or
/// clamping method? Matches `….round() as u32`-style forms by walking
/// back from the closing paren to the method name.
fn rounding_exempt(code: &[&Token], idx: usize) -> bool {
    const EXPLICIT: &[&str] = &["round", "floor", "ceil", "trunc", "clamp", "min", "max"];
    if idx == 0 || !code[idx - 1].is_punct(")") {
        return false;
    }
    let mut depth = 0i32;
    let mut i = idx - 1;
    loop {
        if code[i].is_punct(")") {
            depth += 1;
        } else if code[i].is_punct("(") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if i == 0 {
            return false;
        }
        i -= 1;
    }
    i >= 2
        && code[i - 1].kind == TokenKind::Ident
        && EXPLICIT.contains(&code[i - 1].text.as_str())
        && code[i - 2].is_punct(".")
}

/// A `(line, col) → test?` lookup for dataflow sites, which carry
/// positions rather than token indices.
fn test_position_set(ctx: &RuleCtx<'_>) -> std::collections::BTreeSet<(u32, u32)> {
    ctx.code
        .iter()
        .enumerate()
        .filter(|(i, _)| ctx.test_mask[*i])
        .map(|(_, t)| (t.line, t.col))
        .collect()
}

/// Non-test, dataflow-unproven integer-arithmetic sites in deterministic
/// crates, for the `int-overflow` ratchet. A site is accepted when
/// dataflow proves the result in-range, when the operator is already a
/// `checked_*`/`saturating_*` method (those never lex as bare operators),
/// or when it carries `ce:allow(arith, reason = "…")` (the rule name
/// spelling works too). The operational front ends (`ce-serve`,
/// `ce-bench`) deal in latency buckets and byte counts outside the
/// bitwise-determinism contract and are exempt, exactly like
/// `cast-truncation`.
fn arith_sites(ctx: &RuleCtx<'_>, df: &crate::dataflow::FileDataflow) -> Vec<u32> {
    if !is_deterministic(ctx.rel_path) {
        return Vec::new();
    }
    let in_test = test_position_set(ctx);
    df.arith
        .iter()
        .filter(|s| !s.proven)
        .filter(|s| !in_test.contains(&(s.line, s.col)))
        .filter(|s| !ctx.allowed("arith", s.line) && !ctx.allowed("int-overflow", s.line))
        .map(|s| s.line)
        .collect()
}

/// Non-test, dataflow-unproven bracket-index sites, for the `slice-index`
/// ratchet. Unlike `int-overflow` this runs in every crate: an
/// out-of-bounds panic in the serve path is as fatal as one in the sweep
/// engine. A site is accepted when dataflow proves the index bounded (a
/// dominating guard, an exclusive range loop, or a `min`/`clamp` against
/// `len() - 1`) or when it carries `ce:allow(index, reason = "…")`.
fn index_sites(ctx: &RuleCtx<'_>, df: &crate::dataflow::FileDataflow) -> Vec<u32> {
    let in_test = test_position_set(ctx);
    df.indexes
        .iter()
        .filter(|s| !s.proven)
        .filter(|s| !in_test.contains(&(s.line, s.col)))
        .filter(|s| !ctx.allowed("index", s.line) && !ctx.allowed("slice-index", s.line))
        .map(|s| s.line)
        .collect()
}

/// Memory-ordering names that appear as `Ordering::<variant>` at atomic
/// call sites. Disjoint from `cmp::Ordering`'s `Less`/`Equal`/`Greater`,
/// so comparison code never trips the rule.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The file-local half of `atomic-ordering`: every `Ordering::*` use at
/// an atomic call site must have a `// ce:ordering(reason)` marker within
/// the three lines above it (or on the same line). The marker documents
/// *why* that ordering is sufficient — and the reachability half of the
/// rule holds `SeqCst` on hot/nonblocking paths to a harder standard.
fn rule_atomic_ordering(ctx: &RuleCtx<'_>, ordering_lines: &[u32], out: &mut Vec<Violation>) {
    const RULE: &str = "atomic-ordering";
    const REACH: u32 = 3;
    let code = ctx.code;
    for i in 0..code.len() {
        if ctx.test_mask[i] || !code[i].is_ident("Ordering") {
            continue;
        }
        let is_variant = code.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && code
                .get(i + 2)
                .is_some_and(|t| ATOMIC_ORDERINGS.contains(&t.text.as_str()));
        if !is_variant {
            continue;
        }
        let line = code[i].line;
        let justified = ordering_lines
            .iter()
            .any(|l| *l <= line && line - *l <= REACH);
        if !justified {
            let variant = &code[i + 2].text;
            out.extend(ctx.violation(
                RULE,
                code[i],
                format!(
                    "`Ordering::{variant}` has no `// ce:ordering(reason)` within {REACH} lines; \
                     state why this ordering is sufficient"
                ),
            ));
        }
    }
}

/// The `unsafe-boundary` audit. Facts are `#[allow(unsafe_code)]`
/// attribute scopes and any bare `unsafe` token outside such a scope.
/// Every fact must live in an allowlisted file AND carry a
/// `// ce:safety(…)` justification within the three lines above it;
/// surviving sites are returned for the ratchet. No test exemption: the
/// unsafe surface is audited wherever it appears.
fn rule_unsafe_boundary(
    ctx: &RuleCtx<'_>,
    safety_lines: &[u32],
    out: &mut Vec<Violation>,
) -> Vec<u32> {
    const RULE: &str = "unsafe-boundary";
    let code = ctx.code;
    let mut facts: Vec<(u32, u32, &'static str)> = Vec::new();
    let mut covered: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct("#") && code.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let close = matching_bracket(code, i + 1);
            let is_allow_unsafe = {
                let mut idents = code[i + 2..close]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.as_str());
                idents.next() == Some("allow")
                    && idents.next() == Some("unsafe_code")
                    && idents.next().is_none()
            };
            if is_allow_unsafe {
                facts.push((code[i].line, code[i].col, "#[allow(unsafe_code)] scope"));
                covered.push((i, item_end(code, close + 1)));
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    for (j, t) in code.iter().enumerate() {
        if t.is_ident("unsafe") && !covered.iter().any(|&(s, e)| (s..=e).contains(&j)) {
            facts.push((t.line, t.col, "`unsafe` scope"));
        }
    }
    facts.sort_unstable();
    let mut sites = Vec::new();
    for (line, col, what) in facts {
        if !unsafe_allowlisted(ctx.rel_path) {
            out.push(Violation {
                rule: RULE.to_string(),
                file: ctx.rel_path.to_string(),
                line,
                col,
                message: format!(
                    "{what} outside the unsafe allowlist (only {} may hold unsafe code)",
                    crate::config::UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        } else if !safety_lines.iter().any(|&s| s <= line && line - s <= 3) {
            out.push(Violation {
                rule: RULE.to_string(),
                file: ctx.rel_path.to_string(),
                line,
                col,
                message: format!(
                    "{what} has no `// ce:safety(…)` justification within the three lines above"
                ),
            });
        } else {
            sites.push(line);
        }
    }
    sites
}

fn rule_crate_hygiene(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "crate-hygiene";
    if !is_crate_root(ctx.rel_path) {
        return;
    }
    let code = ctx.code;
    let has_inner_attr = |outer: &str, inner: &str| -> bool {
        (0..code.len()).any(|i| {
            code[i].is_punct("#")
                && code.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && code.get(i + 2).is_some_and(|t| t.is_punct("["))
                && code.get(i + 3).is_some_and(|t| t.is_ident(outer))
                && code.get(i + 4).is_some_and(|t| t.is_punct("("))
                && code.get(i + 5).is_some_and(|t| t.is_ident(inner))
        })
    };
    let anchor = Token {
        kind: TokenKind::Punct,
        text: String::new(),
        line: 1,
        col: 1,
    };
    // `ce-serve` alone may hold `#![deny(unsafe_code)]` instead: its
    // `sys` module needs two scoped `#[allow(unsafe_code)]` blocks for
    // the `poll(2)` FFI, which `forbid` cannot coexist with. `deny`
    // still hard-errors on unsanctioned unsafe.
    let unsafe_fenced = has_inner_attr("forbid", "unsafe_code")
        || (crate::config::may_deny_unsafe(ctx.rel_path) && has_inner_attr("deny", "unsafe_code"));
    if !unsafe_fenced {
        out.extend(ctx.violation(
            RULE,
            &anchor,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !has_inner_attr("warn", "missing_docs") {
        out.extend(ctx.violation(
            RULE,
            &anchor,
            "crate root is missing `#![warn(missing_docs)]`".to_string(),
        ));
    }
}

fn rule_must_use(ctx: &RuleCtx<'_>, out: &mut Vec<Violation>) {
    const RULE: &str = "must-use";
    let code = ctx.code;
    for i in 0..code.len() {
        if ctx.test_mask[i] || !code[i].is_ident("fn") {
            continue;
        }
        let (is_pub, has_must_use) = fn_prefix_info(code, i);
        if !is_pub || has_must_use {
            continue;
        }
        // Parameter list → return type tokens.
        let Some(params_open) = code
            .iter()
            .skip(i)
            .position(|t| t.is_punct("("))
            .map(|p| p + i)
        else {
            continue;
        };
        let params_close = matching_paren(code, params_open);
        if !code.get(params_close + 1).is_some_and(|t| t.is_punct("->")) {
            continue;
        }
        let mut ret = Vec::new();
        let mut j = params_close + 2;
        while j < code.len() {
            let t = code[j];
            if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                break;
            }
            ret.push(t);
            j += 1;
        }
        let wrapped = ret
            .iter()
            .any(|t| t.is_ident("Result") || t.is_ident("Option"));
        let bare_type = ctx
            .config
            .must_use_types
            .iter()
            .find(|ty| ret.iter().any(|t| t.is_ident(ty)));
        if let Some(ty) = bare_type {
            if !wrapped {
                let fn_name = code.get(i + 1).map(|t| t.text.as_str()).unwrap_or("<anon>");
                out.extend(ctx.violation(
                    RULE,
                    code[i],
                    format!(
                        "pub fn `{fn_name}` returns bare `{ty}`; annotate it #[must_use] \
                         (dropping a pure result is always a bug)"
                    ),
                ));
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Looks backwards from a `fn` keyword for plain-`pub` visibility and a
/// `#[must_use]` attribute, stopping at the previous item's boundary.
/// `pub(crate)`/`pub(super)` items are internal API and are not flagged.
pub(crate) fn fn_prefix_info(code: &[&Token], fn_idx: usize) -> (bool, bool) {
    let mut is_pub = false;
    let mut has_must_use = false;
    let mut i = fn_idx;
    let mut steps = 0;
    while i > 0 && steps < 40 {
        i -= 1;
        steps += 1;
        let t = code[i];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct(",") {
            break;
        }
        if t.is_punct("]") {
            // Walk the attribute group and scan it for must_use.
            let mut depth = 1usize;
            let close = i;
            while i > 0 && depth > 0 {
                i -= 1;
                steps += 1;
                if code[i].is_punct("]") {
                    depth += 1;
                } else if code[i].is_punct("[") {
                    depth -= 1;
                }
            }
            if code[i + 1..close].iter().any(|t| t.is_ident("must_use")) {
                has_must_use = true;
            }
            continue;
        }
        if t.is_ident("pub") {
            // `pub(crate)` / `pub(super)` → restricted, not public API.
            is_pub = !code.get(i + 1).is_some_and(|n| n.is_punct("("));
        }
    }
    (is_pub, has_must_use)
}

// ---------------------------------------------------------------------------
// Graph rules (pass 2)
//
// The four rules below run over the workspace call graph instead of a
// single token stream. They consume the facts pass 1 attached to each
// function (alloc/panic/taint sites) and the conservative edges built by
// `resolve`, so every finding is an over-approximation with an audit
// trail: the shortest witness call path from the root that makes the
// function relevant.
// ---------------------------------------------------------------------------

use crate::callgraph::{path_to, render_witness, CallGraph};
use crate::resolve::Workspace;

/// One panic site reachable from a hot fn or request handler, with its
/// witness. Ratcheted per file by the driver against `reach-baseline.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachFinding {
    /// File containing the panic site.
    pub file: String,
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
    /// What panics there (`` `.unwrap()` ``, `slice/array indexing`, …).
    pub what: String,
    /// Display name of the containing function.
    pub in_fn: String,
    /// Shortest call path from a root to the containing function.
    pub witness: String,
}

/// One `pub` item never referenced anywhere in the workspace. Ratcheted
/// per file by the driver against `reach-baseline.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadFinding {
    /// File defining the item.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// `"fn"`, `"struct"`, or `"enum"`.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
}

/// Everything pass 2 produces: hard violations plus the two ratcheted
/// finding sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphAnalysis {
    /// `hot-path-transitive-alloc`, `blocking-in-event-loop`, and
    /// `determinism-taint` violations (fail the build outright;
    /// `ce:allow` markers are the escape hatch).
    pub violations: Vec<Violation>,
    /// `panic-reachability` findings, in deterministic scan order.
    pub panic_reach: Vec<ReachFinding>,
    /// `dead-pub-api` findings, in deterministic scan order.
    pub dead_api: Vec<DeadFinding>,
}

/// Runs all five graph rules over the resolved workspace.
pub fn analyze_graph(ws: &Workspace, graph: &CallGraph) -> GraphAnalysis {
    let mut out = GraphAnalysis::default();
    rule_hot_transitive_alloc(ws, graph, &mut out.violations);
    rule_blocking_in_event_loop(ws, graph, &mut out.violations);
    rule_panic_reachability(ws, graph, &mut out.panic_reach);
    rule_dead_pub_api(ws, &mut out.dead_api);
    rule_determinism_taint(ws, graph, &mut out.violations);
    rule_seqcst_on_hot_paths(ws, graph, &mut out.violations);
    out
}

/// True when `f` carries a call-site `ce:allow(rule)` marker covering
/// `line` (the marker's own line, trailing a call, or the line above it).
fn site_allowed(f: &crate::items::FnItem, rule: &str, line: u32) -> bool {
    f.allow_sites
        .iter()
        .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
}

/// BFS from `root` that skips call edges suppressed by a call-site
/// `ce:allow(rule)` marker in the caller's body.
fn reach_filtered(
    ws: &Workspace,
    graph: &CallGraph,
    root: usize,
    rule: &str,
) -> Vec<Option<crate::callgraph::Parent>> {
    let mut parents: Vec<Option<crate::callgraph::Parent>> = vec![None; ws.fns.len()];
    parents[root] = Some(crate::callgraph::Parent {
        caller: root,
        line: 0,
    });
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for e in &graph.adj[u] {
            if site_allowed(&ws.fns[u], rule, e.line) {
                continue;
            }
            if parents[e.callee].is_none() {
                parents[e.callee] = Some(crate::callgraph::Parent {
                    caller: u,
                    line: e.line,
                });
                queue.push_back(e.callee);
            }
        }
    }
    parents
}

/// `hot-path-transitive-alloc`: a `// ce:hot` fn must not *reach* an
/// allocating fn through any call chain. The direct-site case is the
/// file-local `hot-path-alloc` rule; this closes the helper loophole.
/// A call-site `ce:allow` marker cuts exactly that edge (for deliberate
/// warm-up allocations) without blinding the whole function.
fn rule_hot_transitive_alloc(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Violation>) {
    const RULE: &str = "hot-path-transitive-alloc";
    for (i, f) in ws.fns.iter().enumerate() {
        if !f.hot || f.allows.iter().any(|r| r == RULE) {
            continue;
        }
        let parents = reach_filtered(ws, graph, i, RULE);
        for (j, p) in parents.iter().enumerate() {
            if j == i || p.is_none() {
                continue;
            }
            let g = &ws.fns[j];
            let Some(site) = g.allocs.first() else {
                continue;
            };
            if g.allows.iter().any(|r| r == RULE) {
                continue;
            }
            let witness = render_witness(&ws.fns, &path_to(&parents, j));
            out.push(Violation {
                rule: RULE.to_string(),
                file: f.file.clone(),
                line: f.line,
                col: 1,
                message: format!(
                    "hot fn `{}` reaches allocating fn `{}` ({}:{}: {}) via {witness}",
                    f.display(),
                    g.display(),
                    g.file,
                    site.line,
                    site.what
                ),
            });
        }
    }
}

/// `blocking-in-event-loop`: a `// ce:nonblocking` fn (event-loop tick,
/// state-machine advance, deadline sweep, completion drain) must not
/// reach a blocking call — mutex locks, condvar waits, sleeps, joins,
/// channel receives, blocking reads/accepts — through any call chain,
/// including its own body. A call-site `ce:allow(blocking, reason = "…")`
/// marker cuts exactly that edge (for a deliberately short critical
/// section or a nonblocking fd) without blinding the whole function.
fn rule_blocking_in_event_loop(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Violation>) {
    const RULE: &str = "blocking-in-event-loop";
    const KIND: &str = "blocking";
    for (i, f) in ws.fns.iter().enumerate() {
        if !f.nonblocking || f.allows.iter().any(|r| r == KIND) {
            continue;
        }
        let parents = reach_filtered(ws, graph, i, KIND);
        for (j, p) in parents.iter().enumerate() {
            if p.is_none() {
                continue;
            }
            let g = &ws.fns[j];
            let Some(site) = g.blocking.first() else {
                continue;
            };
            if j != i && g.allows.iter().any(|r| r == KIND) {
                continue;
            }
            let witness = render_witness(&ws.fns, &path_to(&parents, j));
            out.push(Violation {
                rule: RULE.to_string(),
                file: f.file.clone(),
                line: f.line,
                col: 1,
                message: format!(
                    "nonblocking fn `{}` reaches blocking call {} in `{}` ({}:{}) via {witness}",
                    f.display(),
                    site.what,
                    g.display(),
                    g.file,
                    site.line
                ),
            });
        }
    }
}

/// The reachability half of `atomic-ordering`: a `SeqCst` site in any fn
/// reachable from a `// ce:hot` or `// ce:nonblocking` root is a hard
/// violation unless the site carries `ce:allow(seqcst, reason = "…")`.
/// `SeqCst` imposes a global total order — a full fence on some
/// architectures — which is exactly the latency cliff the reactor's
/// lock-free fast path exists to avoid; gauges and counters on those
/// paths want `Relaxed`, handoffs want `Acquire`/`Release`.
fn rule_seqcst_on_hot_paths(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Violation>) {
    const RULE: &str = "atomic-ordering";
    const KIND: &str = "seqcst";
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.hot || f.nonblocking)
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach(&roots);
    for (j, p) in parents.iter().enumerate() {
        if p.is_none() {
            continue;
        }
        let g = &ws.fns[j];
        for site in &g.seqcst {
            if site_allowed(g, KIND, site.line) || g.allows.iter().any(|r| r == KIND) {
                continue;
            }
            let witness = render_witness(&ws.fns, &path_to(&parents, j));
            out.push(Violation {
                rule: RULE.to_string(),
                file: g.file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "`Ordering::SeqCst` in `{}` is reachable from a hot/nonblocking root via \
                     {witness}; use Relaxed/Acquire/Release or justify with ce:allow(seqcst, …)",
                    g.display()
                ),
            });
        }
    }
}

/// `panic-reachability`: every panic site reachable from a `// ce:hot` fn
/// or a `// ce:entry` request handler, each with its shortest witness.
/// Not marker-suppressible — the `reach-baseline.json` ratchet is the
/// escape hatch, and it only goes down.
fn rule_panic_reachability(ws: &Workspace, graph: &CallGraph, out: &mut Vec<ReachFinding>) {
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.hot || f.entry)
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach(&roots);
    for (j, p) in parents.iter().enumerate() {
        if p.is_none() {
            continue;
        }
        let g = &ws.fns[j];
        if g.panics.is_empty() {
            continue;
        }
        let witness = render_witness(&ws.fns, &path_to(&parents, j));
        for site in &g.panics {
            out.push(ReachFinding {
                file: g.file.clone(),
                line: site.line,
                col: site.col,
                what: site.what.clone(),
                in_fn: g.display(),
                witness: witness.clone(),
            });
        }
    }
}

/// `dead-pub-api`: a `pub` item in a library crate that no identifier
/// anywhere in the workspace (src, tests, benches, examples) refers to
/// beyond its own definition. Name-based and therefore conservative in
/// the safe direction: a name collision keeps an item alive, never the
/// reverse.
fn rule_dead_pub_api(ws: &Workspace, out: &mut Vec<DeadFinding>) {
    const RULE: &str = "dead-pub-api";
    for p in &ws.pub_items {
        if p.allows.iter().any(|r| r == RULE) {
            continue;
        }
        if ws.refs_to(&p.name) > p.own_refs {
            continue;
        }
        out.push(DeadFinding {
            file: p.file.clone(),
            line: p.line,
            kind: p.kind,
            name: p.name.clone(),
        });
    }
}

/// `determinism-taint`: flags every call edge that crosses from a fully
/// deterministic crate into an allowance crate (wall clock or sockets)
/// whose target reaches an actual nondeterminism use. Thread-pool
/// allowances (`ce-parallel`) do not taint: determinism under threading
/// is that crate's proven contract.
fn rule_determinism_taint(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Violation>) {
    const RULE: &str = "determinism-taint";
    let tainted: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.taints.is_empty())
        .map(|(i, _)| i)
        .collect();
    if tainted.is_empty() {
        return;
    }
    let reversed = graph.reversed();
    let reaches_taint = reversed.reach(&tainted);
    for (i, f) in ws.fns.iter().enumerate() {
        let f_allow = allowances_for(&f.file);
        if f_allow.wall_clock || f_allow.sockets || f.allows.iter().any(|r| r == RULE) {
            continue;
        }
        for e in &graph.adj[i] {
            let g = &ws.fns[e.callee];
            let g_allow = allowances_for(&g.file);
            if !(g_allow.wall_clock || g_allow.sockets) {
                continue; // crossing edge only; deeper hops report there
            }
            if reaches_taint[e.callee].is_none() || g.allows.iter().any(|r| r == RULE) {
                continue;
            }
            // Witness from g down to the taint: the reversed-BFS path
            // runs taint → … → g; flip it.
            let mut down = path_to(&reaches_taint, e.callee);
            down.reverse();
            let taint_fn = &ws.fns[*down.last().unwrap_or(&e.callee)];
            let site = taint_fn.taints.first();
            let witness = render_witness(&ws.fns, &down);
            out.push(Violation {
                rule: RULE.to_string(),
                file: f.file.clone(),
                line: e.line,
                col: 1,
                message: format!(
                    "fn `{}` (deterministic crate `{}`) calls `{}` (crate `{}`), which \
                     reaches {} at {}:{} via {witness}",
                    f.display(),
                    f.crate_key,
                    g.display(),
                    g.crate_key,
                    site.map(|s| s.what.clone()).unwrap_or_default(),
                    taint_fn.file,
                    site.map(|s| s.line).unwrap_or(0),
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(rel_path: &str, src: &str) -> FileAnalysis {
        analyze_file(rel_path, src, &Config::default())
    }

    fn rules_of(fa: &FileAnalysis) -> Vec<&str> {
        fa.violations.iter().map(|v| v.rule.as_str()).collect()
    }

    #[test]
    fn hashmap_flagged_in_deterministic_crate() {
        let fa = analyze(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(rules_of(&fa), ["nondeterminism"; 3]);
    }

    #[test]
    fn hashmap_fine_in_tests() {
        let fa = analyze(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn f() { let _ = HashMap::<u32, u32>::new(); }\n}",
        );
        assert!(fa.violations.is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let fa = analyze(
            "crates/core/src/x.rs",
            "#[cfg(not(test))]\nmod real {\n  use std::collections::HashSet;\n}",
        );
        assert_eq!(rules_of(&fa), ["nondeterminism"]);
    }

    #[test]
    fn instant_allowed_only_in_bench() {
        let src = "fn f() { let _t = std::time::Instant::now(); }";
        assert_eq!(
            rules_of(&analyze("crates/core/src/x.rs", src)),
            ["nondeterminism"]
        );
        assert!(analyze("crates/bench/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn sockets_allowed_only_in_serve_and_bench() {
        let src = "fn f() { let _l = std::net::TcpListener::bind(\"127.0.0.1:0\"); }";
        assert_eq!(
            rules_of(&analyze("crates/core/src/x.rs", src)),
            ["nondeterminism"]
        );
        assert!(analyze("crates/serve/src/server.rs", src)
            .violations
            .is_empty());
        assert!(analyze("crates/bench/src/bin/bench_serve.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn thread_spawn_allowed_only_in_pool_crates() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        let scope = "fn f() { std::thread::scope(|_s| {}); }";
        for src in [spawn, scope] {
            assert_eq!(
                rules_of(&analyze("crates/core/src/x.rs", src)),
                ["nondeterminism"],
                "{src}"
            );
            assert!(analyze("crates/parallel/src/x.rs", src)
                .violations
                .is_empty());
            assert!(analyze("crates/serve/src/x.rs", src).violations.is_empty());
        }
        // `thread::current` stays forbidden even where spawning is allowed.
        let current = "fn f() { let _ = std::thread::current(); }";
        assert_eq!(
            rules_of(&analyze("crates/parallel/src/x.rs", current)),
            ["nondeterminism"]
        );
    }

    #[test]
    fn serve_allowance_is_narrow() {
        // The serve allowance covers sockets/threads/clock — a HashMap in
        // ce-serve is still a determinism violation.
        let fa = analyze(
            "crates/serve/src/cache.rs",
            "use std::collections::HashMap;\nfn f() { let _m = HashMap::<u32, u32>::new(); }",
        );
        assert_eq!(rules_of(&fa), ["nondeterminism"; 2]);
    }

    #[test]
    fn env_var_allowed_only_for_ce_threads_in_parallel() {
        let ok = r#"fn f() { let _ = std::env::var("CE_THREADS"); }"#;
        let bad = r#"fn f() { let _ = std::env::var("HOME"); }"#;
        assert!(analyze("crates/parallel/src/workers.rs", ok)
            .violations
            .is_empty());
        assert_eq!(
            rules_of(&analyze("crates/parallel/src/workers.rs", bad)),
            ["nondeterminism"]
        );
        assert_eq!(
            rules_of(&analyze("crates/core/src/x.rs", ok)),
            ["nondeterminism"]
        );
    }

    #[test]
    fn hot_fn_alloc_flagged() {
        let src = "// ce:hot\nfn kernel(xs: &[f64]) -> Vec<f64> {\n  let v = Vec::new();\n  let _ = xs.to_vec();\n  let s = format!(\"x\");\n  v\n}";
        let fa = analyze("crates/timeseries/src/x.rs", src);
        assert_eq!(rules_of(&fa), ["hot-path-alloc"; 3]);
    }

    #[test]
    fn unannotated_fn_may_allocate() {
        let src = "fn cold() -> Vec<f64> { vec![0.0] }";
        assert!(analyze("crates/timeseries/src/x.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn hot_marker_binds_to_next_fn_only() {
        let src = "// ce:hot\nfn hot() { let _ = 1; }\nfn cold() { let _ = vec![1]; }";
        assert!(analyze("crates/core/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn float_eq_flagged_and_allowed() {
        let bad = "fn f(x: f64) -> bool { x == 0.0 }";
        let fa = analyze("crates/core/src/x.rs", bad);
        assert_eq!(rules_of(&fa), ["float-eq"]);
        let ok = "fn f(x: f64) -> bool {\n  // ce:allow(float-eq, reason = \"exact zero guard\")\n  x == 0.0\n}";
        assert!(analyze("crates/core/src/x.rs", ok).violations.is_empty());
    }

    #[test]
    fn float_eq_ignores_integers_and_tests() {
        let src = "fn f(n: usize) -> bool { n == 0 }\n#[cfg(test)]\nmod tests { fn g(x: f64) -> bool { x == 1.5 } }";
        assert!(analyze("crates/core/src/x.rs", src).violations.is_empty());
    }

    #[test]
    fn as_f64_cast_comparison_is_flagged() {
        let src = "fn f(n: usize, y: f64) -> bool { n as f64 == y }";
        assert_eq!(
            rules_of(&analyze("crates/core/src/x.rs", src)),
            ["float-eq"]
        );
    }

    #[test]
    fn allow_marker_requires_reason() {
        let src = "// ce:allow(float-eq)\nfn f(x: f64) -> bool { x == 0.0 }";
        let fa = analyze("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fa), ["float-eq", "float-eq"]);
    }

    #[test]
    fn allow_marker_unknown_rule() {
        let src = "// ce:allow(made-up, reason = \"x\")\nfn f() {}";
        let fa = analyze("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fa), ["marker"]);
    }

    #[test]
    fn panic_sites_counted_outside_tests_only() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\nfn g() { panic!(\"boom\"); }\n#[cfg(test)]\nmod tests { fn t(o: Option<u32>) { o.unwrap(); } }";
        let fa = analyze("crates/core/src/x.rs", src);
        assert_eq!(fa.panic_sites, vec![1, 2]);
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }";
        assert!(analyze("crates/core/src/x.rs", src).panic_sites.is_empty());
    }

    #[test]
    fn doc_comment_examples_are_not_panic_sites() {
        let src = "/// ```\n/// x.unwrap();\n/// panic!();\n/// ```\nfn f() {}";
        assert!(analyze("crates/core/src/x.rs", src).panic_sites.is_empty());
    }

    #[test]
    fn crate_hygiene_on_roots_only() {
        let bare = "pub fn f() {}";
        let fa = analyze("crates/core/src/lib.rs", bare);
        assert_eq!(rules_of(&fa), ["crate-hygiene", "crate-hygiene"]);
        assert!(analyze("crates/core/src/other.rs", bare)
            .violations
            .is_empty());
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(analyze("crates/core/src/lib.rs", good)
            .violations
            .is_empty());
    }

    #[test]
    fn must_use_on_bare_stats_returns() {
        let bad = "pub fn stats() -> DispatchStats { todo() }";
        assert_eq!(
            rules_of(&analyze("crates/battery/src/x.rs", bad)),
            ["must-use"]
        );
        let annotated = "#[must_use]\npub fn stats() -> DispatchStats { todo() }";
        assert!(analyze("crates/battery/src/x.rs", annotated)
            .violations
            .is_empty());
        let wrapped = "pub fn stats() -> Result<DispatchStats, E> { todo() }";
        assert!(analyze("crates/battery/src/x.rs", wrapped)
            .violations
            .is_empty());
        let private = "fn stats() -> DispatchStats { todo() }";
        assert!(analyze("crates/battery/src/x.rs", private)
            .violations
            .is_empty());
        let restricted = "pub(crate) fn stats() -> DispatchStats { todo() }";
        assert!(analyze("crates/battery/src/x.rs", restricted)
            .violations
            .is_empty());
    }

    #[test]
    fn patterns_in_strings_do_not_fire() {
        let src = r#"fn f() -> &'static str { "HashMap Instant::now unwrap() == 0.0 vec![]" }"#;
        let fa = analyze("crates/core/src/x.rs", src);
        assert!(fa.violations.is_empty());
        assert!(fa.panic_sites.is_empty());
    }

    #[test]
    fn lossy_casts_counted_in_deterministic_crates_only() {
        let src = "fn f(x: f64, n: usize) -> u32 { let _ = x as u32; n as u32 }";
        let fa = analyze("crates/core/src/x.rs", src);
        assert!(fa.violations.is_empty());
        assert_eq!(fa.cast_sites, [1, 1]);
        assert!(analyze("crates/serve/src/x.rs", src).cast_sites.is_empty());
    }

    #[test]
    fn rounded_and_allowed_casts_are_exempt() {
        let src = "fn f(x: f64) -> u32 {\n  let a = x.round() as u32;\n  let b = x.clamp(0.0, 10.0) as u32;\n  // ce:allow(cast, reason = \"low 32 bits wanted\")\n  let c = (a as u64 * 3) as u32;\n  a + b + c\n}";
        let fa = analyze("crates/core/src/x.rs", src);
        assert!(fa.violations.is_empty());
        assert!(fa.cast_sites.is_empty(), "{:?}", fa.cast_sites);
    }

    #[test]
    fn widening_f64_and_test_casts_are_not_counted() {
        let src = "fn f(x: u32) -> f64 { x as f64 }\n#[cfg(test)]\nmod tests {\n  fn g(x: f64) -> u8 { x as u8 }\n}";
        let fa = analyze("crates/core/src/x.rs", src);
        assert!(fa.cast_sites.is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_is_a_violation() {
        let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }";
        let fa = analyze("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fa), ["unsafe-boundary"]);
        assert!(fa.unsafe_sites.is_empty());
    }

    #[test]
    fn allowlisted_unsafe_requires_a_safety_justification() {
        let unjustified = "fn f(p: *const u32) -> u32 { unsafe { *p } }";
        let fa = analyze("crates/serve/src/sys.rs", unjustified);
        assert_eq!(rules_of(&fa), ["unsafe-boundary"]);

        let justified = "// ce:safety(p is valid for reads by contract)\nfn f(p: *const u32) -> u32 { unsafe { *p } }";
        let fa = analyze("crates/serve/src/sys.rs", justified);
        assert!(fa.violations.is_empty());
        assert_eq!(fa.unsafe_sites, [2]);
    }

    #[test]
    fn allow_unsafe_code_attr_scope_is_one_fact() {
        let src = "// ce:safety(ffi declaration only; call sites carry the obligation)\n#[allow(unsafe_code)]\nmod ffi {\n  extern \"C\" {\n    pub fn poll() -> i32;\n  }\n}";
        let fa = analyze("crates/serve/src/sys.rs", src);
        assert!(fa.violations.is_empty());
        assert_eq!(fa.unsafe_sites, [2]);
    }

    #[test]
    fn empty_safety_marker_is_a_violation() {
        let src = "// ce:safety()\nfn f(p: *const u32) -> u32 { unsafe { *p } }";
        let fa = analyze("crates/serve/src/sys.rs", src);
        assert_eq!(rules_of(&fa), ["unsafe-boundary", "unsafe-boundary"]);
    }

    #[test]
    fn allow_blocking_and_cast_kinds_are_known() {
        let src = "// ce:allow(blocking, reason = \"short critical section\")\nfn f() {}\n// ce:allow(cast, reason = \"bounded\")\nfn g() {}";
        let fa = analyze("crates/core/src/x.rs", src);
        assert!(fa.violations.is_empty());
    }

    #[test]
    fn allow_blocking_without_reason_reports_under_owning_rule() {
        let src = "// ce:allow(blocking)\nfn f() {}";
        let fa = analyze("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&fa), ["blocking-in-event-loop"]);
    }
}
