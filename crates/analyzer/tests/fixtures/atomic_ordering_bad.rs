//! Positive fixture: `Ordering::*` at an atomic call site with no
//! `// ce:ordering(reason)` within 3 lines, and a marker with an empty
//! justification. The annotated forms live in the `_ok` companion.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter bumped with no stated memory-ordering contract.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// The strongest ordering, also unjustified.
pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::SeqCst);
}

/// The marker is present but says nothing.
pub fn read(flag: &AtomicU64) -> u64 {
    // ce:ordering()
    flag.load(Ordering::Acquire)
}
