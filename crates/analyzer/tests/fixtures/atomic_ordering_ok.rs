//! Negative fixture: every `Ordering::*` site carries a
//! `// ce:ordering(reason)` within 3 lines, and test regions are exempt.

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter with a stated contract.
pub fn bump(counter: &AtomicU64) {
    // ce:ordering(monotonic gauge; readers tolerate staleness)
    counter.fetch_add(1, Ordering::Relaxed);
}

/// One marker can cover nearby sites within its 3-line reach.
pub fn handoff(flag: &AtomicU64) -> u64 {
    // ce:ordering(Release store pairs with the Acquire load below)
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_exempt() {
        let c = AtomicU64::new(0);
        c.store(7, Ordering::SeqCst);
        assert_eq!(c.load(Ordering::SeqCst), 7);
    }
}
