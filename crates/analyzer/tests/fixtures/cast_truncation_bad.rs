//! Positive fixture: lossy `as` casts in a deterministic crate are
//! counted as ratchet sites. Widening into `f64` and rounded casts are
//! not (see the `_ok` companion for the sanctioned forms).

/// Narrowing a horizon index silently drops high bits on overflow.
pub fn pack_hour(hour_of_year: usize) -> u32 {
    hour_of_year as u32
}

/// Truncating a float towards zero silently loses the fraction.
pub fn whole_megawatts(power_mw: f64) -> i64 {
    power_mw as i64
}

/// Widening a `u32` into `f64` is exact and not counted.
pub fn exact_fraction(part: u32, whole: u32) -> f64 {
    f64::from(part) / f64::from(whole).max(1.0)
}
