//! Negative fixture: the sanctioned forms of the casts the `_bad`
//! companion counts — checked conversions, justified `ce:allow(cast)`
//! markers, the rounding/clamping carve-out, and test regions.

/// Checked conversion: saturate instead of truncating.
pub fn pack_hour(hour_of_year: usize) -> u32 {
    u32::try_from(hour_of_year).unwrap_or(u32::MAX)
}

/// A justified cast carries its proof.
pub fn day_hour(hour_of_year: usize) -> u8 {
    // ce:allow(cast, reason = "a residue modulo 24 always fits u8")
    (hour_of_year % 24) as u8
}

/// Rounding first states the intent, so the cast is exempt.
pub fn whole_megawatts(power_mw: f64) -> i64 {
    power_mw.round() as i64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let x = 300_usize;
        assert_eq!(x as u8, 44);
    }
}
