//! Fixture: a crate root missing both hygiene attributes (analyzed as
//! `crates/grid/src/lib.rs`).

pub mod fixture {
    /// A placeholder item.
    pub fn noop() {}
}
