//! Fixture: a crate root carrying both mandatory hygiene attributes
//! (analyzed as `crates/grid/src/lib.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixture {
    /// A placeholder item.
    pub fn noop() {}
}
