//! Precision fixture for the dataflow pass: the guarded index and the
//! guarded increment are *accepted* (absent from the golden), while the
//! structurally identical unguarded twins are rejected with their exact
//! site lines — pinning both directions of the classifier at once.

/// Accepted: the guard proves the index and the increment together.
pub fn guarded(xs: &[f64], i: usize) -> (f64, usize) {
    if i < xs.len() {
        (xs[i], i + 1)
    } else {
        (0.0, 0)
    }
}

/// Rejected: the same expressions with no guard in scope.
pub fn unguarded(xs: &[f64], i: usize) -> (f64, usize) {
    (xs[i], i + 1)
}

/// Accepted, then rejected: mutating the slice kills the length facts,
/// so the second index no longer has a live proof.
pub fn killed(xs: &mut Vec<f64>, i: usize) -> f64 {
    if i < xs.len() {
        let kept = xs[i];
        xs.push(0.0);
        kept + xs[i]
    } else {
        0.0
    }
}
