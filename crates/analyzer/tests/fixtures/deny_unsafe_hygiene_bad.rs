//! Fixture: `#![deny(unsafe_code)]` on an ordinary crate root (analyzed
//! as `crates/grid/src/lib.rs`). The downgrade from `forbid` is reserved
//! for ce-serve's FFI module; everywhere else the root must `forbid`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fixture {
    /// A placeholder item.
    pub fn noop() {}
}
