//! Fixture: `#![deny(unsafe_code)]` accepted on the ce-serve crate root
//! (analyzed as `crates/serve/src/lib.rs`). Its `sys` module scopes the
//! workspace's single `poll(2)` FFI declaration behind explicit
//! `#[allow(unsafe_code)]` blocks, which `forbid` would reject outright.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fixture {
    /// A placeholder item.
    pub fn noop() {}
}
