//! Fixture: unexplained float `==`/`!=` outside test code
//! (analyzed as `crates/timeseries/src/fixture.rs`).

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn differs(a: f64, threshold: f64) -> bool {
    a as f64 != threshold as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_comparison_in_tests_is_fine() {
        assert!(super::is_zero(0.0) == true || 1.0 == 1.0);
    }
}
