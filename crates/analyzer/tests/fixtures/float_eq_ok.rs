//! Fixture: float comparisons carrying the mandatory justification
//! (analyzed as `crates/timeseries/src/fixture.rs`).

pub fn is_zero(x: f64) -> bool {
    // ce:allow(float-eq, reason = "fixture: exact-zero guard against division by zero; any nonzero value takes the other branch")
    x == 0.0
}

pub fn near(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}
