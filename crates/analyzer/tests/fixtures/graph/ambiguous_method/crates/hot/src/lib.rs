pub struct Cheap;
pub struct Costly;

impl Cheap {
    pub fn compute(&self) -> f64 {
        1.0
    }
}

impl Costly {
    pub fn compute(&self) -> Vec<f64> {
        let mut out = Vec::new();
        out.push(2.0);
        out
    }
}

// ce:hot
pub fn kernel(c: &Cheap) -> f64 {
    c.compute()
}
