pub fn used_helper(x: f64) -> f64 {
    x + 1.0
}

pub fn forgotten_api(x: f64) -> f64 {
    x * 2.0
}

pub fn entrypoint(x: f64) -> f64 {
    used_helper(x)
}
