#[test]
fn forgotten_api_doubles() {
    assert_eq!(ce_lib::forgotten_api(2.0), 4.0);
    assert_eq!(ce_lib::entrypoint(1.0), 2.0);
}
