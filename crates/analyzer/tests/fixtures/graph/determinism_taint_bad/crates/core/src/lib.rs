use ce_serve::timed_evaluate;

pub fn sweep(x: f64) -> f64 {
    timed_evaluate(x)
}
