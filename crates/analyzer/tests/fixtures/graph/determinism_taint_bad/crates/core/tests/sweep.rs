#[test]
fn sweep_is_used() {
    let _ = ce_core::sweep;
}
