use ce_serve::timed_evaluate;

// ce:allow(determinism-taint, reason = "diagnostic path, excluded from sweep results")
pub fn sweep(x: f64) -> f64 {
    timed_evaluate(x)
}
