use std::time::Instant;

pub fn timed_evaluate(x: f64) -> f64 {
    let start = Instant::now();
    let y = x * 2.0;
    let _elapsed = start.elapsed();
    y
}
