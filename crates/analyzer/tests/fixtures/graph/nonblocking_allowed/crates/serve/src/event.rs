//! The same reactor as `nonblocking_bad`, with the one blocking edge cut
//! by a justified call-site `ce:allow(blocking)` marker: the allow covers
//! exactly that call, so the analysis is clean.

use std::sync::{Mutex, PoisonError};

/// A shard's job mailbox.
pub struct Shard {
    jobs: Mutex<Vec<u64>>,
}

impl Shard {
    /// One reactor step; must never park the shard thread.
    // ce:nonblocking
    pub fn tick(&self) -> usize {
        // ce:allow(blocking, reason = "mailbox critical section is a single drain; held only for one push elsewhere")
        self.drain()
    }

    /// Drains the mailbox under the shard mutex.
    fn drain(&self) -> usize {
        let jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.len()
    }
}
