//! A reactor whose tick transitively reaches a mutex acquisition: the
//! `ce:nonblocking` root must be rejected with a shortest witness path.

use std::sync::{Mutex, PoisonError};

/// A shard's job mailbox.
pub struct Shard {
    jobs: Mutex<Vec<u64>>,
}

impl Shard {
    /// One reactor step; must never park the shard thread.
    // ce:nonblocking
    pub fn tick(&self) -> usize {
        self.drain()
    }

    /// Drains the mailbox under the shard mutex.
    fn drain(&self) -> usize {
        let jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.len()
    }
}
