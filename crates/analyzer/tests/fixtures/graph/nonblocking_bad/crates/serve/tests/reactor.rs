#[test]
fn tick_is_used() {
    let _ = ce_serve::Shard::tick;
}
