// ce:entry
pub fn handle(raw: &str) -> f64 {
    route(raw)
}

fn route(raw: &str) -> f64 {
    parse(raw)
}

fn parse(raw: &str) -> f64 {
    raw.trim().parse().unwrap()
}
