// ce:entry
pub fn handle(raw: &str) -> f64 {
    parse(raw).unwrap_or(0.0)
}

fn parse(raw: &str) -> Option<f64> {
    raw.trim().parse().ok()
}
