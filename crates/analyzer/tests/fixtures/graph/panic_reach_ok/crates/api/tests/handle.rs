#[test]
fn handle_is_used() {
    let _ = ce_api::handle;
}
