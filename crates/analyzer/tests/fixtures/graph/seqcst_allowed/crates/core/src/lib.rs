//! The sanctioned form of the `seqcst_hot_bad` fixture: the fence is
//! reachable from a hot root, but the site carries both its
//! `ce:ordering` contract and a `ce:allow(seqcst)` justification, so the
//! graph half of `atomic-ordering` accepts it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sweep progress shared across worker shards.
pub struct Progress {
    done: AtomicU64,
}

impl Progress {
    /// One kernel step; every cycle counts.
    // ce:hot
    pub fn step(&self) {
        self.record();
    }

    /// Publishes one completed step.
    fn record(&self) {
        // ce:ordering(total order: the rendezvous below reads every shard's fence)
        // ce:allow(seqcst, reason = "cross-shard rendezvous needs the single total order")
        self.done.fetch_add(1, Ordering::SeqCst);
    }
}
