//! A hot kernel transitively reaching a `SeqCst` fence: the graph half
//! of `atomic-ordering` must reject it with a shortest witness path even
//! though the site itself carries a `ce:ordering` marker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sweep progress shared across worker shards.
pub struct Progress {
    done: AtomicU64,
}

impl Progress {
    /// One kernel step; every cycle counts.
    // ce:hot
    pub fn step(&self) {
        self.record();
    }

    /// Publishes one completed step.
    fn record(&self) {
        // ce:ordering(full fence, deliberately pinned for this fixture)
        self.done.fetch_add(1, Ordering::SeqCst);
    }
}
