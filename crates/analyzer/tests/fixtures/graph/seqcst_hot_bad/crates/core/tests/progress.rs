//! Keeps the fixture's pub surface referenced so `dead-pub-api` stays
//! out of the golden.

use ce_core::Progress;

#[test]
fn progress_steps() {
    let p = Progress::default();
    p.step();
}
