use ce_util::build_scratch;

// ce:hot
pub fn kernel(xs: &[f64]) -> f64 {
    let scratch = build_scratch(xs.len());
    scratch.len() as f64
}
