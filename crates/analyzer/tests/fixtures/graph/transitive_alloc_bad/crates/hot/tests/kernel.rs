// Keeps the public surface live for dead-pub-api: the harness scans
// fixture tests/ dirs as reference sources.
#[test]
fn kernel_is_used() {
    let _ = ce_hot::kernel;
}
