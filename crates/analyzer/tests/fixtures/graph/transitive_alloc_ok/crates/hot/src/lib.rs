use ce_util::build_scratch;

// ce:hot
pub fn kernel(xs: &[f64]) -> f64 {
    // ce:allow(hot-path-transitive-alloc, reason = "warm-up: runs once before the steady state")
    let scratch = build_scratch(xs.len());
    scratch.len() as f64
}
