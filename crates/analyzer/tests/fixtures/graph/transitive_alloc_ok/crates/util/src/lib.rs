pub fn build_scratch(n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    out.push(0.0);
    out
}
