//! Fixture: allocations inside `// ce:hot` functions
//! (analyzed as `crates/timeseries/src/fixture.rs`).

// ce:hot
pub fn windowed_sum(xs: &[f64]) -> f64 {
    let scratch = vec![0.0f64; xs.len()];
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    let label = format!("{} points", xs.len());
    let copy = xs.to_vec();
    let boxed = Box::new(0.0f64);
    scratch.len() as f64 + doubled.len() as f64 + label.len() as f64 + copy.len() as f64 + *boxed
}

// Not annotated: the same allocations are fine on cold paths.
pub fn cold_setup(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
