//! Fixture: a clean streaming hot path, plus one marker-suppressed
//! allocation (analyzed as `crates/timeseries/src/fixture.rs`).

// ce:hot
pub fn zip_sum(a: &[f64], b: &[f64], out: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for ((x, y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        *o = x + y;
        acc += *o;
    }
    acc
}

// ce:hot
pub fn warm_path(xs: &[f64], scratch: &mut Vec<f64>) -> f64 {
    if scratch.len() < xs.len() {
        // ce:allow(hot-path-alloc, reason = "fixture: one-time scratch warm-up, amortized to zero across the sweep")
        scratch.resize(xs.len(), 0.0);
    }
    xs.iter().sum()
}
