//! Positive fixture: unchecked arithmetic on integer operands that the
//! dataflow pass cannot prove in-range is counted as a ratchet site.
//! Proven, rewritten, and justified forms live in the `_ok` companion.

/// Two unbounded indexes: the sum can wrap `usize` on adversarial input.
pub fn advance(cursor: usize, step: usize) -> usize {
    cursor + step
}

/// An unproven scale factor: the product can overflow silently.
pub fn scale(hours: u64, factor: u64) -> u64 {
    hours * factor
}

/// A shift by a variable amount: nothing bounds `bits` below 64.
pub fn lane_mask(bits: u32) -> u64 {
    1u64 << bits
}

/// Subtraction with no `a >= b` guard in scope can wrap below zero.
pub fn gap(later: u32, earlier: u32) -> u32 {
    later - earlier
}
