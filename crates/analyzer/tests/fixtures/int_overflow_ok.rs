//! Negative fixture: the sanctioned forms of the arithmetic the `_bad`
//! companion counts — dataflow-proven sites (constant folds, guarded
//! increments, guarded subtraction), explicit `checked_*`/`saturating_*`
//! rewrites, justified `ce:allow(arith)` markers, and test regions.

/// Constant folding: `24 * 7` is provably in-range at every width.
pub fn week_hours() -> u32 {
    24 * 7
}

/// A guard puts `i + 1` within `xs.len()`, which fits the index type.
pub fn next_slot(xs: &[f64], i: usize) -> usize {
    if i < xs.len() {
        i + 1
    } else {
        0
    }
}

/// The `while` guard proves the subtraction cannot wrap.
pub fn drain(mut remaining: u32, chunk: u32) -> u32 {
    while remaining >= chunk {
        remaining -= chunk;
    }
    remaining
}

/// An explicit rewrite states the overflow policy instead of hoping.
pub fn scale(hours: u64, factor: u64) -> u64 {
    hours.saturating_mul(factor)
}

/// A justified site carries its proof in the marker.
pub fn wrap_hour(hour: u32) -> u32 {
    // ce:allow(arith, reason = "callers pass hour < 8784, far from u32::MAX")
    hour + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let x = u64::MAX;
        assert_eq!(x.wrapping_add(1), x + 1 - 1);
    }
}
