//! Fixture: a provenance record stamped with wall-clock time (analyzed
//! as `crates/manifest/src/fixture.rs`). A manifest attests a
//! *deterministic* computation — stamping a creation time would make two
//! runs of the same scenario emit different record bytes, breaking the
//! content-address. `ce-manifest` carries no clock allowance, so the
//! nondeterminism rule must reject this outright.

use std::time::SystemTime;

pub struct StampedRecord {
    pub result_hash: String,
    pub created_unix_secs: u64,
}

pub fn stamp(result_hash: String) -> StampedRecord {
    let created_unix_secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |since| since.as_secs());
    StampedRecord {
        result_hash,
        created_unix_secs,
    }
}
