//! Fixture: malformed suppression markers are themselves violations
//! (analyzed as `crates/core/src/fixture.rs`).

// ce:allow(no-such-rule, reason = "fixture: the rule name is not one the analyzer knows")
pub fn a() {}

// ce:allow(float-eq)
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
