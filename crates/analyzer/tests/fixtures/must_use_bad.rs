//! Fixture: pure result structs returned without `#[must_use]`
//! (analyzed as `crates/battery/src/fixture.rs`).

pub fn simulate() -> DispatchStats {
    DispatchStats::default()
}

pub fn combined(a: f64) -> CombinedStats {
    CombinedStats::from(a)
}

// Wrapped returns are exempt: the caller must already unwrap the Result.
pub fn try_simulate() -> Result<DispatchStats, String> {
    Ok(DispatchStats::default())
}
