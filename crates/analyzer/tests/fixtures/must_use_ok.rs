//! Fixture: result structs correctly annotated, plus one
//! marker-suppressed site (analyzed as `crates/battery/src/fixture.rs`).

#[must_use]
pub fn simulate() -> DispatchStats {
    DispatchStats::default()
}

// ce:allow(must-use, reason = "fixture: called for its logging side effect in the bench harness")
pub fn combined(a: f64) -> CombinedStats {
    CombinedStats::from(a)
}
