//! Fixture: iteration-order and wall-clock nondeterminism in a
//! deterministic crate (analyzed as `crates/core/src/fixture.rs`).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

pub fn keyed_scratch() -> HashMap<u64, f64> {
    HashMap::new()
}

pub fn seen() -> HashSet<u32> {
    HashSet::new()
}

pub fn elapsed_secs() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn worker_count() -> usize {
    std::env::var("CE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
