//! Fixture: the same constructs, permitted (analyzed as
//! `crates/parallel/src/workers.rs`, the crate allowlisted for the
//! `CE_THREADS` environment probe).

pub fn worker_count() -> usize {
    std::env::var("CE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

// ce:allow(nondeterminism, reason = "fixture: keys are drained into a sorted Vec before any order-sensitive use")
pub fn scratch() -> std::collections::HashMap<u64, f64> {
    // ce:allow(nondeterminism, reason = "fixture: same map, constructor site")
    std::collections::HashMap::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
