//! Fixture: panic sites in library code, counted for the baseline
//! ratchet (analyzed as `crates/grid/src/fixture.rs`).

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("fixture: digits only")
}

pub fn dispatch(kind: u8) -> &'static str {
    match kind {
        0 => "solar",
        1 => "wind",
        _ => panic!("unknown kind"),
    }
}

pub fn clamped(x: f64) -> f64 {
    if (0.0..=1.0).contains(&x) {
        x
    } else {
        unreachable!("caller pre-validates")
    }
}
