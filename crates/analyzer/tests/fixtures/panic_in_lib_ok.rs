//! Fixture: the same panicking constructs confined to test code, where
//! the ratchet does not count them (analyzed as
//! `crates/grid/src/fixture.rs`).

pub fn first_or_zero(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_free() {
        let xs = [1.0f64];
        assert_eq!(*xs.first().unwrap(), 1.0);
        let n: u32 = "7".parse().expect("digits");
        assert_eq!(n, 7);
    }

    #[test]
    #[should_panic]
    fn panics_are_test_behaviour() {
        panic!("expected");
    }
}
