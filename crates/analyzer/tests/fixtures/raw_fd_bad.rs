//! Fixture: raw file descriptors leaking into a deterministic crate
//! (analyzed as `crates/core/src/fixture.rs`). Only ce-serve's event
//! loop may touch fds — it hands sockets to `poll(2)`; anywhere else a
//! raw fd is I/O sneaking into compute code.

use std::fs::File;
use std::os::fd::{AsRawFd, RawFd};

pub fn leak_fd(file: &File) -> RawFd {
    file.as_raw_fd()
}
