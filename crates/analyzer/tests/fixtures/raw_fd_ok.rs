//! Fixture: the same raw-fd surface, permitted (analyzed as
//! `crates/serve/src/fixture.rs` — the one crate whose event loop must
//! hand socket fds to `poll(2)`).

use std::net::TcpListener;
use std::os::fd::{AsRawFd, RawFd};

pub fn pollable(listener: &TcpListener) -> RawFd {
    listener.as_raw_fd()
}
