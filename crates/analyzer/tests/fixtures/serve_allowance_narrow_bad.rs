//! Fixture: the serve allowance is *narrow* (analyzed as
//! `crates/serve/src/fixture.rs`). Sockets, worker threads, and clock
//! reads pass, but every other determinism rule still bites inside
//! ce-serve: hash-order containers, ambient environment reads, and
//! `thread::current` remain violations.

use std::collections::HashMap;

pub fn serve_forever() -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let worker = std::thread::spawn(move || drop(listener));
    let _ = worker.join();
    Ok(())
}

pub fn routing_table() -> HashMap<String, u16> {
    HashMap::new()
}

pub fn ambient_port() -> Option<String> {
    std::env::var("PORT").ok()
}

pub fn worker_name() -> String {
    format!("{:?}", std::thread::current().id())
}
