//! Fixture: sockets and thread spawning in a deterministic crate
//! (analyzed as `crates/core/src/fixture.rs`). Compute crates must never
//! grow a network or threading edge of their own.

use std::net::{TcpListener, TcpStream, UdpSocket};

pub fn open_listener() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

pub fn dial() -> std::io::Result<TcpStream> {
    TcpStream::connect("127.0.0.1:7878")
}

pub fn datagram() -> std::io::Result<UdpSocket> {
    UdpSocket::bind("127.0.0.1:0")
}

pub fn fan_out() {
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle.join();
    std::thread::scope(|_s| {});
}
