//! Fixture: the same serving constructs, permitted (analyzed as
//! `crates/serve/src/fixture.rs` — the crate allowlisted for sockets,
//! worker threads, and wall-clock reads).

use std::net::{TcpListener, TcpStream};
use std::time::Instant;

pub fn open_listener() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

pub fn dial() -> std::io::Result<TcpStream> {
    TcpStream::connect("127.0.0.1:7878")
}

pub fn pool() {
    let worker = std::thread::spawn(|| {});
    let _ = worker.join();
}

pub fn latency_micros(start: Instant) -> u128 {
    start.elapsed().as_micros()
}
