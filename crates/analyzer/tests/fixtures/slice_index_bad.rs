//! Positive fixture: postfix bracket indexing the dataflow pass cannot
//! prove bounded is counted as a ratchet site. Guarded and iterator
//! forms live in the `_ok` companion.

/// No emptiness guard: `xs[0]` panics on an empty slice.
pub fn first(xs: &[f64]) -> f64 {
    xs[0]
}

/// An arbitrary index with no bound in scope.
pub fn pick(xs: &[f64], i: usize) -> f64 {
    xs[i]
}

/// The guard protects the wrong variable: `j` is still unbounded.
pub fn misguarded(xs: &[f64], i: usize, j: usize) -> f64 {
    if i < xs.len() {
        xs[j]
    } else {
        0.0
    }
}
