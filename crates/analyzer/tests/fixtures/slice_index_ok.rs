//! Negative fixture: the bounded forms of the indexing the `_bad`
//! companion counts — dataflow-proven guards, range loops, `min`-clamped
//! cursors, total `.get()` accesses, justified markers, and test regions.

/// The guard proves `i` in range on the taken branch.
pub fn pick(xs: &[f64], i: usize) -> f64 {
    if i < xs.len() {
        xs[i]
    } else {
        0.0
    }
}

/// A non-emptiness guard proves the constant index.
pub fn first(xs: &[f64]) -> f64 {
    if !xs.is_empty() {
        xs[0]
    } else {
        0.0
    }
}

/// The range loop bounds its induction variable by construction.
pub fn total(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for i in 0..xs.len() {
        sum += xs[i];
    }
    sum
}

/// Clamping against `len() - 1` proves the lookup under the guard.
pub fn saturating_lookup(table: &[f64], slot: usize) -> f64 {
    if !table.is_empty() {
        let last = table.len() - 1;
        let clamped = slot.min(last);
        table[clamped]
    } else {
        0.0
    }
}

/// The total form needs no proof at all.
pub fn checked(xs: &[f64], i: usize) -> f64 {
    xs.get(i).copied().unwrap_or(0.0)
}

/// A justified site carries its reasoning.
pub fn wrapped(xs: &[f64], i: usize) -> f64 {
    // ce:allow(index, reason = "i % len is in range; modulo proof is out of scope")
    xs[i % xs.len()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let xs = [1.0, 2.0];
        assert!((xs[1] - 2.0).abs() < f64::EPSILON);
    }
}
