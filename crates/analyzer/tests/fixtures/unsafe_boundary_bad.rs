//! Positive fixture: unsafe outside the allowlist is rejected outright,
//! and a `ce:safety()` marker with no justification text is itself a
//! violation — an empty proof is no proof.

/// Reads the first element without a bounds check.
pub fn first_unchecked(values: &[f64]) -> f64 {
    // ce:safety()
    unsafe { *values.as_ptr() }
}

#[allow(unsafe_code)]
mod shim {
    extern "C" {
        pub fn external_sum(ptr: *const f64, len: usize) -> f64;
    }
}
