//! Fixture for the allowlisted path: justified unsafe inside
//! `crates/serve/src/sys.rs` produces no violations, only ratchet
//! *sites* — the golden pins exactly two `unsafe-site` lines and nothing
//! else, proving the rule counts rather than flags here.

// ce:safety(declaration only — the foreign signature matches the kernel
// prototype and introduces no runtime behavior)
#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn poll_shim(fd: i32) -> i32;
    }
}

/// Calls the shim with a descriptor the caller owns.
pub fn poll_once(fd: i32) -> i32 {
    // ce:safety(`fd` is a valid open descriptor owned by the caller)
    #[allow(unsafe_code)]
    unsafe {
        ffi::poll_shim(fd)
    }
}
