//! Golden-file diagnostics tests.
//!
//! Every rule has a **positive** fixture whose rendered diagnostics must
//! match the committed `.expected` file byte-for-byte, and a **negative**
//! fixture — the same constructs carrying `ce:allow` markers or living in
//! an allowlisted crate/test region — that must analyze clean. A final
//! self-check runs the full driver against the live workspace and demands
//! a clean exit, so the linter can never drift from the code it guards.
//!
//! To regenerate the goldens after an intentional diagnostics change:
//! `CE_BLESS=1 cargo test -p ce-analyzer --test golden`, then review the
//! diff.

use ce_analyzer::config::Config;
use ce_analyzer::rules::analyze_file;
use ce_analyzer::{run, Format, Options, Outcome};
use std::fs;
use std::path::{Path, PathBuf};

/// A fixture analyzed under a synthetic workspace-relative path (the path
/// decides which crate allowances and root-only rules apply).
struct Case {
    /// File stem under `tests/fixtures/`, without `.rs`.
    stem: &'static str,
    /// The path the analyzer is told the fixture lives at.
    rel_path: &'static str,
    /// Whether the fixture must produce diagnostics (golden-compared) or
    /// analyze completely clean.
    dirty: bool,
}

const CASES: &[Case] = &[
    Case {
        stem: "nondeterminism_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "nondeterminism_ok",
        rel_path: "crates/parallel/src/workers.rs",
        dirty: false,
    },
    Case {
        stem: "serving_nondeterminism_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "serving_nondeterminism_ok",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "serve_allowance_narrow_bad",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "hot_path_alloc_bad",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "hot_path_alloc_ok",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "float_eq_bad",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "float_eq_ok",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "panic_in_lib_bad",
        rel_path: "crates/grid/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "panic_in_lib_ok",
        rel_path: "crates/grid/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "crate_hygiene_bad",
        rel_path: "crates/grid/src/lib.rs",
        dirty: true,
    },
    Case {
        stem: "crate_hygiene_ok",
        rel_path: "crates/grid/src/lib.rs",
        dirty: false,
    },
    Case {
        stem: "must_use_bad",
        rel_path: "crates/battery/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "must_use_ok",
        rel_path: "crates/battery/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "marker_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Renders one fixture's analysis the way `print_human` renders the
/// workspace scan, with ratchet inputs appended so the panic-site counter
/// is golden-tested too.
fn render(case: &Case, config: &Config) -> String {
    let source = fs::read_to_string(fixtures_dir().join(format!("{}.rs", case.stem)))
        .expect("fixture exists");
    let analysis = analyze_file(case.rel_path, &source, config);
    let mut out = String::new();
    for v in &analysis.violations {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            v.file, v.line, v.col, v.rule, v.message
        ));
    }
    for line in &analysis.panic_sites {
        out.push_str(&format!("panic-site {}:{}\n", case.rel_path, line));
    }
    out
}

#[test]
fn fixtures_match_goldens() {
    let config = Config::default();
    let bless = std::env::var_os("CE_BLESS").is_some();
    let mut failures = Vec::new();
    for case in CASES {
        let rendered = render(case, &config);
        if !case.dirty {
            if !rendered.is_empty() {
                failures.push(format!(
                    "{}: expected a clean analysis, got:\n{rendered}",
                    case.stem
                ));
            }
            continue;
        }
        let golden_path = fixtures_dir().join(format!("{}.expected", case.stem));
        if bless {
            fs::write(&golden_path, &rendered).expect("write golden");
            continue;
        }
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: missing golden ({e}); run CE_BLESS=1", case.stem));
        if rendered != golden {
            failures.push(format!(
                "{}: diagnostics drifted from golden.\n--- expected ---\n{golden}\
                 --- actual ---\n{rendered}",
                case.stem
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn dirty_fixtures_exercise_every_rule() {
    // The positive fixtures, between them, must cover all six rule names —
    // otherwise a rule could silently stop firing without any golden
    // noticing.
    let config = Config::default();
    let mut seen: Vec<String> = Vec::new();
    for case in CASES.iter().filter(|c| c.dirty) {
        let source = fs::read_to_string(fixtures_dir().join(format!("{}.rs", case.stem)))
            .expect("fixture exists");
        let analysis = analyze_file(case.rel_path, &source, &config);
        for v in &analysis.violations {
            seen.push(v.rule.clone());
        }
        if !analysis.panic_sites.is_empty() {
            seen.push("panic-in-lib".to_string());
        }
    }
    for rule in ce_analyzer::config::RULE_NAMES {
        assert!(
            seen.iter().any(|s| s == rule),
            "no positive fixture triggers `{rule}`"
        );
    }
}

#[test]
fn live_workspace_is_clean() {
    // The self-check: the analyzer must pass on the workspace that ships
    // it, with the committed baseline. A regression here means either new
    // code broke an invariant or a rule change needs the codebase (or the
    // baseline) brought along in the same commit.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves");
    let opts = Options {
        baseline_path: root.join("lint-baseline.json"),
        root,
        format: Format::Json,
        write_baseline: false,
    };
    assert_eq!(
        run(&opts),
        Outcome::Clean,
        "ce-analyzer found violations in the live workspace; run \
         `cargo run -p ce-analyzer` for diagnostics"
    );
}
