//! Golden-file diagnostics tests.
//!
//! Every rule has a **positive** fixture whose rendered diagnostics must
//! match the committed `.expected` file byte-for-byte, and a **negative**
//! fixture — the same constructs carrying `ce:allow` markers or living in
//! an allowlisted crate/test region — that must analyze clean. A final
//! self-check runs the full driver against the live workspace and demands
//! a clean exit, so the linter can never drift from the code it guards.
//!
//! To regenerate the goldens after an intentional diagnostics change:
//! `CE_BLESS=1 cargo test -p ce-analyzer --test golden`, then review the
//! diff.

use ce_analyzer::config::Config;
use ce_analyzer::rules::analyze_file;
use ce_analyzer::{
    analyze_workspace, run, scan_workspace, CrateGraph, Format, Options, Outcome, WorkspaceAnalysis,
};
use std::fs;
use std::path::{Path, PathBuf};

/// A fixture analyzed under a synthetic workspace-relative path (the path
/// decides which crate allowances and root-only rules apply).
struct Case {
    /// File stem under `tests/fixtures/`, without `.rs`.
    stem: &'static str,
    /// The path the analyzer is told the fixture lives at.
    rel_path: &'static str,
    /// Whether the fixture must produce diagnostics (golden-compared) or
    /// analyze completely clean.
    dirty: bool,
}

const CASES: &[Case] = &[
    Case {
        stem: "nondeterminism_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "nondeterminism_ok",
        rel_path: "crates/parallel/src/workers.rs",
        dirty: false,
    },
    Case {
        stem: "serving_nondeterminism_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "serving_nondeterminism_ok",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "serve_allowance_narrow_bad",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: true,
    },
    Case {
        // Provenance records must not carry wall-clock stamps: the
        // manifest crate is deterministic, so a `SystemTime::now`
        // creation timestamp is rejected, not baselined.
        stem: "manifest_wallclock_bad",
        rel_path: "crates/manifest/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "raw_fd_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "raw_fd_ok",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "hot_path_alloc_bad",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "hot_path_alloc_ok",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "float_eq_bad",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "float_eq_ok",
        rel_path: "crates/timeseries/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "panic_in_lib_bad",
        rel_path: "crates/grid/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "panic_in_lib_ok",
        rel_path: "crates/grid/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "crate_hygiene_bad",
        rel_path: "crates/grid/src/lib.rs",
        dirty: true,
    },
    Case {
        stem: "crate_hygiene_ok",
        rel_path: "crates/grid/src/lib.rs",
        dirty: false,
    },
    Case {
        stem: "deny_unsafe_hygiene_bad",
        rel_path: "crates/grid/src/lib.rs",
        dirty: true,
    },
    Case {
        stem: "deny_unsafe_hygiene_ok",
        rel_path: "crates/serve/src/lib.rs",
        dirty: false,
    },
    Case {
        stem: "must_use_bad",
        rel_path: "crates/battery/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "must_use_ok",
        rel_path: "crates/battery/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "marker_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "cast_truncation_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "cast_truncation_ok",
        rel_path: "crates/core/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "unsafe_boundary_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        // The allowlisted path: justified unsafe is *counted*, not
        // flagged — dirty so the golden pins the two `unsafe-site` lines
        // (and, by matching exactly, the absence of any violation).
        stem: "unsafe_boundary_ok",
        rel_path: "crates/serve/src/sys.rs",
        dirty: true,
    },
    Case {
        stem: "int_overflow_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "int_overflow_ok",
        rel_path: "crates/core/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "slice_index_bad",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "slice_index_ok",
        rel_path: "crates/core/src/fixture.rs",
        dirty: false,
    },
    Case {
        stem: "atomic_ordering_bad",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: true,
    },
    Case {
        stem: "atomic_ordering_ok",
        rel_path: "crates/serve/src/fixture.rs",
        dirty: false,
    },
    Case {
        // Both directions of the dataflow classifier in one file: the
        // guarded twins are accepted (absent from the golden), the
        // unguarded twins are rejected at their exact site lines.
        stem: "dataflow_precision",
        rel_path: "crates/core/src/fixture.rs",
        dirty: true,
    },
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Renders one fixture's analysis the way `print_human` renders the
/// workspace scan, with ratchet inputs appended so the panic-site counter
/// is golden-tested too.
fn render(case: &Case, config: &Config) -> String {
    let source = fs::read_to_string(fixtures_dir().join(format!("{}.rs", case.stem)))
        .expect("fixture exists");
    let analysis = analyze_file(case.rel_path, &source, config);
    let mut out = String::new();
    for v in &analysis.violations {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            v.file, v.line, v.col, v.rule, v.message
        ));
    }
    for line in &analysis.panic_sites {
        out.push_str(&format!("panic-site {}:{}\n", case.rel_path, line));
    }
    for line in &analysis.cast_sites {
        out.push_str(&format!("cast-site {}:{}\n", case.rel_path, line));
    }
    for line in &analysis.unsafe_sites {
        out.push_str(&format!("unsafe-site {}:{}\n", case.rel_path, line));
    }
    for line in &analysis.arith_sites {
        out.push_str(&format!("arith-site {}:{}\n", case.rel_path, line));
    }
    for line in &analysis.index_sites {
        out.push_str(&format!("index-site {}:{}\n", case.rel_path, line));
    }
    out
}

#[test]
fn fixtures_match_goldens() {
    let config = Config::default();
    let bless = std::env::var_os("CE_BLESS").is_some();
    let mut failures = Vec::new();
    for case in CASES {
        let rendered = render(case, &config);
        if !case.dirty {
            if !rendered.is_empty() {
                failures.push(format!(
                    "{}: expected a clean analysis, got:\n{rendered}",
                    case.stem
                ));
            }
            continue;
        }
        let golden_path = fixtures_dir().join(format!("{}.expected", case.stem));
        if bless {
            fs::write(&golden_path, &rendered).expect("write golden");
            continue;
        }
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: missing golden ({e}); run CE_BLESS=1", case.stem));
        if rendered != golden {
            failures.push(format!(
                "{}: diagnostics drifted from golden.\n--- expected ---\n{golden}\
                 --- actual ---\n{rendered}",
                case.stem
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// A multi-file fixture: a mini-workspace directory under
/// `tests/fixtures/graph/<name>/` with `crates/*/Cargo.toml` manifests,
/// analyzed end to end through both passes. Dirty cases golden-compare
/// their graph-rule output against the committed `expected.txt` in the
/// case directory; clean cases must produce no graph findings at all.
struct GraphCase {
    name: &'static str,
    dirty: bool,
}

const GRAPH_CASES: &[GraphCase] = &[
    GraphCase {
        name: "transitive_alloc_bad",
        dirty: true,
    },
    GraphCase {
        name: "transitive_alloc_ok",
        dirty: false,
    },
    GraphCase {
        name: "panic_reach_bad",
        dirty: true,
    },
    GraphCase {
        name: "panic_reach_ok",
        dirty: false,
    },
    GraphCase {
        name: "dead_pub_bad",
        dirty: true,
    },
    GraphCase {
        name: "dead_pub_ok",
        dirty: false,
    },
    GraphCase {
        name: "determinism_taint_bad",
        dirty: true,
    },
    GraphCase {
        name: "determinism_taint_ok",
        dirty: false,
    },
    // Conservatism proof: `kernel` calls `.compute()` on a `Cheap`
    // receiver, but method resolution is name-based, so the allocating
    // `Costly::compute` candidate keeps the violation alive — the rule
    // over-approximates rather than miss a real reach.
    GraphCase {
        name: "ambiguous_method",
        dirty: true,
    },
    GraphCase {
        name: "nonblocking_bad",
        dirty: true,
    },
    GraphCase {
        name: "nonblocking_allowed",
        dirty: false,
    },
    GraphCase {
        name: "seqcst_hot_bad",
        dirty: true,
    },
    GraphCase {
        name: "seqcst_allowed",
        dirty: false,
    },
];

fn graph_case_dir(name: &str) -> PathBuf {
    fixtures_dir().join("graph").join(name)
}

/// Recursively collects `(case-relative path, contents)` for every `.rs`
/// file under `dir`, sorted by path.
fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("fixture path under case root")
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path).expect("fixture file readable");
            out.push((rel, src));
        }
    }
}

/// Runs both analysis passes over one graph case.
fn analyze_graph_case(case: &GraphCase) -> WorkspaceAnalysis {
    let dir = graph_case_dir(case.name);
    let crates = CrateGraph::from_root(&dir).expect("fixture manifests parse");
    let mut lib = Vec::new();
    let mut refs = Vec::new();
    let crates_dir = dir.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for crate_dir in dirs {
            collect_sources(&dir, &crate_dir.join("src"), &mut lib);
            collect_sources(&dir, &crate_dir.join("tests"), &mut refs);
        }
    }
    lib.sort();
    refs.sort();
    analyze_workspace(&lib, &refs, crates, &Config::default())
}

/// Renders a graph case's *graph-rule* output (file-local rules are
/// covered by the single-file goldens and ignored here).
fn render_graph(analysis: &WorkspaceAnalysis) -> String {
    const GRAPH_RULES: &[&str] = &[
        "hot-path-transitive-alloc",
        "determinism-taint",
        "blocking-in-event-loop",
        "atomic-ordering",
    ];
    let mut out = String::new();
    for v in &analysis.violations {
        if GRAPH_RULES.contains(&v.rule.as_str()) {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                v.file, v.line, v.col, v.rule, v.message
            ));
        }
    }
    for f in &analysis.panic_reach {
        out.push_str(&format!(
            "reach {}:{}:{}: {} in `{}` via {}\n",
            f.file, f.line, f.col, f.what, f.in_fn, f.witness
        ));
    }
    for d in &analysis.dead_api {
        out.push_str(&format!(
            "dead {}:{}: pub {} `{}`\n",
            d.file, d.line, d.kind, d.name
        ));
    }
    out
}

#[test]
fn graph_fixtures_match_goldens() {
    let bless = std::env::var_os("CE_BLESS").is_some();
    let mut failures = Vec::new();
    for case in GRAPH_CASES {
        let rendered = render_graph(&analyze_graph_case(case));
        if !case.dirty {
            if !rendered.is_empty() {
                failures.push(format!(
                    "{}: expected no graph findings, got:\n{rendered}",
                    case.name
                ));
            }
            continue;
        }
        let golden_path = graph_case_dir(case.name).join("expected.txt");
        if bless {
            fs::write(&golden_path, &rendered).expect("write golden");
            continue;
        }
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: missing golden ({e}); run CE_BLESS=1", case.name));
        if rendered != golden {
            failures.push(format!(
                "{}: graph diagnostics drifted from golden.\n--- expected ---\n{golden}\
                 --- actual ---\n{rendered}",
                case.name
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn every_reachability_finding_carries_a_witness_path() {
    // The rule's contract: no finding without a concrete call path.
    for case in GRAPH_CASES.iter().filter(|c| c.dirty) {
        for f in &analyze_graph_case(case).panic_reach {
            assert!(
                !f.witness.is_empty(),
                "{}: finding at {}:{} has no witness",
                case.name,
                f.file,
                f.line
            );
        }
    }
}

#[test]
fn dirty_fixtures_exercise_every_rule() {
    // The positive fixtures, between them, must cover every rule name —
    // otherwise a rule could silently stop firing without any golden
    // noticing. File-local rules come from the single-file cases, graph
    // rules from the mini-workspace cases. The counting rules
    // (`panic-in-lib`, `cast-truncation`, `unsafe-boundary`,
    // `int-overflow`, `slice-index`) surface as ratcheted site counts
    // rather than direct violations, so their coverage is synthesized
    // from the extracted sites.
    let config = Config::default();
    let mut seen: Vec<String> = Vec::new();
    for case in CASES.iter().filter(|c| c.dirty) {
        let source = fs::read_to_string(fixtures_dir().join(format!("{}.rs", case.stem)))
            .expect("fixture exists");
        let analysis = analyze_file(case.rel_path, &source, &config);
        for v in &analysis.violations {
            seen.push(v.rule.clone());
        }
        if !analysis.panic_sites.is_empty() {
            seen.push("panic-in-lib".to_string());
        }
        if !analysis.cast_sites.is_empty() {
            seen.push("cast-truncation".to_string());
        }
        if !analysis.arith_sites.is_empty() {
            seen.push("int-overflow".to_string());
        }
        if !analysis.index_sites.is_empty() {
            seen.push("slice-index".to_string());
        }
    }
    for case in GRAPH_CASES.iter().filter(|c| c.dirty) {
        let analysis = analyze_graph_case(case);
        for v in &analysis.violations {
            seen.push(v.rule.clone());
        }
        if !analysis.panic_reach.is_empty() {
            seen.push("panic-reachability".to_string());
        }
        if !analysis.dead_api.is_empty() {
            seen.push("dead-pub-api".to_string());
        }
    }
    for rule in ce_analyzer::config::RULE_NAMES {
        assert!(
            seen.iter().any(|s| s == rule),
            "no positive fixture triggers `{rule}`"
        );
    }
}

#[test]
fn serial_and_parallel_analysis_are_identical() {
    // The two-pass scan fans out per file over `ce_parallel::par_map`;
    // its input-order result contract must make the full analysis —
    // violations, findings, witnesses, stats — byte-identical to a
    // serial run on the live workspace.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves");
    let (lib, refs) = scan_workspace(&root).expect("workspace scans");
    let parallel = analyze_workspace(
        &lib,
        &refs,
        CrateGraph::from_root(&root).expect("crate graph builds"),
        &Config::default(),
    );
    let serial = ce_parallel::run_serial(|| {
        analyze_workspace(
            &lib,
            &refs,
            CrateGraph::from_root(&root).expect("crate graph builds"),
            &Config::default(),
        )
    });
    assert_eq!(parallel, serial);
}

#[test]
fn live_workspace_is_clean() {
    // The self-check: the analyzer must pass on the workspace that ships
    // it, with the committed baseline. A regression here means either new
    // code broke an invariant or a rule change needs the codebase (or the
    // baseline) brought along in the same commit.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves");
    let opts = Options {
        baseline_path: root.join("lint-baseline.json"),
        reach_baseline_path: root.join("reach-baseline.json"),
        root,
        format: Format::Json,
        write_baseline: false,
        list_rules: false,
    };
    assert_eq!(
        run(&opts),
        Outcome::Clean,
        "ce-analyzer found violations in the live workspace; run \
         `cargo run -p ce-analyzer` for diagnostics"
    );
}

#[test]
fn live_serve_reactor_is_verified_nonblocking() {
    // Pins the serve crate's resource-discipline posture: the event loop's
    // reactor tick (and its helpers) must stay `ce:nonblocking` so the
    // blocking-reachability rule keeps guarding them, and the crate's
    // entire unsafe surface must remain the two justified scopes in
    // `sys.rs`. If either marker set is deleted, the graph rule would pass
    // vacuously — this test fails instead.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves");
    let event_loop = fs::read_to_string(root.join("crates/serve/src/event.rs")).expect("event.rs");
    let roots = event_loop
        .lines()
        .filter(|l| l.trim() == "// ce:nonblocking")
        .count();
    assert!(
        roots >= 4,
        "expected the reactor tick, completion drain, connection \
         state-machine and deadline sweep to stay ce:nonblocking, found \
         {roots} markers"
    );

    let (lib, refs) = scan_workspace(&root).expect("workspace scans");
    let analysis = analyze_workspace(
        &lib,
        &refs,
        CrateGraph::from_root(&root).expect("crate graph builds"),
        &Config::default(),
    );
    let blocking: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "blocking-in-event-loop")
        .collect();
    assert!(
        blocking.is_empty(),
        "the live event loop reaches a blocking call: {blocking:#?}"
    );
    let unsafe_files: Vec<_> = analysis.unsafe_counts.keys().collect();
    assert_eq!(
        unsafe_files,
        vec!["crates/serve/src/sys.rs"],
        "justified unsafe must stay confined to the poll(2) shim"
    );
    assert_eq!(
        analysis.unsafe_counts["crates/serve/src/sys.rs"].len(),
        2,
        "sys.rs must hold exactly its two audited unsafe scopes \
         (declaration + call site)"
    );
}
