//! The modular battery API (paper §4.2) and the ideal-battery baseline.

/// A dispatchable energy-storage device stepped at hourly resolution.
///
/// All power figures are MW sustained over one hour (numerically equal to
/// MWh of energy). Implementations must uphold:
///
/// - `charge(p)` and `discharge(p)` return the power actually accepted /
///   delivered, never exceeding the request;
/// - state of charge stays within `[min_soc, capacity]` at all times;
/// - `discharge` returns energy *delivered to the load* (after any
///   conversion loss), `charge` accepts energy *drawn from the source*
///   (before any conversion loss).
pub trait BatteryModel {
    /// Nameplate energy capacity, MWh.
    fn capacity_mwh(&self) -> f64;

    /// Current stored energy content, MWh.
    fn soc_mwh(&self) -> f64;

    /// Minimum allowed energy content given the DoD policy, MWh.
    fn min_soc_mwh(&self) -> f64;

    /// Usable capacity under the DoD policy, MWh.
    fn usable_capacity_mwh(&self) -> f64 {
        self.capacity_mwh() - self.min_soc_mwh()
    }

    /// Requests to charge at `power_mw` for one hour; returns the power
    /// actually drawn from the source (limited by C-rate and headroom).
    fn charge(&mut self, power_mw: f64) -> f64;

    /// Requests to discharge at `power_mw` for one hour; returns the power
    /// actually delivered to the load (limited by C-rate and content).
    fn discharge(&mut self, power_mw: f64) -> f64;

    /// Resets the state of charge to `fraction` of capacity (clamped to the
    /// legal range).
    fn reset(&mut self, fraction: f64);

    /// State of charge as a fraction of nameplate capacity.
    fn soc_fraction(&self) -> f64 {
        if self.capacity_mwh() > 0.0 {
            self.soc_mwh() / self.capacity_mwh()
        } else {
            0.0
        }
    }
}

/// A lossless, rate-unlimited battery: the upper bound on what any storage
/// technology could deliver. Useful as a baseline to isolate how much of a
/// result comes from storage *capacity* versus storage *inefficiency*.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealBattery {
    capacity_mwh: f64,
    soc_mwh: f64,
}

impl IdealBattery {
    /// Creates an ideal battery, initially empty.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mwh` is negative.
    pub fn new(capacity_mwh: f64) -> Self {
        assert!(capacity_mwh >= 0.0, "capacity must be non-negative");
        Self {
            capacity_mwh,
            soc_mwh: 0.0,
        }
    }
}

impl BatteryModel for IdealBattery {
    #[inline]
    fn capacity_mwh(&self) -> f64 {
        self.capacity_mwh
    }

    #[inline]
    fn soc_mwh(&self) -> f64 {
        self.soc_mwh
    }

    #[inline]
    fn min_soc_mwh(&self) -> f64 {
        0.0
    }

    #[inline]
    fn charge(&mut self, power_mw: f64) -> f64 {
        let accepted = power_mw.max(0.0).min(self.capacity_mwh - self.soc_mwh);
        self.soc_mwh += accepted;
        accepted
    }

    #[inline]
    fn discharge(&mut self, power_mw: f64) -> f64 {
        let delivered = power_mw.max(0.0).min(self.soc_mwh);
        self.soc_mwh -= delivered;
        delivered
    }

    fn reset(&mut self, fraction: f64) {
        self.soc_mwh = self.capacity_mwh * fraction.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_battery_roundtrips_losslessly() {
        let mut b = IdealBattery::new(10.0);
        assert_eq!(b.charge(6.0), 6.0);
        assert_eq!(b.soc_mwh(), 6.0);
        assert_eq!(b.discharge(6.0), 6.0);
        assert_eq!(b.soc_mwh(), 0.0);
    }

    #[test]
    fn ideal_battery_clamps_at_capacity_and_empty() {
        let mut b = IdealBattery::new(10.0);
        assert_eq!(b.charge(15.0), 10.0);
        assert_eq!(b.charge(1.0), 0.0);
        assert_eq!(b.discharge(25.0), 10.0);
        assert_eq!(b.discharge(1.0), 0.0);
    }

    #[test]
    fn negative_requests_are_ignored() {
        let mut b = IdealBattery::new(10.0);
        assert_eq!(b.charge(-5.0), 0.0);
        assert_eq!(b.discharge(-5.0), 0.0);
        assert_eq!(b.soc_mwh(), 0.0);
    }

    #[test]
    fn reset_clamps_fraction() {
        let mut b = IdealBattery::new(10.0);
        b.reset(0.5);
        assert_eq!(b.soc_mwh(), 5.0);
        b.reset(2.0);
        assert_eq!(b.soc_mwh(), 10.0);
        b.reset(-1.0);
        assert_eq!(b.soc_mwh(), 0.0);
    }

    #[test]
    fn soc_fraction_handles_zero_capacity() {
        let b = IdealBattery::new(0.0);
        assert_eq!(b.soc_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_capacity() {
        IdealBattery::new(-1.0);
    }
}
