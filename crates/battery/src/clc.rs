//! The C/L/C battery model (Kazhamiaka et al. 2019).
//!
//! C/L/C stands for the three phenomena the model captures:
//!
//! - **C**apacity limits: energy content is confined to
//!   `[(1 - DoD) · B, B]` for nameplate capacity `B`;
//! - **L**imits on applied power: charging and discharging power are capped
//!   at a C-rate — a fixed multiple of capacity per hour (the paper uses
//!   1C: full charge or discharge in one hour, matching hourly grid data);
//! - **C**onversion losses: one-way charge/discharge efficiencies, so the
//!   round-trip efficiency is `eta_c · eta_d`.

use crate::api::BatteryModel;
use serde::{Deserialize, Serialize};

/// Parameter set for a [`ClcBattery`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClcParams {
    /// Nameplate energy capacity, MWh.
    pub capacity_mwh: f64,
    /// One-way charging efficiency in `(0, 1]`.
    pub charge_efficiency: f64,
    /// One-way discharging efficiency in `(0, 1]`.
    pub discharge_efficiency: f64,
    /// Maximum charging C-rate (fraction of capacity per hour; 1.0 = 1C).
    pub charge_c_rate: f64,
    /// Maximum discharging C-rate.
    pub discharge_c_rate: f64,
    /// Depth of discharge in `(0, 1]`: the usable fraction of capacity.
    pub depth_of_discharge: f64,
}

impl ClcParams {
    /// LFP (Lithium Iron Phosphate) cell parameters: ~95.5% round-trip
    /// efficiency, 1C charge/discharge (paper §5.1), configurable DoD.
    pub fn lfp(capacity_mwh: f64, depth_of_discharge: f64) -> Self {
        Self {
            capacity_mwh,
            charge_efficiency: 0.977,
            discharge_efficiency: 0.977,
            charge_c_rate: 1.0,
            discharge_c_rate: 1.0,
            depth_of_discharge,
        }
    }

    /// Sodium-ion cell parameters — the emerging lower-impact chemistry the
    /// paper mentions (§4.2): slightly lower efficiency and power density
    /// than LFP.
    pub fn sodium_ion(capacity_mwh: f64, depth_of_discharge: f64) -> Self {
        Self {
            capacity_mwh,
            charge_efficiency: 0.96,
            discharge_efficiency: 0.96,
            charge_c_rate: 0.8,
            discharge_c_rate: 0.8,
            depth_of_discharge,
        }
    }

    /// Checks every field against its documented range, returning the
    /// first violation as a human-readable message.
    // Negated comparisons are deliberate: NaN fails every range test.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn check(&self) -> Result<(), &'static str> {
        if !(self.capacity_mwh >= 0.0) {
            return Err("capacity must be non-negative");
        }
        if !(self.charge_efficiency > 0.0 && self.charge_efficiency <= 1.0) {
            return Err("charge efficiency must be in (0, 1]");
        }
        if !(self.discharge_efficiency > 0.0 && self.discharge_efficiency <= 1.0) {
            return Err("discharge efficiency must be in (0, 1]");
        }
        if !(self.charge_c_rate > 0.0) {
            return Err("charge C-rate must be positive");
        }
        if !(self.discharge_c_rate > 0.0) {
            return Err("discharge C-rate must be positive");
        }
        if !(self.depth_of_discharge > 0.0 && self.depth_of_discharge <= 1.0) {
            return Err("depth of discharge must be in (0, 1]");
        }
        Ok(())
    }
}

/// A stateful battery following the C/L/C model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClcBattery {
    params: ClcParams,
    soc_mwh: f64,
}

impl ClcBattery {
    /// Creates a battery from explicit parameters, initially at the DoD
    /// floor (i.e. "empty" from the dispatcher's point of view).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (see [`ClcParams`] fields).
    pub fn new(params: ClcParams) -> Self {
        if let Err(msg) = params.check() {
            panic!("invalid ClcParams: {msg}");
        }
        let min = params.capacity_mwh * (1.0 - params.depth_of_discharge);
        Self {
            params,
            soc_mwh: min,
        }
    }

    /// Convenience constructor for the LFP preset.
    ///
    /// # Panics
    ///
    /// Panics if `depth_of_discharge` is outside `(0, 1]` or capacity is
    /// negative.
    pub fn lfp(capacity_mwh: f64, depth_of_discharge: f64) -> Self {
        Self::new(ClcParams::lfp(capacity_mwh, depth_of_discharge))
    }

    /// Convenience constructor for the sodium-ion preset.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ClcBattery::lfp`].
    pub fn sodium_ion(capacity_mwh: f64, depth_of_discharge: f64) -> Self {
        Self::new(ClcParams::sodium_ion(capacity_mwh, depth_of_discharge))
    }

    /// The parameter set.
    pub fn params(&self) -> &ClcParams {
        &self.params
    }
}

impl BatteryModel for ClcBattery {
    #[inline]
    fn capacity_mwh(&self) -> f64 {
        self.params.capacity_mwh
    }

    #[inline]
    fn soc_mwh(&self) -> f64 {
        self.soc_mwh
    }

    #[inline]
    fn min_soc_mwh(&self) -> f64 {
        self.params.capacity_mwh * (1.0 - self.params.depth_of_discharge)
    }

    #[inline]
    fn charge(&mut self, power_mw: f64) -> f64 {
        // ce:allow(float-eq, reason = "a zero-capacity battery is an exact sentinel (the no-battery strategy arm), not a computed value")
        if power_mw <= 0.0 || self.params.capacity_mwh == 0.0 {
            return 0.0;
        }
        // Power limit (C-rate), then headroom limit accounting for the
        // charge efficiency: drawing E from the source stores eta_c * E.
        let rate_cap = self.params.charge_c_rate * self.params.capacity_mwh;
        let headroom = self.params.capacity_mwh - self.soc_mwh;
        if headroom <= 0.0 {
            // Pegged full: the general path would compute
            // `min(power, rate_cap, 0.0) = 0.0` and leave the state
            // untouched. Returning early skips the division below — the
            // dominant latency on the state-of-charge dependency chain in
            // year-long dispatch loops, where full batteries are the
            // common case during surplus seasons.
            return 0.0;
        }
        let draw_cap = headroom / self.params.charge_efficiency;
        let accepted = power_mw.min(rate_cap).min(draw_cap);
        self.soc_mwh += accepted * self.params.charge_efficiency;
        // Guard against fp drift.
        self.soc_mwh = self.soc_mwh.min(self.params.capacity_mwh);
        accepted
    }

    #[inline]
    fn discharge(&mut self, power_mw: f64) -> f64 {
        // ce:allow(float-eq, reason = "a zero-capacity battery is an exact sentinel (the no-battery strategy arm), not a computed value")
        if power_mw <= 0.0 || self.params.capacity_mwh == 0.0 {
            return 0.0;
        }
        // Delivering E to the load drains E / eta_d of content.
        let rate_cap = self.params.discharge_c_rate * self.params.capacity_mwh;
        let available = (self.soc_mwh - self.min_soc_mwh()).max(0.0);
        if available <= 0.0 {
            // Pegged empty: the general path delivers exactly 0.0 and
            // leaves the state untouched; returning early skips the
            // `delivered / efficiency` division, the common case during
            // sustained deficit streaks.
            return 0.0;
        }
        let deliver_cap = available * self.params.discharge_efficiency;
        let delivered = power_mw.min(rate_cap).min(deliver_cap);
        self.soc_mwh -= delivered / self.params.discharge_efficiency;
        self.soc_mwh = self.soc_mwh.max(self.min_soc_mwh());
        delivered
    }

    fn reset(&mut self, fraction: f64) {
        let target = self.params.capacity_mwh * fraction.clamp(0.0, 1.0);
        self.soc_mwh = target.clamp(self.min_soc_mwh(), self.params.capacity_mwh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_respects_efficiency() {
        let mut b = ClcBattery::lfp(100.0, 1.0);
        let accepted = b.charge(10.0);
        assert_eq!(accepted, 10.0);
        assert!((b.soc_mwh() - 10.0 * 0.977).abs() < 1e-12);
    }

    #[test]
    fn discharging_respects_efficiency() {
        let mut b = ClcBattery::lfp(100.0, 1.0);
        b.reset(1.0);
        let delivered = b.discharge(10.0);
        assert_eq!(delivered, 10.0);
        assert!((b.soc_mwh() - (100.0 - 10.0 / 0.977)).abs() < 1e-9);
    }

    #[test]
    fn round_trip_efficiency_is_product_of_one_way() {
        let mut b = ClcBattery::lfp(1000.0, 1.0);
        let put_in = b.charge(100.0);
        let mut got_out = 0.0;
        loop {
            let d = b.discharge(1000.0);
            if d <= 0.0 {
                break;
            }
            got_out += d;
        }
        let round_trip = got_out / put_in;
        assert!((round_trip - 0.977 * 0.977).abs() < 1e-9, "{round_trip}");
    }

    #[test]
    fn c_rate_limits_power() {
        // 1C battery of 50 MWh: at most 50 MW in or out per hour.
        let mut b = ClcBattery::lfp(50.0, 1.0);
        assert_eq!(b.charge(200.0), 50.0);
        b.reset(1.0);
        // Delivered power is content-limited by the discharge efficiency
        // even at the C-rate cap: 50 MWh of content yields 50 * eta_d MW.
        assert!((b.discharge(200.0) - 50.0 * 0.977).abs() < 1e-9);
        // Sodium-ion preset is 0.8C.
        let mut na = ClcBattery::sodium_ion(50.0, 1.0);
        assert_eq!(na.charge(200.0), 40.0);
    }

    #[test]
    fn dod_floor_is_enforced() {
        let mut b = ClcBattery::lfp(100.0, 0.8);
        assert!((b.min_soc_mwh() - 20.0).abs() < 1e-9);
        assert!((b.usable_capacity_mwh() - 80.0).abs() < 1e-9);
        // Fresh battery starts at the floor: nothing to discharge.
        assert_eq!(b.discharge(10.0), 0.0);
        b.reset(1.0);
        let mut total = 0.0;
        loop {
            let d = b.discharge(100.0);
            if d <= 0.0 {
                break;
            }
            total += d;
        }
        // Only the usable 80 MWh (times discharge efficiency) comes out.
        assert!((total - 80.0 * 0.977).abs() < 1e-9);
        assert!((b.soc_mwh() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn soc_never_exceeds_capacity() {
        let mut b = ClcBattery::lfp(10.0, 1.0);
        for _ in 0..100 {
            b.charge(10.0);
        }
        assert!(b.soc_mwh() <= 10.0);
        assert!(b.charge(1.0) < 1e-9);
    }

    #[test]
    fn reset_respects_dod_floor() {
        let mut b = ClcBattery::lfp(100.0, 0.8);
        b.reset(0.0);
        assert!((b.soc_mwh() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_battery_is_inert() {
        let mut b = ClcBattery::lfp(0.0, 1.0);
        assert_eq!(b.charge(5.0), 0.0);
        assert_eq!(b.discharge(5.0), 0.0);
        assert_eq!(b.soc_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "depth of discharge")]
    fn rejects_zero_dod() {
        ClcBattery::lfp(10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "charge efficiency")]
    fn rejects_bad_efficiency() {
        ClcBattery::new(ClcParams {
            charge_efficiency: 1.5,
            ..ClcParams::lfp(10.0, 1.0)
        });
    }

    #[test]
    fn trait_object_usable() {
        // The "simple API" requirement: dispatch code can hold any model.
        let mut models: Vec<Box<dyn BatteryModel>> = vec![
            Box::new(ClcBattery::lfp(10.0, 1.0)),
            Box::new(ClcBattery::sodium_ion(10.0, 0.8)),
            Box::new(crate::api::IdealBattery::new(10.0)),
        ];
        for m in &mut models {
            m.reset(1.0);
            assert!(m.discharge(1.0) > 0.0);
        }
    }
}
