//! Battery capacity fade over multi-year operation.
//!
//! The paper sizes batteries for a single representative year; over a
//! deployment's life, lithium-ion cells fade — industry convention
//! retires a cell at 80% of nameplate ("end of life"), which is exactly
//! what the cycle-life ratings in [`crate::lifetime`] count down to.
//! This module models the fade trajectory so multi-year studies can ask:
//! *how much coverage does year 8 lose to a faded battery?*

use crate::clc::{ClcBattery, ClcParams};
use serde::{Deserialize, Serialize};

/// Fraction of nameplate capacity remaining at end of life.
pub const END_OF_LIFE_FRACTION: f64 = 0.8;

/// A battery's aging state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationState {
    /// Equivalent full cycles performed so far.
    pub cycles_done: f64,
    /// Depth-of-discharge policy (drives the rated cycle life).
    pub dod: f64,
}

impl DegradationState {
    /// A fresh battery.
    ///
    /// # Panics
    ///
    /// Panics if `dod` is outside `(0, 1]`.
    pub fn fresh(dod: f64) -> Self {
        assert!(dod > 0.0 && dod <= 1.0, "DoD must be in (0, 1]");
        Self {
            cycles_done: 0.0,
            dod,
        }
    }

    /// Rated cycle life at this DoD.
    pub fn rated_cycles(&self) -> f64 {
        crate::lifetime::cycle_life(self.dod)
    }

    /// Remaining capacity as a fraction of nameplate: linear fade from
    /// 1.0 (fresh) to [`END_OF_LIFE_FRACTION`] at the rated cycle count,
    /// continuing linearly (floored at 50%) if operated past end of life.
    pub fn capacity_fraction(&self) -> f64 {
        let wear = self.cycles_done / self.rated_cycles();
        (1.0 - wear * (1.0 - END_OF_LIFE_FRACTION)).max(0.5)
    }

    /// `true` once the battery has faded to its end-of-life capacity.
    pub fn is_end_of_life(&self) -> bool {
        self.cycles_done >= self.rated_cycles()
    }

    /// Records additional equivalent full cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative.
    pub fn record_cycles(&mut self, cycles: f64) {
        assert!(cycles >= 0.0, "cycle count must be non-negative");
        self.cycles_done += cycles;
    }

    /// Builds the C/L/C battery this aged cell behaves as: same
    /// efficiencies and C-rates, faded capacity.
    pub fn aged_battery(&self, nameplate_mwh: f64) -> ClcBattery {
        let params = ClcParams::lfp(nameplate_mwh * self.capacity_fraction(), self.dod);
        ClcBattery::new(params)
    }
}

/// Simulates `years` of annual dispatch with capacity fade applied
/// between years: each year runs [`crate::simulate_dispatch`] on a
/// battery faded by the cycles of all previous years, against the same
/// demand/supply year (the paper's representative-year convention).
///
/// Returns per-year `(capacity_fraction, unmet_mwh, cycles)` tuples.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn simulate_fleet_aging(
    nameplate_mwh: f64,
    dod: f64,
    demand: &ce_timeseries::HourlySeries,
    supply: &ce_timeseries::HourlySeries,
    years: usize,
) -> Result<Vec<(f64, f64, f64)>, ce_timeseries::TimeSeriesError> {
    let mut state = DegradationState::fresh(dod);
    let mut results = Vec::with_capacity(years);
    for _ in 0..years {
        let mut battery = state.aged_battery(nameplate_mwh);
        let dispatch = crate::simulate::simulate_dispatch(&mut battery, demand, supply)?;
        results.push((
            state.capacity_fraction(),
            dispatch.unmet.sum(),
            dispatch.equivalent_cycles,
        ));
        state.record_cycles(dispatch.equivalent_cycles);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::{HourlySeries, Timestamp};

    #[test]
    fn fresh_battery_is_full_capacity() {
        let state = DegradationState::fresh(1.0);
        assert_eq!(state.capacity_fraction(), 1.0);
        assert!(!state.is_end_of_life());
    }

    #[test]
    fn fade_reaches_eighty_percent_at_rated_cycles() {
        let mut state = DegradationState::fresh(1.0);
        state.record_cycles(3000.0);
        assert!((state.capacity_fraction() - 0.8).abs() < 1e-12);
        assert!(state.is_end_of_life());
        // Halfway there: 90%.
        let mut half = DegradationState::fresh(1.0);
        half.record_cycles(1500.0);
        assert!((half.capacity_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn shallow_dod_fades_slower_per_cycle() {
        let mut deep = DegradationState::fresh(1.0);
        let mut shallow = DegradationState::fresh(0.8);
        deep.record_cycles(1000.0);
        shallow.record_cycles(1000.0);
        assert!(shallow.capacity_fraction() > deep.capacity_fraction());
    }

    #[test]
    fn fade_floors_at_half_capacity() {
        let mut state = DegradationState::fresh(1.0);
        state.record_cycles(100_000.0);
        assert_eq!(state.capacity_fraction(), 0.5);
    }

    #[test]
    fn aged_battery_has_faded_capacity() {
        use crate::api::BatteryModel as _;
        let mut state = DegradationState::fresh(1.0);
        state.record_cycles(3000.0);
        let battery = state.aged_battery(100.0);
        assert!((battery.capacity_mwh() - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_cycles() {
        DegradationState::fresh(1.0).record_cycles(-1.0);
    }

    #[test]
    fn multi_year_simulation_degrades_service() {
        // Daily full cycling: supply surplus by day, deficit by night.
        let start = Timestamp::start_of_year(2020);
        let demand = HourlySeries::constant(start, 8784, 10.0);
        let supply = HourlySeries::from_fn(start, 8784, |h| {
            if (6..18).contains(&(h % 24)) {
                25.0
            } else {
                0.0
            }
        });
        let years = simulate_fleet_aging(130.0, 1.0, &demand, &supply, 10).unwrap();
        assert_eq!(years.len(), 10);
        // Capacity monotonically fades...
        for pair in years.windows(2) {
            assert!(pair[1].0 <= pair[0].0 + 1e-12);
        }
        // ...and unmet energy can only grow as the battery shrinks.
        assert!(years.last().unwrap().1 >= years.first().unwrap().1 - 1e-6);
        // With ~300 cycles/year, year 10 is meaningfully faded.
        assert!(years.last().unwrap().0 < 0.95);
    }
}
