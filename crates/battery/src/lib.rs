//! The C/L/C lithium-ion battery model and year-long dispatch simulation.
//!
//! Carbon Explorer models on-site energy storage with the C/L/C model of
//! Kazhamiaka, Rosenberg & Keshav (Energy Informatics 2019): explicit
//! energy-content limits, charge/discharge efficiency losses, power limits
//! linear in battery capacity (C-rates), and a depth-of-discharge (DoD)
//! control. Parameters here are tuned to Lithium Iron Phosphate (LFP)
//! cells, the chemistry common in large stationary storage, exactly as the
//! paper does (§4.2).
//!
//! The paper stresses that the framework "is designed to include a modular
//! battery model that supports different storage technologies to be added
//! through a simple API" — that API is the [`BatteryModel`] trait;
//! [`ClcBattery`] (LFP and sodium-ion presets) and the lossless
//! [`IdealBattery`] baseline implement it.
//!
//! # Example
//!
//! ```
//! use ce_battery::{BatteryModel, ClcBattery};
//!
//! // A 40 MWh LFP battery at 100% DoD ("2 hours" for a 20 MW datacenter).
//! let mut battery = ClcBattery::lfp(40.0, 1.0);
//! let accepted = battery.charge(30.0);    // charge with 30 MW for 1 h
//! assert!(accepted > 0.0);
//! let delivered = battery.discharge(10.0); // cover a 10 MW deficit
//! assert!(delivered <= 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod clc;
pub mod degradation;
pub mod lifetime;
pub mod policy;
pub mod simulate;

pub use api::{BatteryModel, IdealBattery};
pub use clc::{ClcBattery, ClcParams};
pub use degradation::{simulate_fleet_aging, DegradationState};
pub use lifetime::{cycle_life, lifetime_years, lifetime_years_capped};
pub use policy::{
    dispatch_with_policy, DispatchPolicy, GreedyPolicy, PeakShavingPolicy, ThresholdPolicy,
};
pub use simulate::{simulate_dispatch, simulate_dispatch_stats, DispatchResult, DispatchStats};
