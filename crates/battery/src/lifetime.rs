//! Cycle-life and lifetime modeling for LFP batteries (paper §5.1).
//!
//! The paper cites PowerTech's LFP data: 3000 cycles at 100% DoD, 4500 at
//! 80%, and 10,000 at 60% (which it converts to "a 27-year battery
//! lifespan" at one cycle per day). Cycle life between those anchors is
//! interpolated; outside them it is clamped.

/// Known (DoD, cycle-life) anchors for LFP cells, deepest discharge first.
const LFP_ANCHORS: [(f64, f64); 3] = [(1.0, 3000.0), (0.8, 4500.0), (0.6, 10_000.0)];

/// Expected number of full charge/discharge cycles an LFP battery endures
/// at depth of discharge `dod` (fraction in `(0, 1]`).
///
/// # Panics
///
/// Panics if `dod` is not in `(0, 1]`.
///
/// ```
/// assert_eq!(ce_battery::cycle_life(1.0), 3000.0);
/// assert_eq!(ce_battery::cycle_life(0.8), 4500.0);
/// assert_eq!(ce_battery::cycle_life(0.6), 10_000.0);
/// ```
pub fn cycle_life(dod: f64) -> f64 {
    assert!(dod > 0.0 && dod <= 1.0, "DoD must be in (0, 1]");
    if dod >= LFP_ANCHORS[0].0 {
        return LFP_ANCHORS[0].1;
    }
    if dod <= LFP_ANCHORS[LFP_ANCHORS.len() - 1].0 {
        return LFP_ANCHORS[LFP_ANCHORS.len() - 1].1;
    }
    for pair in LFP_ANCHORS.windows(2) {
        let (hi_dod, hi_cycles) = pair[0];
        let (lo_dod, lo_cycles) = pair[1];
        if dod <= hi_dod && dod >= lo_dod {
            let t = (hi_dod - dod) / (hi_dod - lo_dod);
            return hi_cycles + t * (lo_cycles - hi_cycles);
        }
    }
    unreachable!("anchors cover (0.6, 1.0)");
}

/// Battery lifetime in years given a DoD policy and the number of
/// equivalent full cycles the dispatch pattern performs per year.
///
/// Returns `f64::INFINITY` for a battery that never cycles. Real
/// deployments cap out on calendar aging long before the 27-year figure
/// the cycle math produces at 60% DoD — callers that care should clamp
/// with [`lifetime_years_capped`].
pub fn lifetime_years(dod: f64, cycles_per_year: f64) -> f64 {
    assert!(
        cycles_per_year >= 0.0,
        "cycles per year must be non-negative"
    );
    // ce:allow(float-eq, reason = "exactly zero cycles means the battery never dispatches; lifetime is genuinely unbounded")
    if cycles_per_year == 0.0 {
        return f64::INFINITY;
    }
    cycle_life(dod) / cycles_per_year
}

/// [`lifetime_years`] clamped to a calendar-aging cap (the paper: "other
/// degradation factors would come in to play before reaching the 27-year
/// lifespan"). The default cap used by Carbon Explorer is 15 years.
pub fn lifetime_years_capped(dod: f64, cycles_per_year: f64, cap_years: f64) -> f64 {
    lifetime_years(dod, cycles_per_year).min(cap_years)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_points_match_paper() {
        assert_eq!(cycle_life(1.0), 3000.0);
        assert_eq!(cycle_life(0.8), 4500.0);
        assert_eq!(cycle_life(0.6), 10_000.0);
    }

    #[test]
    fn eighty_percent_dod_is_fifty_percent_more_cycles() {
        // Paper: "The lower DoD of 80% increases battery lifespan and the
        // number of (dis)charge cycles by 50%."
        assert!((cycle_life(0.8) / cycle_life(1.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone_decreasing_in_dod() {
        let mut prev = f64::INFINITY;
        let mut dod = 0.5;
        while dod <= 1.0 {
            let c = cycle_life(dod);
            assert!(c <= prev + 1e-9, "cycle life must fall as DoD deepens");
            prev = c;
            dod += 0.01;
        }
    }

    #[test]
    fn shallow_dod_clamps_to_deepest_anchor() {
        assert_eq!(cycle_life(0.3), 10_000.0);
        assert_eq!(cycle_life(0.6), 10_000.0);
    }

    #[test]
    #[should_panic(expected = "DoD")]
    fn rejects_zero_dod() {
        cycle_life(0.0);
    }

    #[test]
    fn daily_cycling_lifetimes_match_paper() {
        // One full cycle per day at 60% DoD → 10000/365 ≈ 27 years.
        let years = lifetime_years(0.6, 365.0);
        assert!((26.0..29.0).contains(&years), "{years}");
        // At 100% DoD → 3000/365 ≈ 8.2 years.
        let years = lifetime_years(1.0, 365.0);
        assert!((7.5..9.0).contains(&years), "{years}");
    }

    #[test]
    fn capped_lifetime() {
        assert_eq!(lifetime_years_capped(0.6, 365.0, 15.0), 15.0);
        assert!(lifetime_years_capped(1.0, 365.0, 15.0) < 15.0);
        assert_eq!(lifetime_years_capped(1.0, 0.0, 15.0), 15.0);
    }

    #[test]
    fn idle_battery_lives_forever_uncapped() {
        assert_eq!(lifetime_years(0.8, 0.0), f64::INFINITY);
    }
}
