//! Charge/discharge dispatch policies beyond the paper's greedy default.
//!
//! The discussion section notes that datacenters "may wish to implement
//! custom battery charge-discharge policies". A policy decides, given the
//! hour's renewable balance and an optional carbon-intensity signal, how
//! hard to charge or discharge. Three are provided:
//!
//! - [`GreedyPolicy`] — the paper's behaviour: charge every surplus watt,
//!   discharge for every deficit watt (maximize renewable utilization);
//! - [`ThresholdPolicy`] — discharge only when the grid is dirtier than a
//!   threshold, preserving stored energy for the worst hours;
//! - [`PeakShavingPolicy`] — classic datacenter UPS economics: discharge
//!   only when demand exceeds a power cap, charge only below it.

use crate::api::BatteryModel;
use ce_timeseries::{HourlySeries, TimeSeriesError};

/// An hourly charge/discharge decision rule.
///
/// `surplus` is renewable supply minus demand for the hour (negative =
/// deficit), `intensity` the grid's carbon intensity (t/MWh). Returns the
/// power (MW) to *request* from the battery: positive = discharge toward
/// the load, negative = charge from the surplus. The dispatch loop clamps
/// the request against what is physically available.
pub trait DispatchPolicy {
    /// The request for one hour.
    fn request(&self, surplus: f64, intensity: f64, demand: f64) -> f64;
}

/// The paper's default: absorb all surplus, cover all deficit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyPolicy;

impl DispatchPolicy for GreedyPolicy {
    fn request(&self, surplus: f64, _intensity: f64, _demand: f64) -> f64 {
        -surplus
    }
}

/// Discharges only when grid carbon intensity exceeds `threshold_t_per_mwh`;
/// always charges on surplus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPolicy {
    /// Grid intensity above which stored energy is worth spending, t/MWh.
    pub threshold_t_per_mwh: f64,
}

impl DispatchPolicy for ThresholdPolicy {
    fn request(&self, surplus: f64, intensity: f64, _demand: f64) -> f64 {
        // Charge on any surplus; on deficit, spend stored energy only when
        // the grid is dirtier than the threshold.
        if surplus >= 0.0 || intensity >= self.threshold_t_per_mwh {
            -surplus
        } else {
            0.0
        }
    }
}

/// Discharges only to keep grid draw under `cap_mw`; charges with any
/// surplus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakShavingPolicy {
    /// Maximum tolerated grid draw, MW.
    pub cap_mw: f64,
}

impl DispatchPolicy for PeakShavingPolicy {
    fn request(&self, surplus: f64, _intensity: f64, _demand: f64) -> f64 {
        if surplus >= 0.0 {
            -surplus
        } else {
            // Grid draw without battery = -surplus; shave the excess.
            (-surplus - self.cap_mw).max(0.0)
        }
    }
}

/// Outcome of a policy-driven dispatch run.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDispatchResult {
    /// Grid energy drawn per hour, MW.
    pub grid_draw: HourlySeries,
    /// Operational carbon of the grid draw, tons CO2.
    pub operational_tons: f64,
    /// Equivalent full cycles performed.
    pub equivalent_cycles: f64,
    /// Peak grid draw over the run, MW.
    pub peak_grid_draw_mw: f64,
}

/// Dispatches `battery` under `policy` against demand/supply and the grid
/// intensity signal. The battery starts full.
///
/// # Errors
///
/// Returns an alignment error if any series is misaligned.
pub fn dispatch_with_policy(
    battery: &mut dyn BatteryModel,
    policy: &dyn DispatchPolicy,
    demand: &HourlySeries,
    supply: &HourlySeries,
    intensity: &HourlySeries,
) -> Result<PolicyDispatchResult, TimeSeriesError> {
    demand.check_aligned(supply)?;
    demand.check_aligned(intensity)?;
    battery.reset(1.0);

    let mut grid = Vec::with_capacity(demand.len());
    let mut operational = 0.0;
    let mut discharged = 0.0;

    for h in 0..demand.len() {
        let surplus = supply[h] - demand[h];
        let request = policy.request(surplus, intensity[h], demand[h]);
        let mut draw = (-surplus).max(0.0); // grid draw before the battery
        if request > 0.0 {
            // Discharge toward the load (never beyond the actual deficit).
            let delivered = battery.discharge(request.min(draw));
            discharged += delivered;
            draw -= delivered;
        } else if request < 0.0 && surplus > 0.0 {
            // Charge from surplus (never more than is actually spare).
            battery.charge((-request).min(surplus));
        }
        operational += draw * intensity[h];
        grid.push(draw);
    }

    let usable = battery.usable_capacity_mwh();
    let grid_draw = HourlySeries::from_values(demand.start(), grid);
    Ok(PolicyDispatchResult {
        peak_grid_draw_mw: grid_draw.max().unwrap_or(0.0),
        operational_tons: operational,
        equivalent_cycles: if usable > 0.0 {
            discharged / usable
        } else {
            0.0
        },
        grid_draw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::IdealBattery;
    use crate::clc::ClcBattery;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn scenario() -> (HourlySeries, HourlySeries, HourlySeries) {
        // Alternating surplus/deficit with alternating dirty/clean grid.
        let demand = HourlySeries::constant(start(), 8, 10.0);
        let supply =
            HourlySeries::from_values(start(), vec![20.0, 0.0, 20.0, 0.0, 20.0, 5.0, 20.0, 5.0]);
        let intensity =
            HourlySeries::from_values(start(), vec![0.2, 0.8, 0.2, 0.1, 0.2, 0.9, 0.2, 0.1]);
        (demand, supply, intensity)
    }

    #[test]
    fn greedy_policy_matches_simulate_dispatch() {
        let (demand, supply, intensity) = scenario();
        let mut a = ClcBattery::lfp(15.0, 1.0);
        let policy_result =
            dispatch_with_policy(&mut a, &GreedyPolicy, &demand, &supply, &intensity).unwrap();
        let mut b = ClcBattery::lfp(15.0, 1.0);
        let direct = crate::simulate::simulate_dispatch(&mut b, &demand, &supply).unwrap();
        assert_eq!(policy_result.grid_draw, direct.unmet);
        assert!((policy_result.equivalent_cycles - direct.equivalent_cycles).abs() < 1e-9);
    }

    #[test]
    fn threshold_policy_saves_scarce_energy_for_dirty_hours() {
        // One battery-full of energy, then a clean deficit followed by a
        // dirty one: greedy spends the battery on the clean hour and eats
        // the dirty one from the grid; the threshold policy waits.
        let demand = HourlySeries::constant(start(), 3, 10.0);
        let supply = HourlySeries::from_values(start(), vec![20.0, 0.0, 0.0]);
        let intensity = HourlySeries::from_values(start(), vec![0.2, 0.1, 0.9]);
        let mut greedy_batt = IdealBattery::new(10.0);
        let greedy = dispatch_with_policy(
            &mut greedy_batt,
            &GreedyPolicy,
            &demand,
            &supply,
            &intensity,
        )
        .unwrap();
        let mut thresh_batt = IdealBattery::new(10.0);
        let thresh = dispatch_with_policy(
            &mut thresh_batt,
            &ThresholdPolicy {
                threshold_t_per_mwh: 0.5,
            },
            &demand,
            &supply,
            &intensity,
        )
        .unwrap();
        // Greedy: clean hour covered, dirty hour on the grid (9 t).
        // Threshold: clean hour on the grid (1 t), dirty hour covered.
        assert!((greedy.operational_tons - 9.0).abs() < 1e-9);
        assert!((thresh.operational_tons - 1.0).abs() < 1e-9);
        // Both draw the same total grid energy, just at different hours.
        assert!((thresh.grid_draw.sum() - greedy.grid_draw.sum()).abs() < 1e-9);
    }

    #[test]
    fn peak_shaving_caps_grid_draw() {
        let (demand, supply, intensity) = scenario();
        let mut battery = IdealBattery::new(50.0);
        let result = dispatch_with_policy(
            &mut battery,
            &PeakShavingPolicy { cap_mw: 4.0 },
            &demand,
            &supply,
            &intensity,
        )
        .unwrap();
        assert!(result.peak_grid_draw_mw <= 4.0 + 1e-9);
    }

    #[test]
    fn peak_shaving_runs_out_of_stored_energy_gracefully() {
        let demand = HourlySeries::constant(start(), 6, 10.0);
        let supply = HourlySeries::zeros(start(), 6);
        let intensity = HourlySeries::constant(start(), 6, 0.5);
        let mut battery = IdealBattery::new(12.0);
        let result = dispatch_with_policy(
            &mut battery,
            &PeakShavingPolicy { cap_mw: 6.0 },
            &demand,
            &supply,
            &intensity,
        )
        .unwrap();
        // 4 MW shaved for 3 hours drains the 12 MWh battery; afterwards
        // the full 10 MW hits the grid.
        assert!((result.grid_draw[0] - 6.0).abs() < 1e-9);
        assert!((result.grid_draw[5] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn DispatchPolicy>> = vec![
            Box::new(GreedyPolicy),
            Box::new(ThresholdPolicy {
                threshold_t_per_mwh: 0.4,
            }),
            Box::new(PeakShavingPolicy { cap_mw: 5.0 }),
        ];
        for p in &policies {
            let _ = p.request(-3.0, 0.5, 10.0);
        }
    }

    #[test]
    fn misaligned_series_error() {
        let demand = HourlySeries::zeros(start(), 2);
        let supply = HourlySeries::zeros(start(), 3);
        let mut battery = IdealBattery::new(1.0);
        assert!(
            dispatch_with_policy(&mut battery, &GreedyPolicy, &demand, &supply, &demand).is_err()
        );
    }
}
