//! Year-long battery dispatch against a demand/supply pair (paper §4.2):
//! charge on renewable surplus, discharge on renewable deficit.

use crate::api::BatteryModel;
use ce_timeseries::kernels::COVERED_EPSILON_MWH;
use ce_timeseries::stats::Histogram;
use ce_timeseries::{DeficitStats, HourlySeries, TimeSeriesError};

/// The outcome of dispatching a battery over a demand/supply pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchResult {
    /// Demand not covered by renewables or battery (MW per hour) — this is
    /// what must come from the (carbon-intensive) grid.
    pub unmet: HourlySeries,
    /// Power served from the battery each hour, MW.
    pub battery_supplied: HourlySeries,
    /// Renewable surplus left over after charging, MW (curtailed).
    pub curtailed: HourlySeries,
    /// Battery state of charge at the *end* of each hour, MWh.
    pub soc: HourlySeries,
    /// Total energy delivered by the battery over the run, MWh.
    pub total_discharged_mwh: f64,
    /// Equivalent full cycles performed (energy discharged ÷ usable
    /// capacity); 0 for a zero-capacity battery.
    pub equivalent_cycles: f64,
}

impl DispatchResult {
    /// Distribution of the battery's state of charge (as a fraction of
    /// nameplate capacity) across the run — the paper's Figure 16.
    ///
    /// # Errors
    ///
    /// Returns an error if `bins` is zero.
    pub fn charge_level_histogram(
        &self,
        capacity_mwh: f64,
        bins: usize,
    ) -> Result<Histogram, TimeSeriesError> {
        let fractions: Vec<f64> = if capacity_mwh > 0.0 {
            self.soc
                .values()
                .iter()
                .map(|&s| s / capacity_mwh)
                .collect()
        } else {
            vec![0.0; self.soc.len()]
        };
        Histogram::new(&fractions, 0.0, 1.0 + 1e-9, bins)
    }
}

/// Simulates hour-by-hour dispatch of `battery` against a datacenter
/// `demand` and renewable `supply` (both MW): surplus hours charge the
/// battery, deficit hours discharge it.
///
/// The battery is reset to full before the run, modeling a commissioning
/// charge; the paper's dispatch "maximizes the battery usage to avoid
/// carbon-intensive energy", which this greedy policy implements exactly.
///
/// # Errors
///
/// Returns an alignment error if `demand` and `supply` are misaligned.
pub fn simulate_dispatch(
    battery: &mut dyn BatteryModel,
    demand: &HourlySeries,
    supply: &HourlySeries,
) -> Result<DispatchResult, TimeSeriesError> {
    demand.check_aligned(supply)?;
    battery.reset(1.0);

    let len = demand.len();
    let start = demand.start();
    let mut unmet = Vec::with_capacity(len);
    let mut supplied = Vec::with_capacity(len);
    let mut curtailed = Vec::with_capacity(len);
    let mut soc = Vec::with_capacity(len);
    let mut total_discharged = 0.0;

    for h in 0..len {
        let d = demand[h];
        let s = supply[h];
        if s >= d {
            // Surplus: charge with the excess, curtail the rest.
            let surplus = s - d;
            let accepted = battery.charge(surplus);
            unmet.push(0.0);
            supplied.push(0.0);
            curtailed.push(surplus - accepted);
        } else {
            // Deficit: discharge to cover as much as possible.
            let deficit = d - s;
            let delivered = battery.discharge(deficit);
            total_discharged += delivered;
            unmet.push(deficit - delivered);
            supplied.push(delivered);
            curtailed.push(0.0);
        }
        soc.push(battery.soc_mwh());
    }

    let usable = battery.usable_capacity_mwh();
    let equivalent_cycles = if usable > 0.0 {
        total_discharged / usable
    } else {
        0.0
    };

    Ok(DispatchResult {
        unmet: HourlySeries::from_values(start, unmet),
        battery_supplied: HourlySeries::from_values(start, supplied),
        curtailed: HourlySeries::from_values(start, curtailed),
        soc: HourlySeries::from_values(start, soc),
        total_discharged_mwh: total_discharged,
        equivalent_cycles,
    })
}

/// The sweep-relevant aggregates of a battery dispatch run, produced
/// without materializing any per-hour series.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct DispatchStats {
    /// Unmet energy and fully-covered hour count of the dispatch's grid
    /// draw (`u ≤ ce_timeseries::kernels::COVERED_EPSILON_MWH` counts as
    /// covered).
    pub deficit: DeficitStats,
    /// Weighted grid draw `Σ unmet[h] · weight[h]` — operational carbon in
    /// tons when `weight` is the hourly grid carbon intensity (t/MWh).
    pub unmet_dot: f64,
    /// Total energy delivered by the battery over the run, MWh.
    pub total_discharged_mwh: f64,
    /// Equivalent full cycles performed (energy discharged ÷ usable
    /// capacity); 0 for a zero-capacity battery.
    pub equivalent_cycles: f64,
}

/// Streaming variant of [`simulate_dispatch`]: steps the same greedy
/// charge-on-surplus / discharge-on-deficit policy hour by hour, but folds
/// the outputs into [`DispatchStats`] on the fly instead of materializing
/// the four year-long `unmet`/`battery_supplied`/`curtailed`/`soc` series.
/// This is the design-sweep hot path — it performs **zero heap
/// allocations**.
///
/// Every accumulator folds in hour order, exactly as reducing
/// [`simulate_dispatch`]'s `unmet` series afterwards would, so the results
/// are bitwise-identical to the materializing path:
/// `deficit.unmet_mwh == unmet.sum()`, `unmet_dot == unmet.dot(weight)`,
/// and the cycle accounting matches field for field.
///
/// The function is generic so concrete battery models are monomorphized
/// (no virtual dispatch in the inner loop); `&mut dyn BatteryModel` still
/// works for callers that need dynamic dispatch.
///
/// # Errors
///
/// Returns an alignment error if `demand`, `supply`, and `weight` are not
/// mutually aligned.
// ce:hot
pub fn simulate_dispatch_stats<B: BatteryModel + ?Sized>(
    battery: &mut B,
    demand: &HourlySeries,
    supply: &HourlySeries,
    weight: &HourlySeries,
) -> Result<DispatchStats, TimeSeriesError> {
    demand.check_aligned(supply)?;
    demand.check_aligned(weight)?;
    battery.reset(1.0);

    let mut unmet_mwh = 0.0;
    let mut covered_hours = 0usize;
    let mut unmet_dot = 0.0;
    let mut total_discharged = 0.0;

    // Zipped slice iterators: no per-hour bounds checks, same hour order
    // and float-op order as indexed traversal.
    let hours = demand
        .values()
        .iter()
        .zip(supply.values())
        .zip(weight.values());
    for ((&d, &s), &wh) in hours {
        let u = if s >= d {
            battery.charge(s - d);
            0.0
        } else {
            let deficit = d - s;
            let delivered = battery.discharge(deficit);
            total_discharged += delivered;
            deficit - delivered
        };
        unmet_mwh += u;
        if u <= COVERED_EPSILON_MWH {
            covered_hours += 1;
        }
        unmet_dot += u * wh;
    }

    let usable = battery.usable_capacity_mwh();
    Ok(DispatchStats {
        deficit: DeficitStats {
            unmet_mwh,
            covered_hours,
        },
        unmet_dot,
        total_discharged_mwh: total_discharged,
        equivalent_cycles: if usable > 0.0 {
            total_discharged / usable
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::IdealBattery;
    use crate::clc::ClcBattery;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn surplus_charges_deficit_discharges() {
        let demand = HourlySeries::constant(start(), 4, 10.0);
        let supply = HourlySeries::from_values(start(), vec![20.0, 0.0, 20.0, 0.0]);
        // simulate_dispatch resets to full; use a small battery to see flow.
        let mut battery = IdealBattery::new(5.0);
        let r = simulate_dispatch(&mut battery, &demand, &supply).unwrap();
        // Hour 0: surplus 10, battery already full (reset) → all curtailed.
        assert_eq!(r.curtailed[0], 10.0);
        // Hour 1: deficit 10, battery supplies its 5 MWh.
        assert_eq!(r.battery_supplied[1], 5.0);
        assert_eq!(r.unmet[1], 5.0);
        // Hour 2: surplus recharges the empty battery.
        assert_eq!(r.curtailed[2], 5.0);
        // Hour 3: full battery again covers half the deficit.
        assert_eq!(r.unmet[3], 5.0);
        assert_eq!(r.total_discharged_mwh, 10.0);
        assert_eq!(r.equivalent_cycles, 2.0);
    }

    #[test]
    fn zero_capacity_battery_passes_deficit_through() {
        let demand = HourlySeries::constant(start(), 3, 10.0);
        let supply = HourlySeries::from_values(start(), vec![4.0, 12.0, 0.0]);
        let mut battery = IdealBattery::new(0.0);
        let r = simulate_dispatch(&mut battery, &demand, &supply).unwrap();
        assert_eq!(r.unmet.values(), &[6.0, 0.0, 10.0]);
        assert_eq!(r.curtailed.values(), &[0.0, 2.0, 0.0]);
        assert_eq!(r.equivalent_cycles, 0.0);
    }

    #[test]
    fn energy_conservation_with_ideal_battery() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = HourlySeries::from_fn(start(), 24, |h| if h % 2 == 0 { 22.0 } else { 0.0 });
        let mut battery = IdealBattery::new(6.0);
        battery.reset(0.0);
        let r = simulate_dispatch(&mut battery, &demand, &supply).unwrap();
        // supply + battery start + grid(unmet) == demand + curtailed + battery end.
        let lhs = supply.sum() + 6.0 /* reset(1.0) start */ + r.unmet.sum();
        let rhs = demand.sum() + r.curtailed.sum() + r.soc[23];
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn clc_losses_reduce_delivered_energy() {
        let demand = HourlySeries::from_fn(start(), 48, |h| if h % 2 == 1 { 10.0 } else { 0.0 });
        let supply = HourlySeries::from_fn(start(), 48, |h| if h % 2 == 0 { 10.0 } else { 0.0 });
        let mut ideal = IdealBattery::new(10.0);
        let mut lossy = ClcBattery::lfp(10.0, 1.0);
        let r_ideal = simulate_dispatch(&mut ideal, &demand, &supply).unwrap();
        let r_lossy = simulate_dispatch(&mut lossy, &demand, &supply).unwrap();
        assert!(r_lossy.unmet.sum() > r_ideal.unmet.sum());
    }

    #[test]
    fn dod_floor_limits_usable_energy() {
        let demand = HourlySeries::constant(start(), 2, 100.0);
        let supply = HourlySeries::zeros(start(), 2);
        let mut shallow = ClcBattery::lfp(100.0, 0.5);
        let r = simulate_dispatch(&mut shallow, &demand, &supply).unwrap();
        // Only ~50 MWh usable (times efficiency).
        assert!((r.total_discharged_mwh - 50.0 * 0.977).abs() < 1e-9);
    }

    #[test]
    fn histogram_is_bimodal_under_full_cycling() {
        // Alternate surplus/deficit big enough to fully swing the battery:
        // Fig 16's "often fully charged or fully discharged".
        let demand = HourlySeries::from_fn(start(), 200, |h| if h % 2 == 1 { 50.0 } else { 0.0 });
        let supply = HourlySeries::from_fn(start(), 200, |h| if h % 2 == 0 { 60.0 } else { 0.0 });
        let mut battery = IdealBattery::new(20.0);
        let r = simulate_dispatch(&mut battery, &demand, &supply).unwrap();
        let hist = r.charge_level_histogram(20.0, 10).unwrap();
        let counts = hist.counts();
        let edges = counts[0] + counts[9];
        let middle: usize = counts[1..9].iter().sum();
        assert!(
            edges > middle,
            "SoC distribution should be bimodal: {counts:?}"
        );
    }

    #[test]
    fn misaligned_series_error() {
        let demand = HourlySeries::zeros(start(), 3);
        let supply = HourlySeries::zeros(start(), 4);
        let mut battery = IdealBattery::new(1.0);
        assert!(simulate_dispatch(&mut battery, &demand, &supply).is_err());
        let weight = HourlySeries::zeros(start(), 3);
        assert!(simulate_dispatch_stats(&mut battery, &demand, &supply, &weight).is_err());
        let short_weight = HourlySeries::zeros(start(), 2);
        let supply = HourlySeries::zeros(start(), 3);
        assert!(simulate_dispatch_stats(&mut battery, &demand, &supply, &short_weight).is_err());
    }

    /// An irregular year-like fixture that swings the battery through
    /// charge, discharge, clamping, and idle regimes.
    fn stats_fixture() -> (HourlySeries, HourlySeries, HourlySeries) {
        let n = 500;
        let demand = HourlySeries::from_fn(start(), n, |h| {
            10.0 + (h as f64 * 0.7).sin() * 9.0 + (h % 13) as f64 * 0.01
        });
        let supply = HourlySeries::from_fn(start(), n, |h| {
            (h as f64 * 0.31).cos().abs() * 25.0 * ((h % 7) as f64 / 6.0)
        });
        let weight = HourlySeries::from_fn(start(), n, |h| 0.1 + (h % 24) as f64 * 0.03);
        (demand, supply, weight)
    }

    #[test]
    fn dispatch_stats_match_materialized_reductions_bitwise() {
        let (demand, supply, weight) = stats_fixture();
        // Ideal and CLC batteries, including zero-capacity and DoD floors.
        let batteries: Vec<Box<dyn BatteryModel>> = vec![
            Box::new(IdealBattery::new(30.0)),
            Box::new(IdealBattery::new(0.0)),
            Box::new(ClcBattery::lfp(30.0, 1.0)),
            Box::new(ClcBattery::lfp(30.0, 0.6)),
            Box::new(ClcBattery::sodium_ion(15.0, 0.8)),
        ];
        for mut battery in batteries {
            let full = simulate_dispatch(battery.as_mut(), &demand, &supply).unwrap();
            let stats =
                simulate_dispatch_stats(battery.as_mut(), &demand, &supply, &weight).unwrap();
            assert_eq!(
                stats.deficit.unmet_mwh.to_bits(),
                full.unmet.sum().to_bits(),
                "unmet energy diverged"
            );
            assert_eq!(
                stats.deficit.covered_hours,
                full.unmet.count_where(|u| u <= COVERED_EPSILON_MWH),
                "covered hours diverged"
            );
            // The streaming fold accumulates u·w hour by hour, so the
            // oracle is a sequential in-order sum (HourlySeries::dot uses
            // the lane-chunked reduction order and would diverge bitwise).
            let sequential_dot: f64 = full
                .unmet
                .zip_with(&weight, |u, w| u * w)
                .unwrap()
                .values()
                .iter()
                .sum();
            assert_eq!(
                stats.unmet_dot.to_bits(),
                sequential_dot.to_bits(),
                "weighted grid draw diverged"
            );
            assert_eq!(
                stats.total_discharged_mwh.to_bits(),
                full.total_discharged_mwh.to_bits()
            );
            assert_eq!(
                stats.equivalent_cycles.to_bits(),
                full.equivalent_cycles.to_bits()
            );
        }
    }

    #[test]
    fn dispatch_stats_zero_capacity_passthrough() {
        let (demand, supply, weight) = stats_fixture();
        let mut battery = IdealBattery::new(0.0);
        let stats = simulate_dispatch_stats(&mut battery, &demand, &supply, &weight).unwrap();
        // The dispatch fold accumulates hour by hour, so compare against a
        // sequential in-order sum of the clamped deficit (deficit_sum's
        // lane-chunked reduction order intentionally differs).
        let sequential: f64 = demand
            .zip_with(&supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .values()
            .iter()
            .sum();
        assert_eq!(stats.deficit.unmet_mwh.to_bits(), sequential.to_bits());
        assert_eq!(stats.equivalent_cycles, 0.0);
        assert_eq!(stats.total_discharged_mwh, 0.0);
    }

    #[test]
    fn soc_trace_is_within_bounds() {
        let demand = HourlySeries::from_fn(start(), 100, |h| (h % 7) as f64);
        let supply = HourlySeries::from_fn(start(), 100, |h| (h % 5) as f64);
        let mut battery = ClcBattery::lfp(10.0, 0.8);
        let r = simulate_dispatch(&mut battery, &demand, &supply).unwrap();
        for (_, s) in r.soc.iter() {
            assert!((2.0 - 1e-9..=10.0 + 1e-9).contains(&s));
        }
    }
}
