//! Criterion benchmarks for the design-space exploration layer: single
//! design evaluations per strategy, a full (coarse) sweep, and Pareto
//! extraction. These bound the cost of Figures 14-15.

use ce_core::{CarbonExplorer, DesignPoint, DesignSpace, ParetoFrontier, StrategyKind};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn explorer() -> CarbonExplorer {
    let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    CarbonExplorer::new(site.demand_trace(2020, 7), grid)
}

fn bench_evaluate(c: &mut Criterion) {
    let explorer = explorer();
    let design = DesignPoint {
        solar_mw: 300.0,
        wind_mw: 150.0,
        battery_mwh: 100.0,
        extra_capacity_fraction: 0.3,
    };
    let mut group = c.benchmark_group("evaluate_design");
    for strategy in StrategyKind::ALL {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| explorer.evaluate(black_box(strategy), black_box(&design)))
        });
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let explorer = explorer();
    let space = DesignSpace {
        solar: (0.0, 500.0, 4),
        wind: (0.0, 500.0, 4),
        battery: (0.0, 400.0, 3),
        extra_capacity: (0.0, 1.0, 2),
    };
    c.bench_function("explore_battery_space_48pts", |b| {
        b.iter(|| explorer.explore(StrategyKind::RenewablesBattery, black_box(&space)))
    });
    let evals = explorer.explore(StrategyKind::RenewablesBatteryCas, &space);
    c.bench_function("pareto_extraction", |b| {
        b.iter(|| ParetoFrontier::from_evaluations(black_box(&evals)))
    });
}

criterion_group!(benches, bench_evaluate, bench_sweep);
criterion_main!(benches);
