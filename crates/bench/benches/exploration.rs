//! Criterion benchmarks for the design-space exploration layer: single
//! design evaluations per strategy, a full (coarse) sweep, and Pareto
//! extraction. These bound the cost of Figures 14-15.

use ce_core::{
    renewable_coverage, CarbonExplorer, DesignPoint, DesignSpace, EvalScratch, ParetoFrontier,
    StrategyKind,
};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn explorer() -> CarbonExplorer {
    let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    CarbonExplorer::new(site.demand_trace(2020, 7), grid)
}

fn bench_evaluate(c: &mut Criterion) {
    let explorer = explorer();
    let design = DesignPoint {
        solar_mw: 300.0,
        wind_mw: 150.0,
        battery_mwh: 100.0,
        extra_capacity_fraction: 0.3,
    };
    let mut group = c.benchmark_group("evaluate_design");
    for strategy in StrategyKind::ALL {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| explorer.evaluate(black_box(strategy), black_box(&design)))
        });
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let explorer = explorer();
    let space = DesignSpace {
        solar: (0.0, 500.0, 4),
        wind: (0.0, 500.0, 4),
        battery: (0.0, 400.0, 3),
        extra_capacity: (0.0, 1.0, 2),
    };
    c.bench_function("explore_battery_space_48pts", |b| {
        b.iter(|| explorer.explore(StrategyKind::RenewablesBattery, black_box(&space)))
    });
    let evals = explorer.explore(StrategyKind::RenewablesBatteryCas, &space);
    c.bench_function("pareto_extraction", |b| {
        b.iter(|| ParetoFrontier::from_evaluations(black_box(&evals)))
    });
}

/// Single-thread cost of one renewables-only scoring, three ways: the
/// pre-optimization formulation (materialize the scaled supply, the unmet
/// series, and the weighted series, then fold each away), the current
/// `evaluate` (fused kernels, fresh scratch per call), and `evaluate_with`
/// on a reused scratch (the sweep engine's steady state — zero heap
/// allocation per point).
fn bench_fused_vs_naive(c: &mut Criterion) {
    let explorer = explorer();
    let design = DesignPoint::renewables(300.0, 150.0);
    let demand = explorer.demand().clone();
    let intensity = explorer.grid_intensity().clone();
    let grid = explorer.grid().clone();

    let mut group = c.benchmark_group("renewables_only_point");
    group.bench_function("naive_materializing", |b| {
        b.iter(|| {
            let supply = grid.scaled_renewables(design.solar_mw, design.wind_mw);
            let unmet = demand
                .zip_with(&supply, |d, s| (d - s).max(0.0))
                .expect("aligned");
            let coverage = renewable_coverage(&demand, &supply).expect("aligned");
            let operational = unmet
                .zip_with(&intensity, |u, i| u * i)
                .expect("aligned")
                .sum();
            let solar_energy = grid.scaled_solar(design.solar_mw).sum();
            let wind_energy = grid.scaled_wind(design.wind_mw).sum();
            black_box((coverage, operational, solar_energy, wind_energy))
        })
    });
    group.bench_function("fused_fresh_scratch", |b| {
        b.iter(|| explorer.evaluate(StrategyKind::RenewablesOnly, black_box(&design)))
    });
    group.bench_function("fused_reused_scratch", |b| {
        let mut scratch = EvalScratch::default();
        b.iter(|| {
            explorer.evaluate_with(
                StrategyKind::RenewablesOnly,
                black_box(&design),
                &mut scratch,
            )
        })
    });
    group.finish();
}

/// The headline serial-vs-parallel comparison: a 6×6×5×3 = 540-point
/// RenewablesBatteryCas grid (every axis live, so each point pays the full
/// combined battery + CAS dispatch). `explore` and `explore_serial` return
/// bitwise-identical vectors, so the ratio of these two numbers is pure
/// speedup.
fn bench_parallel_sweep(c: &mut Criterion) {
    let explorer = explorer();
    let space = DesignSpace {
        solar: (0.0, 600.0, 6),
        wind: (0.0, 600.0, 6),
        battery: (0.0, 400.0, 5),
        extra_capacity: (0.0, 1.0, 3),
    };
    let strategy = StrategyKind::RenewablesBatteryCas;
    assert_eq!(space.restricted_to(strategy).len(), 540);

    let mut group = c.benchmark_group("explore_cas_space_540pts");
    group.bench_function("serial", |b| {
        b.iter(|| explorer.explore_serial(strategy, black_box(&space)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| explorer.explore(strategy, black_box(&space)))
    });
    group.finish();
}

/// The factorization headline: 540-point grids where only one of the
/// battery / extra-capacity axes is live, so the supply-major traversal
/// computes 36 supply series instead of 540. `explore_serial` is the PR1
/// point-per-point reference (supply recomputed at every point);
/// `explore` is the factorized path. Both return bitwise-identical
/// vectors, so the ratio is pure speedup.
fn bench_factorized_sweeps(c: &mut Criterion) {
    let explorer = explorer();

    let battery_space = DesignSpace {
        solar: (0.0, 600.0, 6),
        wind: (0.0, 600.0, 6),
        battery: (0.0, 700.0, 15),
        extra_capacity: (0.0, 0.0, 1),
    };
    assert_eq!(
        battery_space
            .restricted_to(StrategyKind::RenewablesBattery)
            .len(),
        540
    );
    let mut group = c.benchmark_group("explore_battery_space_540pts");
    group.bench_function("point_per_point", |b| {
        b.iter(|| {
            explorer.explore_serial(StrategyKind::RenewablesBattery, black_box(&battery_space))
        })
    });
    group.bench_function("factorized", |b| {
        b.iter(|| explorer.explore(StrategyKind::RenewablesBattery, black_box(&battery_space)))
    });
    group.finish();

    let cas_space = DesignSpace {
        solar: (0.0, 600.0, 6),
        wind: (0.0, 600.0, 6),
        battery: (0.0, 0.0, 1),
        extra_capacity: (0.0, 1.0, 15),
    };
    assert_eq!(
        cas_space.restricted_to(StrategyKind::RenewablesCas).len(),
        540
    );
    let mut group = c.benchmark_group("explore_cas_only_space_540pts");
    group.bench_function("point_per_point", |b| {
        b.iter(|| explorer.explore_serial(StrategyKind::RenewablesCas, black_box(&cas_space)))
    });
    group.bench_function("factorized", |b| {
        b.iter(|| explorer.explore(StrategyKind::RenewablesCas, black_box(&cas_space)))
    });
    group.finish();
}

/// Streaming minimum vs materialize-then-min over the same 540-point
/// battery grid: `optimal` should never be slower than `explore` + a
/// linear scan, and allocates no result vector.
fn bench_streaming_optimal(c: &mut Criterion) {
    let explorer = explorer();
    let space = DesignSpace {
        solar: (0.0, 600.0, 6),
        wind: (0.0, 600.0, 6),
        battery: (0.0, 700.0, 15),
        extra_capacity: (0.0, 0.0, 1),
    };
    let strategy = StrategyKind::RenewablesBattery;
    let mut group = c.benchmark_group("optimal_battery_space_540pts");
    group.bench_function("materialize_then_min", |b| {
        b.iter(|| {
            explorer
                .explore(strategy, black_box(&space))
                .into_iter()
                .min_by(|a, b| a.total_tons().partial_cmp(&b.total_tons()).expect("finite"))
        })
    });
    group.bench_function("streaming", |b| {
        b.iter(|| explorer.optimal(strategy, black_box(&space)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluate,
    bench_sweep,
    bench_fused_vs_naive,
    bench_parallel_sweep,
    bench_factorized_sweeps,
    bench_streaming_optimal
);
criterion_main!(benches);
