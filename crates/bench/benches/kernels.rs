//! Criterion benchmarks for Carbon Explorer's hot kernels: grid synthesis,
//! coverage computation, battery dispatch, and the schedulers. These are
//! the inner loops of every figure's sweep, so their cost bounds how fine
//! a design grid the harness can afford.

use ce_battery::{simulate_dispatch, ClcBattery};
use ce_core::renewable_coverage;
use ce_datacenter::Fleet;
use ce_grid::{BalancingAuthority, GridDataset};
use ce_scheduler::{combined_dispatch, lp_schedule, CasConfig, CombinedConfig, GreedyScheduler};
use ce_timeseries::HourlySeries;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup() -> (HourlySeries, HourlySeries, GridDataset) {
    let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
    let grid = GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7);
    let demand = site.demand_trace(2020, 7);
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    (demand, supply, grid)
}

fn bench_synthesis(c: &mut Criterion) {
    c.bench_function("grid_synthesize_year", |b| {
        b.iter(|| GridDataset::synthesize(black_box(BalancingAuthority::PACE), 2020, 7))
    });
    let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
    c.bench_function("demand_trace_year", |b| {
        b.iter(|| black_box(&site).demand_trace(2020, 7))
    });
}

fn bench_coverage(c: &mut Criterion) {
    let (demand, supply, grid) = setup();
    c.bench_function("renewable_coverage_year", |b| {
        b.iter(|| renewable_coverage(black_box(&demand), black_box(&supply)).unwrap())
    });
    c.bench_function("investment_scaling", |b| {
        b.iter(|| black_box(&grid).scaled_renewables(300.0, 150.0))
    });
}

fn bench_battery(c: &mut Criterion) {
    let (demand, supply, _) = setup();
    c.bench_function("battery_dispatch_year", |b| {
        b.iter(|| {
            let mut battery = ClcBattery::lfp(100.0, 1.0);
            simulate_dispatch(&mut battery, black_box(&demand), black_box(&supply)).unwrap()
        })
    });
}

fn bench_schedulers(c: &mut Criterion) {
    let (demand, supply, _) = setup();
    let config = CasConfig {
        max_capacity_mw: demand.max().unwrap() * 1.5,
        flexible_ratio: 0.4,
    };
    c.bench_function("greedy_schedule_year", |b| {
        let scheduler = GreedyScheduler::new(config);
        b.iter(|| {
            scheduler
                .schedule(black_box(&demand), black_box(&supply))
                .unwrap()
        })
    });
    c.bench_function("combined_dispatch_year", |b| {
        b.iter(|| {
            let mut battery = ClcBattery::lfp(100.0, 1.0);
            combined_dispatch(
                &mut battery,
                black_box(&demand),
                black_box(&supply),
                CombinedConfig {
                    max_capacity_mw: config.max_capacity_mw,
                    flexible_ratio: 0.4,
                    window_hours: 24,
                },
            )
            .unwrap()
        })
    });
    // LP over one week (365 day-LPs would dominate the whole suite).
    let demand_week = demand.window(0, 168).unwrap();
    let supply_week = supply.window(0, 168).unwrap();
    c.bench_function("lp_schedule_week", |b| {
        b.iter(|| lp_schedule(black_box(&demand_week), black_box(&supply_week), config).unwrap())
    });
}

criterion_group!(
    benches,
    bench_synthesis,
    bench_coverage,
    bench_battery,
    bench_schedulers
);
criterion_main!(benches);
