//! Machine-readable serving-layer benchmark: boots an in-process
//! `ce-serve` instance and drives `POST /evaluate` over real sockets with
//! closed-loop clients at several concurrency levels, separating the
//! *cold* path (every key computed by the worker pool) from the *hot*
//! path (every key replayed from the response cache). Writes
//! `BENCH_serve.json` with p50/p99 latency and throughput per level, so
//! the docs can track the serving overhead over time.
//!
//! Usage:
//!
//! ```text
//! bench_serve [output-path]    # default: BENCH_serve.json
//! ```
//!
//! Before timing anything, every response body is checked byte-for-byte
//! against encoding the direct library call — the serving layer's
//! determinism contract is a precondition of the numbers meaning
//! anything. The JSON is hand-rolled (the vendored serde has no
//! serde_json companion).

use ce_core::EvalScratch;
use ce_serve::{
    build_explorer, execute, start, ComputeKind, ComputeRequest, Json, Limits, ServerConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Closed-loop client threads per timed run.
const CONCURRENCY_LEVELS: [usize; 3] = [1, 4, 16];

/// Distinct `/evaluate` keys in the working set (the cold phase computes
/// each once; the hot phase replays them round-robin from the cache).
const DISTINCT_KEYS: usize = 64;

/// Requests per client in the hot phase.
const HOT_REQUESTS_PER_CLIENT: usize = 256;

/// Exits with a diagnostic; benchmarks fail loudly, not with a backtrace.
fn die(context: &str, detail: &str) -> ! {
    eprintln!("bench_serve: {context}: {detail}");
    std::process::exit(1);
}

/// The `i`-th working-set request body: same site context (one shared
/// explorer), distinct design, so each body is a distinct canonical key.
fn body(i: usize) -> String {
    format!(
        r#"{{"site":"UT","strategy":"renewables_battery","design":{{"solar_mw":{},"wind_mw":{},"battery_mwh":{}}}}}"#,
        100 + 5 * (i % 8),
        50 + 10 * (i / 8),
        25 + i
    )
}

/// One persistent keep-alive client connection.
struct Client {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(e) => die("connect", &e.to_string()),
        };
        let _ = stream.set_nodelay(true);
        Self {
            stream,
            buffer: Vec::new(),
        }
    }

    /// Sends one request and returns `(latency_micros, response_body)`.
    fn post(&mut self, path: &str, body: &str) -> (u64, String) {
        let request = format!(
            "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let started = Instant::now();
        if let Err(e) = self.stream.write_all(request.as_bytes()) {
            die("send request", &e.to_string());
        }
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buffer, b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill();
        };
        let head = String::from_utf8_lossy(&self.buffer[..head_end]).to_string();
        if !head.starts_with("HTTP/1.1 200") {
            die("non-200 response", head.lines().next().unwrap_or(""));
        }
        let content_length = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| die("response", "missing content-length"));
        while self.buffer.len() < head_end + content_length {
            self.fill();
        }
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let response_body =
            String::from_utf8_lossy(&self.buffer[head_end..head_end + content_length]).to_string();
        self.buffer.drain(..head_end + content_length);
        (micros, response_body)
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => die("read response", "server closed the connection"),
            Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
            Err(e) => die("read response", &e.to_string()),
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

struct PhaseTiming {
    requests: usize,
    p50_us: u64,
    p99_us: u64,
    requests_per_sec: f64,
}

/// Runs `clients` closed-loop clients, each issuing its slice of
/// `(key_index, expected_body)` work items, and merges their latencies.
fn run_phase(
    addr: SocketAddr,
    clients: usize,
    work_per_client: &[Vec<usize>],
    expected: &[String],
) -> PhaseTiming {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let work = work_per_client[c].clone();
            let expected = expected.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(work.len());
                for key in work {
                    let (micros, response) = client.post("/evaluate", &body(key));
                    if response != expected[key] {
                        die("determinism", "served body differs from library bytes");
                    }
                    latencies.push(micros);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(mut client_latencies) => latencies.append(&mut client_latencies),
            Err(_) => die("client thread", "panicked"),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    PhaseTiming {
        requests: latencies.len(),
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        requests_per_sec: latencies.len() as f64 / elapsed,
    }
}

fn phase_json(t: &PhaseTiming) -> String {
    format!(
        "{{\"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"requests_per_sec\": {:.1}}}",
        t.requests, t.p50_us, t.p99_us, t.requests_per_sec
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Reference bytes for every working-set key, straight from the
    // library: the contract every served response must match.
    let limits = Limits::default();
    let mut scratch = EvalScratch::default();
    let mut explorer = None;
    let expected: Vec<String> = (0..DISTINCT_KEYS)
        .map(|i| {
            let json = match Json::parse(&body(i)) {
                Ok(json) => json,
                Err(e) => die("request body", &e.to_string()),
            };
            let request = match ComputeRequest::parse(ComputeKind::Evaluate, &json, &limits) {
                Ok(request) => request,
                Err(e) => die("request parse", &e.message),
            };
            let explorer =
                explorer.get_or_insert_with(|| match build_explorer(request.context()) {
                    Ok(explorer) => explorer,
                    Err(e) => die("explorer", &e.message),
                });
            execute(&request, explorer, &mut scratch).encode()
        })
        .collect();

    let mut entries = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        // A fresh server per level: the cold phase must actually be cold.
        let config = ServerConfig {
            workers: 4,
            queue_capacity: 1024,
            cache_capacity: 2 * DISTINCT_KEYS,
            ..ServerConfig::default()
        };
        let handle = match start(config) {
            Ok(handle) => handle,
            Err(e) => die("bind", &e.to_string()),
        };
        let addr = handle.addr();

        // Cold: the working set striped across clients, each key once.
        let mut cold_work: Vec<Vec<usize>> = vec![Vec::new(); concurrency];
        for key in 0..DISTINCT_KEYS {
            cold_work[key % concurrency].push(key);
        }
        let cold = run_phase(addr, concurrency, &cold_work, &expected);

        // Hot: round-robin replay of the (now fully cached) working set.
        let hot_work: Vec<Vec<usize>> = (0..concurrency)
            .map(|c| {
                (0..HOT_REQUESTS_PER_CLIENT)
                    .map(|r| (c + r) % DISTINCT_KEYS)
                    .collect()
            })
            .collect();
        let hot = run_phase(addr, concurrency, &hot_work, &expected);

        eprintln!(
            "concurrency {concurrency}: cold p50 {} µs p99 {} µs ({:.0} req/s), hot p50 {} µs p99 {} µs ({:.0} req/s)",
            cold.p50_us, cold.p99_us, cold.requests_per_sec, hot.p50_us, hot.p99_us, hot.requests_per_sec
        );
        entries.push(format!(
            "    {{\n      \"concurrency\": {concurrency},\n      \"cold\": {},\n      \"hot\": {}\n    }}",
            phase_json(&cold),
            phase_json(&hot)
        ));
        handle.shutdown();
    }

    let json = format!(
        "{{\n  \"benchmark\": \"serve_evaluate\",\n  \"workers\": 4,\n  \"distinct_keys\": {DISTINCT_KEYS},\n  \"hot_requests_per_client\": {HOT_REQUESTS_PER_CLIENT},\n  \"determinism\": \"every response body byte-compared against the direct library encoding\",\n  \"levels\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        die("write benchmark output", &e.to_string());
    }
    println!("wrote {out_path}");
}
