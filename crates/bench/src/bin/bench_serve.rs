//! Machine-readable serving-layer benchmark: boots an in-process
//! `ce-serve` instance and drives `POST /evaluate` over real sockets at
//! several concurrency levels, separating the *cold* path (every key
//! computed by the worker pool, closed-loop clients) from the *hot* path
//! (every key replayed from the response cache, **pipelined** clients —
//! each connection keeps a window of requests in flight, which is what
//! lets a single-core host express the event loop's batched-syscall
//! throughput instead of measuring loopback round-trips). Writes
//! `BENCH_serve.json` with p50/p99 latency and throughput per level,
//! alongside the previous architecture's hot throughput for comparison.
//!
//! Usage:
//!
//! ```text
//! bench_serve [output-path]      # full run, default: BENCH_serve.json
//! bench_serve --smoke            # small functional pass, writes nothing
//! bench_serve --check [path]     # validate a committed BENCH_serve.json
//! ```
//!
//! `--smoke` shrinks the working set and request counts to something CI
//! can afford while still exercising both phases end to end, including
//! the byte-for-byte response verification. `--check` parses an existing
//! results file and fails unless every concurrency level is present with
//! a plausible hot throughput, so CI catches a stale or hand-mangled
//! file without re-running the benchmark. The output also embeds a
//! `ce-manifest` provenance record over the working set's evaluations
//! (input hash over the canonical request keys, result hash over the
//! evaluation bytes); `--check` re-derives both hashes on the current
//! checkout and fails on any drift — timings are machine-specific, the
//! manifest is not.
//!
//! Before timing anything, every response body is checked byte-for-byte
//! against encoding the direct library call — the serving layer's
//! determinism contract is a precondition of the numbers meaning
//! anything. The JSON is hand-rolled (the vendored serde has no
//! serde_json companion).

use ce_core::{provenance, EvalScratch, StrategyKind};
use ce_datacenter::Fleet;
use ce_manifest::{verify, Manifest, Recomputed};
use ce_serve::{
    build_explorer, execute, manifest_from_json, start, ComputeKind, ComputeRequest, Json, Limits,
    ServerConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Client threads per timed run.
const CONCURRENCY_LEVELS: [usize; 3] = [1, 4, 16];

/// Distinct `/evaluate` keys in the working set (the cold phase computes
/// each once; the hot phase replays them round-robin from the cache).
const DISTINCT_KEYS: usize = 64;

/// Requests per client in the full hot phase.
const HOT_REQUESTS_PER_CLIENT: usize = 4096;

/// In-flight requests per connection in the hot phase.
const PIPELINE_DEPTH: usize = 32;

/// Hot-path requests/sec measured at each level by the previous
/// thread-per-connection architecture (PR 4 baseline, same host class),
/// recorded in the output so the docs can show the speedup.
const PREV_HOT_REQUESTS_PER_SEC: [(usize, f64); 3] = [(1, 50440.0), (4, 54363.7), (16, 51192.7)];

/// Exits with a diagnostic; benchmarks fail loudly, not with a backtrace.
fn die(context: &str, detail: &str) -> ! {
    eprintln!("bench_serve: {context}: {detail}");
    std::process::exit(1);
}

/// The `i`-th working-set request body: same site context (one shared
/// explorer), distinct design, so each body is a distinct canonical key.
fn body(i: usize) -> String {
    format!(
        r#"{{"site":"UT","strategy":"renewables_battery","design":{{"solar_mw":{},"wind_mw":{},"battery_mwh":{}}}}}"#,
        100 + 5 * (i % 8),
        50 + 10 * (i / 8),
        25 + i
    )
}

/// The encoded request bytes for working-set key `i`. Byte-identical
/// repeats are what the server's raw-bytes memo keys on, so the hot path
/// reuses these buffers verbatim.
fn request_bytes(i: usize) -> Vec<u8> {
    let body = body(i);
    format!(
        "POST /evaluate HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One persistent keep-alive client connection with a response cursor.
struct Client {
    stream: TcpStream,
    buffer: Vec<u8>,
    /// Consumed prefix of `buffer` (compacted periodically, not per
    /// response — pipelined bursts stay `O(n)`).
    pos: usize,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(e) => die("connect", &e.to_string()),
        };
        let _ = stream.set_nodelay(true);
        Self {
            stream,
            buffer: Vec::new(),
            pos: 0,
        }
    }

    /// Reads until one full response is buffered, verifies a 200 status
    /// and the exact expected body bytes, and consumes it.
    fn read_response(&mut self, expected: &str) {
        let head_end = loop {
            if let Some(at) = find_subslice(&self.buffer[self.pos..], b"\r\n\r\n") {
                break self.pos + at + 4;
            }
            self.fill();
        };
        let head = String::from_utf8_lossy(&self.buffer[self.pos..head_end]).to_string();
        if !head.starts_with("HTTP/1.1 200") {
            die("non-200 response", head.lines().next().unwrap_or(""));
        }
        let content_length = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| die("response", "missing content-length"));
        while self.buffer.len() < head_end + content_length {
            self.fill();
        }
        if &self.buffer[head_end..head_end + content_length] != expected.as_bytes() {
            die("determinism", "served body differs from library bytes");
        }
        self.pos = head_end + content_length;
        if self.pos > 256 * 1024 {
            self.buffer.copy_within(self.pos.., 0);
            let live = self.buffer.len() - self.pos;
            self.buffer.truncate(live);
            self.pos = 0;
        }
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 64 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => die("read response", "server closed the connection"),
            Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
            Err(e) => die("read response", &e.to_string()),
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

struct PhaseTiming {
    requests: usize,
    p50_us: u64,
    p99_us: u64,
    requests_per_sec: f64,
}

fn timing_from(latencies: &mut [u64], elapsed: f64) -> PhaseTiming {
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    PhaseTiming {
        requests: latencies.len(),
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        requests_per_sec: latencies.len() as f64 / elapsed,
    }
}

/// Closed-loop phase: each client sends one request at a time and waits
/// for its response. Right for the cold phase, where computation (not
/// the socket path) dominates and coalescing/queueing behavior matters.
fn run_closed_loop(
    addr: SocketAddr,
    clients: usize,
    work_per_client: &[Vec<usize>],
    expected: &[String],
) -> PhaseTiming {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let work = work_per_client[c].clone();
            let expected = expected.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(work.len());
                for key in work {
                    let request = request_bytes(key);
                    let sent = Instant::now();
                    if let Err(e) = client.stream.write_all(&request) {
                        die("send request", &e.to_string());
                    }
                    client.read_response(&expected[key]);
                    latencies.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(mut client_latencies) => latencies.append(&mut client_latencies),
            Err(_) => die("client thread", "panicked"),
        }
    }
    timing_from(&mut latencies, started.elapsed().as_secs_f64())
}

/// Pipelined phase: each client keeps up to `depth` requests in flight
/// on its connection, writing each burst as one syscall and then reading
/// the batched responses in order. Latency is measured per request from
/// burst write to response verification.
fn run_pipelined(
    addr: SocketAddr,
    clients: usize,
    work_per_client: &[Vec<usize>],
    expected: &[String],
    depth: usize,
) -> PhaseTiming {
    let started = Instant::now();
    let requests: Vec<Vec<u8>> = (0..expected.len()).map(request_bytes).collect();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let work = work_per_client[c].clone();
            let expected = expected.to_vec();
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies = Vec::with_capacity(work.len());
                let mut burst: Vec<u8> = Vec::with_capacity(depth * 192);
                for window in work.chunks(depth) {
                    burst.clear();
                    for &key in window {
                        burst.extend_from_slice(&requests[key]);
                    }
                    let sent = Instant::now();
                    if let Err(e) = client.stream.write_all(&burst) {
                        die("send burst", &e.to_string());
                    }
                    for &key in window {
                        client.read_response(&expected[key]);
                        latencies
                            .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(mut client_latencies) => latencies.append(&mut client_latencies),
            Err(_) => die("client thread", "panicked"),
        }
    }
    timing_from(&mut latencies, started.elapsed().as_secs_f64())
}

fn phase_json(t: &PhaseTiming) -> String {
    format!(
        "{{\"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"requests_per_sec\": {:.1}}}",
        t.requests, t.p50_us, t.p99_us, t.requests_per_sec
    )
}

/// The working set's library-derived ground truth: the byte-exact
/// reference bodies every served response must match, plus a
/// `ce-manifest` provenance record over the evaluations behind them.
struct Reference {
    bodies: Vec<String>,
    manifest: Manifest,
}

/// Reference bytes for every working-set key, straight from the library:
/// the contract every served response must match. Alongside the bodies,
/// builds the provenance manifest: input hash over the newline-joined
/// canonical request keys (the server's cache identities), result hash
/// over the evaluations in key order — both re-derivable bit-for-bit by
/// `--check` on any checkout.
fn reference(keys: usize) -> Reference {
    let limits = Limits::default();
    let mut scratch = EvalScratch::default();
    let mut explorer = None;
    let mut bodies = Vec::with_capacity(keys);
    let mut canonical_keys = Vec::with_capacity(keys);
    let mut evaluations = Vec::with_capacity(keys);
    let mut scenario: Option<(i32, u64, StrategyKind)> = None;
    for i in 0..keys {
        let json = match Json::parse(&body(i)) {
            Ok(json) => json,
            Err(e) => die("request body", &e.to_string()),
        };
        let request = match ComputeRequest::parse(ComputeKind::Evaluate, &json, &limits) {
            Ok(request) => request,
            Err(e) => die("request parse", &e.message),
        };
        let explorer = explorer.get_or_insert_with(|| match build_explorer(request.context()) {
            Ok(explorer) => explorer,
            Err(e) => die("explorer", &e.message),
        });
        let ComputeRequest::Evaluate {
            strategy, design, ..
        } = &request
        else {
            die("request", "working-set bodies must be /evaluate requests");
        };
        let ctx = request.context();
        scenario.get_or_insert((ctx.year, ctx.seed, *strategy));
        evaluations.push(explorer.evaluate_with(*strategy, design, &mut scratch));
        canonical_keys.push(request.canonical_key());
        bodies.push(execute(&request, explorer, &mut scratch).encode());
    }
    let (year, seed, strategy) =
        scenario.unwrap_or_else(|| die("reference", "working set is empty"));
    let fleet = Fleet::meta_us();
    let ba = fleet
        .site("UT")
        .unwrap_or_else(|| die("fleet", "site UT missing"));
    let manifest = provenance::build_manifest(
        "serve",
        ba.ba().code(),
        strategy.canonical_key(),
        &[year],
        &[seed],
        &canonical_keys.join("\n"),
        &evaluations,
    );
    Reference { bodies, manifest }
}

/// Runs cold + hot phases at every concurrency level. `hot_per_client`
/// scales the hot phase (shrunk under `--smoke`); `expected` holds the
/// library-derived reference body for each working-set key.
fn run_benchmark(
    hot_per_client: usize,
    keys: usize,
    expected: &[String],
) -> Vec<(usize, PhaseTiming, PhaseTiming)> {
    let mut results = Vec::new();
    for concurrency in CONCURRENCY_LEVELS {
        // A fresh server per level: the cold phase must actually be cold.
        let config = ServerConfig {
            workers: 4,
            queue_capacity: 1024,
            cache_capacity: 2 * keys,
            ..ServerConfig::default()
        };
        let handle = match start(config) {
            Ok(handle) => handle,
            Err(e) => die("bind", &e.to_string()),
        };
        let addr = handle.addr();

        // Cold: the working set striped across clients, each key once.
        let mut cold_work: Vec<Vec<usize>> = vec![Vec::new(); concurrency];
        for key in 0..keys {
            cold_work[key % concurrency].push(key);
        }
        let cold = run_closed_loop(addr, concurrency, &cold_work, expected);

        // Hot: round-robin replay of the (now fully cached) working set,
        // pipelined so the event loop sees full read buffers.
        let hot_work: Vec<Vec<usize>> = (0..concurrency)
            .map(|c| (0..hot_per_client).map(|r| (c + r) % keys).collect())
            .collect();
        let hot = run_pipelined(addr, concurrency, &hot_work, expected, PIPELINE_DEPTH);

        eprintln!(
            "concurrency {concurrency}: cold p50 {} µs p99 {} µs ({:.0} req/s), hot p50 {} µs p99 {} µs ({:.0} req/s)",
            cold.p50_us, cold.p99_us, cold.requests_per_sec, hot.p50_us, hot.p99_us, hot.requests_per_sec
        );
        results.push((concurrency, cold, hot));
        handle.shutdown();
    }
    results
}

fn results_json(
    results: &[(usize, PhaseTiming, PhaseTiming)],
    hot_per_client: usize,
    manifest: &Manifest,
) -> String {
    let entries: Vec<String> = results
        .iter()
        .map(|(concurrency, cold, hot)| {
            let prev = PREV_HOT_REQUESTS_PER_SEC
                .iter()
                .find(|(c, _)| c == concurrency)
                .map_or(0.0, |(_, v)| *v);
            format!(
                "    {{\n      \"concurrency\": {concurrency},\n      \"cold\": {},\n      \"hot\": {},\n      \"prev_requests_per_sec\": {prev:.1}\n    }}",
                phase_json(cold),
                phase_json(hot)
            )
        })
        .collect();
    format!(
        "{{\n  \"benchmark\": \"serve_evaluate\",\n  \"workers\": 4,\n  \"pipeline_depth\": {PIPELINE_DEPTH},\n  \"distinct_keys\": {DISTINCT_KEYS},\n  \"hot_requests_per_client\": {hot_per_client},\n  \"prev\": \"prev_requests_per_sec is the thread-per-connection architecture's hot path on the same host class\",\n  \"determinism\": \"every response body byte-compared against the direct library encoding\",\n  \"manifest_note\": \"manifest: ce-manifest provenance record over the working set's evaluations in key order; --check re-derives both hashes and fails on any drift\",\n  \"manifest\": {},\n  \"levels\": [\n{}\n  ]\n}}\n",
        manifest.to_json(),
        entries.join(",\n")
    )
}

/// `--check`: validates a committed results file without re-running.
fn check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => die("check: read", &format!("{path}: {e}")),
    };
    let json = match Json::parse(&text) {
        Ok(json) => json,
        Err(e) => die("check: parse", &e.to_string()),
    };
    let levels = json
        .get("levels")
        .and_then(Json::as_array)
        .unwrap_or_else(|| die("check", "missing levels array"));
    for want in CONCURRENCY_LEVELS {
        let level = levels
            .iter()
            .find(|l| l.get("concurrency").and_then(Json::as_f64) == Some(want as f64))
            .unwrap_or_else(|| die("check", &format!("no entry for concurrency {want}")));
        for phase in ["cold", "hot"] {
            let rps = level
                .get(phase)
                .and_then(|p| p.get("requests_per_sec"))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| {
                    die(
                        "check",
                        &format!("c={want}: missing {phase} requests_per_sec"),
                    )
                });
            if !(rps.is_finite() && rps > 0.0) {
                die(
                    "check",
                    &format!("c={want}: implausible {phase} rate {rps}"),
                );
            }
        }
        if level
            .get("prev_requests_per_sec")
            .and_then(Json::as_f64)
            .is_none()
        {
            die("check", &format!("c={want}: missing prev_requests_per_sec"));
        }
    }

    // Provenance: lift the embedded manifest back into a typed record,
    // check it is the canonical byte spelling, then re-derive the working
    // set's evaluations and demand both hashes reproduce bit-for-bit.
    // The timings above are machine-specific; the manifest is not.
    let block = json
        .get("manifest")
        .unwrap_or_else(|| die("check", "missing manifest block"));
    let manifest = match manifest_from_json(block) {
        Ok(manifest) => manifest,
        Err(e) => die("check", &e),
    };
    if block.encode() != manifest.to_json() {
        die("check", "manifest block is not the canonical byte spelling");
    }
    let fresh = reference(DISTINCT_KEYS).manifest;
    if let Err(e) = verify(&manifest, |_| Recomputed {
        input_hash: fresh.input_hash.clone(),
        result_hash: fresh.result_hash.clone(),
    }) {
        die("check", &format!("manifest: {e}"));
    }
    println!("bench_serve --check: {path} ok (schema + manifest re-derived)");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let path = args.get(1).map_or("BENCH_serve.json", String::as_str);
            check(path);
        }
        Some("--smoke") => {
            // Small enough for CI, but both phases run and every response
            // is still byte-verified. Writes nothing.
            let reference = reference(16);
            let results = run_benchmark(64, 16, &reference.bodies);
            for (concurrency, _, hot) in &results {
                if hot.requests == 0 {
                    die("smoke", &format!("no hot requests at c={concurrency}"));
                }
            }
            println!("bench_serve --smoke: ok");
            return;
        }
        _ => {}
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let reference = reference(DISTINCT_KEYS);
    let results = run_benchmark(HOT_REQUESTS_PER_CLIENT, DISTINCT_KEYS, &reference.bodies);
    let json = results_json(&results, HOT_REQUESTS_PER_CLIENT, &reference.manifest);
    if let Err(e) = std::fs::write(&out_path, &json) {
        die("write benchmark output", &e.to_string());
    }
    println!("wrote {out_path}");
}
