//! Machine-readable sweep benchmark: times the point-per-point reference
//! (`explore_serial`) against the supply-major factorized traversal
//! (`explore`) on one 540-point grid per strategy and writes
//! `BENCH_sweep.json` with per-strategy µs/point and points/sec, so CI
//! and the docs can track the factorization's speedup over time.
//!
//! Usage:
//!
//! ```text
//! bench_sweep [output-path]    # default: BENCH_sweep.json
//! ```
//!
//! The JSON is hand-rolled (the vendored serde has no serde_json
//! companion); the schema is flat enough that `format!` is fine.

use ce_core::{CarbonExplorer, DesignSpace, StrategyKind};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;
use std::hint::black_box;
use std::time::Instant;

/// Timed runs per path; the minimum is reported (standard practice for
/// wall-clock microbenchmarks — noise is strictly additive).
const ITERATIONS: u32 = 3;

struct PathTiming {
    total_us: f64,
    us_per_point: f64,
    points_per_sec: f64,
}

fn time_path<F: FnMut()>(mut run: F, points: usize) -> PathTiming {
    run(); // warm-up: scratch sizing, page faults, branch history
    let mut best = f64::INFINITY;
    for _ in 0..ITERATIONS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let total_us = best * 1e6;
    PathTiming {
        total_us,
        us_per_point: total_us / points as f64,
        points_per_sec: points as f64 / best,
    }
}

fn path_json(t: &PathTiming) -> String {
    format!(
        "{{\"total_us\": {:.1}, \"us_per_point\": {:.3}, \"points_per_sec\": {:.1}}}",
        t.total_us, t.us_per_point, t.points_per_sec
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);

    // `explore_serial` of the PR 1 seed build (commit 80d1d44) on these
    // exact grids, measured on the same machine with the same
    // best-of-three protocol: per-point supply synthesis + materializing
    // dispatch (four year-long series for the battery arm, a full-year
    // cost vector per day for the CAS arm). Static by necessity — the
    // old code paths no longer exist — and only comparable to timings
    // from the same machine.
    let pr1_seed_us_per_point = [24.7, 175.0, 1055.5, 201.1];

    // One 540-point grid per strategy, restricted to its live axes. The
    // renewables-only grid is all supply groups (factorization is a
    // no-op there — kept as the honest baseline); the battery and CAS
    // grids have 36 groups × 15 sub-points, the combined grid 36 × 15.
    let cases: [(StrategyKind, DesignSpace); 4] = [
        (
            StrategyKind::RenewablesOnly,
            DesignSpace {
                solar: (0.0, 600.0, 27),
                wind: (0.0, 600.0, 20),
                battery: (0.0, 0.0, 1),
                extra_capacity: (0.0, 0.0, 1),
            },
        ),
        (
            StrategyKind::RenewablesBattery,
            DesignSpace {
                solar: (0.0, 600.0, 6),
                wind: (0.0, 600.0, 6),
                battery: (0.0, 700.0, 15),
                extra_capacity: (0.0, 0.0, 1),
            },
        ),
        (
            StrategyKind::RenewablesCas,
            DesignSpace {
                solar: (0.0, 600.0, 6),
                wind: (0.0, 600.0, 6),
                battery: (0.0, 0.0, 1),
                extra_capacity: (0.0, 1.0, 15),
            },
        ),
        (
            StrategyKind::RenewablesBatteryCas,
            DesignSpace {
                solar: (0.0, 600.0, 6),
                wind: (0.0, 600.0, 6),
                battery: (0.0, 700.0, 5),
                extra_capacity: (0.0, 1.0, 3),
            },
        ),
    ];

    let mut entries = Vec::new();
    for ((strategy, space), &pr1_us) in cases.iter().zip(&pr1_seed_us_per_point) {
        let restricted = space.restricted_to(*strategy);
        let points = restricted.len();
        assert_eq!(points, 540, "{strategy}: reference grids are 540 points");

        // Correctness gate before timing anything: the two paths must
        // agree exactly, or the comparison is meaningless.
        let serial = explorer.explore_serial(*strategy, space);
        let factorized = explorer.explore(*strategy, space);
        assert_eq!(serial, factorized, "{strategy}: paths diverged");

        let ppp = time_path(
            || {
                black_box(explorer.explore_serial(*strategy, black_box(space)));
            },
            points,
        );
        let fact = time_path(
            || {
                black_box(explorer.explore(*strategy, black_box(space)));
            },
            points,
        );
        let speedup = ppp.total_us / fact.total_us;
        let speedup_vs_pr1 = pr1_us / fact.us_per_point;

        eprintln!(
            "{strategy}: point-per-point {:.2} µs/pt, factorized {:.2} µs/pt ({speedup:.2}x live, {speedup_vs_pr1:.2}x vs PR1 seed)",
            ppp.us_per_point, fact.us_per_point
        );
        entries.push(format!(
            "    {{\n      \"strategy\": \"{strategy:?}\",\n      \"grid\": [{}, {}, {}, {}],\n      \"points\": {points},\n      \"supply_groups\": {},\n      \"point_per_point\": {},\n      \"factorized\": {},\n      \"speedup\": {speedup:.3},\n      \"pr1_seed_us_per_point\": {pr1_us:.1},\n      \"speedup_vs_pr1_seed\": {speedup_vs_pr1:.3}\n    }}",
            restricted.solar.2,
            restricted.wind.2,
            restricted.battery.2,
            restricted.extra_capacity.2,
            restricted.solar.2 * restricted.wind.2,
            path_json(&ppp),
            path_json(&fact),
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"design_space_sweep\",\n  \"iterations\": {ITERATIONS},\n  \"threads\": {},\n  \"pr1_seed_note\": \"pr1_seed_us_per_point: explore_serial of the PR1 seed build (80d1d44) on the same grids and machine; static because those code paths no longer exist\",\n  \"strategies\": [\n{}\n  ]\n}}\n",
        ce_parallel::max_threads(),
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
