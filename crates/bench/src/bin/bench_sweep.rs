//! Machine-readable sweep benchmark: times the point-per-point reference
//! (`explore_serial`) against the supply-major factorized traversal
//! (`explore`) on one 540-point grid per strategy and writes
//! `BENCH_sweep.json` with per-strategy µs/point, points/sec, and a
//! per-stage breakdown (schedule vs dispatch vs stats µs per call), so
//! CI and the docs can track the factorization's speedup over time.
//!
//! Usage:
//!
//! ```text
//! bench_sweep [output-path]       # full run, default: BENCH_sweep.json
//! bench_sweep --smoke [path]      # tiny grids + 1 iteration: CI-speed
//!                                 # end-to-end run (correctness gates,
//!                                 # stage probes, schema self-check);
//!                                 # default: target/BENCH_sweep_smoke.json
//! bench_sweep --check [path]      # no timing: parse an existing output
//!                                 # file, validate its schema, and
//!                                 # re-derive its provenance manifest
//! ```
//!
//! The JSON is hand-rolled (the vendored serde has no serde_json
//! companion); the schema is flat enough that `format!` is fine, and
//! `--check` re-parses it with `ce-serve`'s `Json` parser so CI verifies
//! the committed artifact stays machine-readable.
//!
//! Every output embeds a `ce-manifest` provenance record over the exact
//! evaluations the correctness gate compared (every strategy's factorized
//! sweep, in case order). Timings are machine-specific, but the
//! *evaluations* are bitwise deterministic — so `--check` re-runs them and
//! `ce_manifest::verify` fails the artifact if the committed result hash
//! no longer reproduces on the current checkout.

use ce_battery::{simulate_dispatch_stats, ClcBattery};
use ce_core::{provenance, CarbonExplorer, DesignSpace, EvaluatedDesign, StrategyKind};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;
use ce_manifest::{verify, Manifest, Recomputed};
use ce_scheduler::{
    combined_dispatch_stats, CasConfig, CombinedConfig, CombinedScratch, CostOrder,
    GreedyScheduler, ScheduleScratch,
};
use ce_serve::{manifest_from_json, Json};
use ce_timeseries::kernels;
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Timed runs per path; the minimum is reported (standard practice for
/// wall-clock microbenchmarks — noise is strictly additive).
const ITERATIONS: u32 = 3;

/// Calls per timed iteration when probing individual pipeline stages: a
/// single stage call is tens of µs, too close to timer resolution to
/// time alone.
const STAGE_REPS: u32 = 64;

struct PathTiming {
    total_us: f64,
    us_per_point: f64,
    points_per_sec: f64,
}

/// Per-call cost of the pipeline stages behind one evaluation, probed on
/// the grid's central design point. Arms that fuse a stage into another
/// (battery and combined dispatch stream their stats) report the fused
/// stage only; unused stages are 0.
struct StageTiming {
    schedule_us: f64,
    dispatch_us: f64,
    stats_us: f64,
}

fn time_path<F: FnMut()>(mut run: F, points: usize, iterations: u32) -> PathTiming {
    run(); // warm-up: scratch sizing, page faults, branch history
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let total_us = best * 1e6;
    PathTiming {
        total_us,
        us_per_point: total_us / points as f64,
        points_per_sec: points as f64 / best,
    }
}

fn time_stage<F: FnMut()>(mut run: F, reps: u32, iterations: u32) -> f64 {
    run(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..iterations {
        let start = Instant::now();
        for _ in 0..reps {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e6 / f64::from(reps)
}

/// Times each pipeline stage of `strategy` in isolation on the central
/// design point of `space`, with the renewable supply — and, for the CAS
/// arm, the per-day cost permutations — prebuilt exactly as the sweep
/// engine prebuilds them per supply group.
fn stage_breakdown(
    explorer: &CarbonExplorer,
    strategy: StrategyKind,
    space: &DesignSpace,
    reps: u32,
    iterations: u32,
) -> StageTiming {
    let mid = |(lo, hi, _): (f64, f64, usize)| 0.5 * (lo + hi);
    let battery_mwh = mid(space.battery);
    let demand = explorer.demand();
    let intensity = explorer.grid_intensity();
    let supply = explorer
        .grid()
        .scaled_renewables(mid(space.solar), mid(space.wind));
    let peak = demand.max().unwrap_or(0.0);
    let capacity_cap = peak * (1.0 + mid(space.extra_capacity));
    let flexible_ratio = explorer.workload().flexible_fraction();

    let mut stages = StageTiming {
        schedule_us: 0.0,
        dispatch_us: 0.0,
        stats_us: 0.0,
    };
    match strategy {
        StrategyKind::RenewablesOnly => {
            stages.stats_us = time_stage(
                || {
                    black_box(kernels::deficit_stats_dot_slices(
                        demand.values(),
                        supply.values(),
                        intensity.values(),
                    ));
                },
                reps,
                iterations,
            );
        }
        StrategyKind::RenewablesBattery => {
            stages.dispatch_us = time_stage(
                || {
                    let mut battery = ClcBattery::lfp(battery_mwh, 1.0);
                    black_box(
                        simulate_dispatch_stats(&mut battery, demand, &supply, intensity).ok(),
                    );
                },
                reps,
                iterations,
            );
        }
        StrategyKind::RenewablesCas => {
            let scheduler = GreedyScheduler::new(CasConfig {
                max_capacity_mw: capacity_cap,
                flexible_ratio,
            });
            let mut order = CostOrder::default();
            order.rebuild_from_deficit_slices(demand.values(), supply.values());
            let mut scratch = ScheduleScratch::default();
            stages.schedule_us = time_stage(
                || {
                    black_box(
                        scheduler
                            .schedule_with_order(demand, &supply, &order, &mut scratch)
                            .ok(),
                    );
                },
                reps,
                iterations,
            );
            stages.stats_us = time_stage(
                || {
                    black_box(kernels::deficit_stats_dot_slices(
                        scratch.shifted(),
                        supply.values(),
                        intensity.values(),
                    ));
                },
                reps,
                iterations,
            );
        }
        StrategyKind::RenewablesBatteryCas => {
            let mut scratch = CombinedScratch::default();
            stages.dispatch_us = time_stage(
                || {
                    let mut battery = ClcBattery::lfp(battery_mwh, 1.0);
                    black_box(
                        combined_dispatch_stats(
                            &mut battery,
                            demand,
                            &supply,
                            intensity,
                            CombinedConfig {
                                max_capacity_mw: capacity_cap,
                                flexible_ratio,
                                window_hours: 24,
                            },
                            &mut scratch,
                        )
                        .ok(),
                    );
                },
                reps,
                iterations,
            );
        }
    }
    stages
}

fn path_json(t: &PathTiming) -> String {
    format!(
        "{{\"total_us\": {:.1}, \"us_per_point\": {:.3}, \"points_per_sec\": {:.1}}}",
        t.total_us, t.us_per_point, t.points_per_sec
    )
}

fn stages_json(s: &StageTiming) -> String {
    format!(
        "{{\"schedule_us\": {:.3}, \"dispatch_us\": {:.3}, \"stats_us\": {:.3}}}",
        s.schedule_us, s.dispatch_us, s.stats_us
    )
}

/// One grid per strategy, restricted to its live axes. Full mode: 540
/// points each — the renewables-only grid is all supply groups
/// (factorization is a no-op there, kept as the honest baseline); the
/// battery and CAS grids are 36 groups × 15 sub-points, the combined
/// grid 36 × 15. Smoke mode: the same shapes shrunk to a handful of
/// points so CI exercises every code path in seconds.
fn cases(smoke: bool) -> [(StrategyKind, DesignSpace); 4] {
    let axes = |solar, wind, battery, extra| DesignSpace {
        solar,
        wind,
        battery,
        extra_capacity: extra,
    };
    if smoke {
        [
            (
                StrategyKind::RenewablesOnly,
                axes(
                    (0.0, 600.0, 3),
                    (0.0, 600.0, 2),
                    (0.0, 0.0, 1),
                    (0.0, 0.0, 1),
                ),
            ),
            (
                StrategyKind::RenewablesBattery,
                axes(
                    (0.0, 600.0, 2),
                    (0.0, 600.0, 2),
                    (0.0, 700.0, 3),
                    (0.0, 0.0, 1),
                ),
            ),
            (
                StrategyKind::RenewablesCas,
                axes(
                    (0.0, 600.0, 2),
                    (0.0, 600.0, 2),
                    (0.0, 0.0, 1),
                    (0.0, 1.0, 3),
                ),
            ),
            (
                StrategyKind::RenewablesBatteryCas,
                axes(
                    (0.0, 600.0, 2),
                    (0.0, 600.0, 2),
                    (0.0, 700.0, 2),
                    (0.0, 1.0, 2),
                ),
            ),
        ]
    } else {
        [
            (
                StrategyKind::RenewablesOnly,
                axes(
                    (0.0, 600.0, 27),
                    (0.0, 600.0, 20),
                    (0.0, 0.0, 1),
                    (0.0, 0.0, 1),
                ),
            ),
            (
                StrategyKind::RenewablesBattery,
                axes(
                    (0.0, 600.0, 6),
                    (0.0, 600.0, 6),
                    (0.0, 700.0, 15),
                    (0.0, 0.0, 1),
                ),
            ),
            (
                StrategyKind::RenewablesCas,
                axes(
                    (0.0, 600.0, 6),
                    (0.0, 600.0, 6),
                    (0.0, 0.0, 1),
                    (0.0, 1.0, 15),
                ),
            ),
            (
                StrategyKind::RenewablesBatteryCas,
                axes(
                    (0.0, 600.0, 6),
                    (0.0, 600.0, 6),
                    (0.0, 700.0, 5),
                    (0.0, 1.0, 3),
                ),
            ),
        ]
    }
}

/// The scenario behind every sweep timing and its provenance manifest:
/// one site, one synthesized demand/weather year.
const SITE: &str = "UT";
const YEAR: i32 = 2020;
const SEED: u64 = 7;

/// Canonical spelling of the sweep scenario — site, synthesis year and
/// seed, mode, and every strategy's grid axes with floats by IEEE-754 bit
/// pattern (the same discipline `ce-serve` canonical keys use). Hashed
/// into the manifest's `input_hash`.
fn sweep_input_key(smoke: bool) -> String {
    let mut key = format!(
        "bench=design_space_sweep;site={SITE};year={YEAR};seed={SEED};mode={};",
        if smoke { "smoke" } else { "full" }
    );
    for (strategy, space) in &cases(smoke) {
        let _ = write!(key, "strategy={};", strategy.canonical_key());
        for (axis, (lo, hi, steps)) in [
            ("solar", space.solar),
            ("wind", space.wind),
            ("battery", space.battery),
            ("extra_capacity", space.extra_capacity),
        ] {
            let _ = write!(
                key,
                "{axis}={:016x},{:016x},{steps};",
                lo.to_bits(),
                hi.to_bits()
            );
        }
    }
    key
}

/// The benchmark's fixed site, cloned out of the fleet. The single
/// lookup `expect` lives here so both the timing run and the manifest
/// derivation share one panic site.
fn bench_site() -> ce_datacenter::DataCenterSite {
    Fleet::meta_us().site(SITE).expect("site exists").clone()
}

/// Derives the sweep's provenance manifest from scratch: every strategy's
/// factorized sweep on a fresh explorer, hashed in case order. The writer
/// embeds this record in the output; `--check` recomputes it and demands
/// bit-identical hashes via `ce_manifest::verify`.
fn sweep_manifest(smoke: bool) -> Manifest {
    let site = bench_site();
    let explorer = CarbonExplorer::new(
        site.demand_trace(YEAR, SEED),
        GridDataset::synthesize(site.ba(), YEAR, SEED),
    );
    let evaluations: Vec<EvaluatedDesign> = cases(smoke)
        .iter()
        .flat_map(|(strategy, space)| explorer.explore(*strategy, space))
        .collect();
    provenance::build_manifest(
        "sweep",
        site.ba().code(),
        "all",
        &[YEAR],
        &[SEED],
        &sweep_input_key(smoke),
        &evaluations,
    )
}

fn run_bench(smoke: bool, out_path: &str) -> ExitCode {
    let iterations = if smoke { 1 } else { ITERATIONS };
    let stage_reps = if smoke { 4 } else { STAGE_REPS };

    let site = bench_site();
    let grid = GridDataset::synthesize(site.ba(), YEAR, SEED);
    let explorer = CarbonExplorer::new(site.demand_trace(YEAR, SEED), grid);

    // `explore_serial` of the PR 1 seed build (commit 80d1d44) on the
    // full grids, measured on the same machine with the same
    // best-of-three protocol: per-point supply synthesis + materializing
    // dispatch (four year-long series for the battery arm, a full-year
    // cost vector per day for the CAS arm). Static by necessity — the
    // old code paths no longer exist — and only comparable to timings
    // from the same machine.
    let pr1_seed_us_per_point = [24.7, 175.0, 1055.5, 201.1];
    // Factorized µs/pt of the PR 5 build on the full grids and the same
    // machine: the supply-major traversal before the permutation cache
    // and the lane-chunked kernels. Static for the same reason.
    let prev_us_per_point = [21.518, 33.411, 267.818, 55.689];

    let mut entries = Vec::new();
    for (((strategy, space), &pr1_us), &prev_us) in cases(smoke)
        .iter()
        .zip(&pr1_seed_us_per_point)
        .zip(&prev_us_per_point)
    {
        let restricted = space.restricted_to(*strategy);
        let points = restricted.len();
        if !smoke {
            assert_eq!(points, 540, "{strategy}: reference grids are 540 points");
        }

        // Correctness gate before timing anything: the two paths must
        // agree exactly, or the comparison is meaningless.
        let serial = explorer.explore_serial(*strategy, space);
        let factorized = explorer.explore(*strategy, space);
        assert_eq!(serial, factorized, "{strategy}: paths diverged");

        let ppp = time_path(
            || {
                black_box(explorer.explore_serial(*strategy, black_box(space)));
            },
            points,
            iterations,
        );
        let fact = time_path(
            || {
                black_box(explorer.explore(*strategy, black_box(space)));
            },
            points,
            iterations,
        );
        let stages = stage_breakdown(&explorer, *strategy, &restricted, stage_reps, iterations);
        let speedup = ppp.total_us / fact.total_us;
        let speedup_vs_pr1 = pr1_us / fact.us_per_point;
        let speedup_vs_prev = prev_us / fact.us_per_point;

        eprintln!(
            "{strategy}: point-per-point {:.2} µs/pt, factorized {:.2} µs/pt ({speedup:.2}x live, {speedup_vs_prev:.2}x vs PR5, {speedup_vs_pr1:.2}x vs PR1 seed); stages: schedule {:.2} µs, dispatch {:.2} µs, stats {:.2} µs",
            ppp.us_per_point,
            fact.us_per_point,
            stages.schedule_us,
            stages.dispatch_us,
            stages.stats_us,
        );
        entries.push(format!(
            "    {{\n      \"strategy\": \"{strategy:?}\",\n      \"grid\": [{}, {}, {}, {}],\n      \"points\": {points},\n      \"supply_groups\": {},\n      \"point_per_point\": {},\n      \"factorized\": {},\n      \"stages\": {},\n      \"speedup\": {speedup:.3},\n      \"prev_us_per_point\": {prev_us:.3},\n      \"speedup_vs_prev\": {speedup_vs_prev:.3},\n      \"pr1_seed_us_per_point\": {pr1_us:.1},\n      \"speedup_vs_pr1_seed\": {speedup_vs_pr1:.3}\n    }}",
            restricted.solar.2,
            restricted.wind.2,
            restricted.battery.2,
            restricted.extra_capacity.2,
            restricted.solar.2 * restricted.wind.2,
            path_json(&ppp),
            path_json(&fact),
            stages_json(&stages),
        ));
    }

    // Provenance record over the same evaluations the correctness gate
    // compared. Timings above are machine-specific; this record is not —
    // any checkout can re-derive it bit-for-bit.
    let manifest = sweep_manifest(smoke);

    let json = format!(
        "{{\n  \"benchmark\": \"design_space_sweep\",\n  \"mode\": \"{}\",\n  \"iterations\": {iterations},\n  \"threads\": {},\n  \"pr1_seed_note\": \"pr1_seed_us_per_point: explore_serial of the PR1 seed build (80d1d44) on the same grids and machine; static because those code paths no longer exist\",\n  \"prev_note\": \"prev_us_per_point: factorized µs/pt of the PR5 build (before the permutation cache and lane-chunked kernels) on the full grids and the same machine\",\n  \"stages_note\": \"stages: per-call µs of each pipeline stage probed on the grid's central design point with the supply (and for CAS the cost order) prebuilt; fused arms report one stage, and stage sums need not match us_per_point\",\n  \"manifest_note\": \"manifest: ce-manifest provenance record over every strategy's factorized sweep in case order; --check re-derives both hashes and fails on any drift\",\n  \"manifest\": {},\n  \"strategies\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        ce_parallel::max_threads(),
        manifest.to_json(),
        entries.join(",\n")
    );
    std::fs::write(out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");

    if smoke {
        // A smoke run doubles as a schema self-check, so CI catches a
        // drifted writer and a drifted committed artifact the same way.
        return check_schema(out_path);
    }
    ExitCode::SUCCESS
}

/// Parses `path` with `ce-serve`'s JSON parser and validates the
/// benchmark schema, so CI can verify the committed `BENCH_sweep.json`
/// without re-running the (machine-specific) timings.
fn check_schema(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench_sweep --check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let root = match Json::parse(&text) {
        Ok(root) => root,
        Err(err) => {
            eprintln!("bench_sweep --check: {path} is not valid JSON: {err:?}");
            return ExitCode::FAILURE;
        }
    };

    let mut errors: Vec<String> = Vec::new();
    if root.get("benchmark").and_then(Json::as_str) != Some("design_space_sweep") {
        errors.push("benchmark != \"design_space_sweep\"".to_string());
    }
    for key in ["iterations", "threads"] {
        if !root
            .get(key)
            .and_then(Json::as_f64)
            .is_some_and(|v| v >= 1.0)
        {
            errors.push(format!("{key}: missing or < 1"));
        }
    }
    for key in ["pr1_seed_note", "prev_note", "stages_note", "manifest_note"] {
        if root.get(key).and_then(Json::as_str).is_none() {
            errors.push(format!("{key}: missing"));
        }
    }

    let expected = [
        "RenewablesOnly",
        "RenewablesBattery",
        "RenewablesCas",
        "RenewablesBatteryCas",
    ];
    let strategies = root
        .get("strategies")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    if strategies.len() != expected.len() {
        errors.push(format!(
            "strategies: expected {} entries, found {}",
            expected.len(),
            strategies.len()
        ));
    }
    for (entry, name) in strategies.iter().zip(expected) {
        let label = |field: &str| format!("strategies[{name}].{field}");
        if entry.get("strategy").and_then(Json::as_str) != Some(name) {
            errors.push(format!("strategies: expected entry for {name}"));
            continue;
        }
        if entry
            .get("grid")
            .and_then(Json::as_array)
            .map(|axes| axes.len())
            != Some(4)
        {
            errors.push(label("grid: not a 4-axis array"));
        }
        for field in [
            "points",
            "supply_groups",
            "speedup",
            "prev_us_per_point",
            "speedup_vs_prev",
            "pr1_seed_us_per_point",
            "speedup_vs_pr1_seed",
        ] {
            if !entry
                .get(field)
                .and_then(Json::as_f64)
                .is_some_and(|v| v > 0.0)
            {
                errors.push(label(&format!("{field}: missing or not > 0")));
            }
        }
        for path_key in ["point_per_point", "factorized"] {
            for field in ["total_us", "us_per_point", "points_per_sec"] {
                if !entry
                    .get(path_key)
                    .and_then(|p| p.get(field))
                    .and_then(Json::as_f64)
                    .is_some_and(|v| v > 0.0)
                {
                    errors.push(label(&format!("{path_key}.{field}: missing or not > 0")));
                }
            }
        }
        for field in ["schedule_us", "dispatch_us", "stats_us"] {
            if !entry
                .get("stages")
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64)
                .is_some_and(|v| v >= 0.0)
            {
                errors.push(label(&format!("stages.{field}: missing or negative")));
            }
        }
    }

    // Provenance: lift the embedded manifest back into a typed record,
    // check it is the canonical byte spelling, then re-run the sweep
    // evaluations and demand both hashes reproduce bit-for-bit. The
    // code fingerprint is deliberately not compared (a changed checkout
    // legitimately re-fingerprints); the data hashes are load-bearing.
    let smoke = root.get("mode").and_then(Json::as_str) == Some("smoke");
    match root.get("manifest") {
        None => errors.push("manifest: missing".to_string()),
        Some(block) => match manifest_from_json(block) {
            Err(e) => errors.push(e),
            Ok(manifest) => {
                if block.encode() != manifest.to_json() {
                    errors.push(
                        "manifest: embedded block is not the canonical byte spelling".to_string(),
                    );
                }
                let fresh = sweep_manifest(smoke);
                if let Err(e) = verify(&manifest, |_| Recomputed {
                    input_hash: fresh.input_hash.clone(),
                    result_hash: fresh.result_hash.clone(),
                }) {
                    errors.push(format!("manifest: {e}"));
                }
            }
        },
    }

    if errors.is_empty() {
        println!(
            "{path}: schema ok, manifest re-derived ({} strategies, mode {})",
            strategies.len(),
            root.get("mode").and_then(Json::as_str).unwrap_or("full"),
        );
        ExitCode::SUCCESS
    } else {
        for error in &errors {
            eprintln!("bench_sweep --check: {path}: {error}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut check = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            other => path = Some(other.to_string()),
        }
    }
    if check {
        return check_schema(&path.unwrap_or_else(|| "BENCH_sweep.json".to_string()));
    }
    let out_path = path.unwrap_or_else(|| {
        if smoke {
            "target/BENCH_sweep_smoke.json".to_string()
        } else {
            "BENCH_sweep.json".to_string()
        }
    });
    run_bench(smoke, &out_path)
}
