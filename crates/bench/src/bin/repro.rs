//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--fast] all          # every artifact, paper order
//! repro [--fast] fig7 fig15   # specific artifacts
//! repro list                  # available ids
//! ```

use ce_bench::context::{Context, Fidelity};
use ce_bench::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();

    if ids.is_empty() || ids == ["help"] {
        eprintln!("usage: repro [--fast] <all | list | id...>");
        eprintln!("ids: {}", experiments::ALL_IDS.join(" "));
        return ExitCode::FAILURE;
    }
    if ids == ["list"] {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let fidelity = if fast { Fidelity::Fast } else { Fidelity::Full };
    let mut ctx = Context::new(fidelity);
    let selected: Vec<&str> = if ids == ["all"] {
        experiments::ALL_IDS.to_vec()
    } else {
        ids
    };

    for id in selected {
        match experiments::run(id, &mut ctx) {
            Some(report) => {
                println!("================ {id} ================");
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                eprintln!("ids: {}", experiments::ALL_IDS.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
