//! Shared experiment context: the canonical year, seed, fleet, and cached
//! grid datasets.

use ce_core::CarbonExplorer;
use ce_datacenter::{DataCenterSite, Fleet};
use ce_grid::{BalancingAuthority, GridDataset};
use std::collections::BTreeMap;

/// The canonical data year used throughout the paper's evaluation.
pub const YEAR: i32 = 2020;
/// The canonical synthesis seed; every artifact is reproducible from it.
pub const SEED: u64 = 7;

/// How exhaustively to sweep design spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Coarse grids — seconds per experiment; used by tests.
    Fast,
    /// The full grids behind the committed EXPERIMENTS.md numbers.
    Full,
}

impl Fidelity {
    /// Steps per renewable axis.
    pub fn renewable_steps(&self) -> usize {
        match self {
            Fidelity::Fast => 4,
            Fidelity::Full => 7,
        }
    }

    /// Steps on the battery axis.
    pub fn battery_steps(&self) -> usize {
        match self {
            Fidelity::Fast => 3,
            Fidelity::Full => 7,
        }
    }

    /// Steps on the extra-capacity axis.
    pub fn capacity_steps(&self) -> usize {
        match self {
            Fidelity::Fast => 2,
            Fidelity::Full => 4,
        }
    }

    /// Local-refinement rounds after the coarse sweep.
    pub fn refine_rounds(&self) -> usize {
        match self {
            Fidelity::Fast => 1,
            Fidelity::Full => 2,
        }
    }
}

/// Lazily caches grid datasets and demand traces so experiments that share
/// a region don't re-synthesize.
#[derive(Debug)]
pub struct Context {
    fleet: Fleet,
    grids: BTreeMap<BalancingAuthority, GridDataset>,
    /// The sweep resolution experiments should use.
    pub fidelity: Fidelity,
}

impl Context {
    /// A context at the given fidelity.
    pub fn new(fidelity: Fidelity) -> Self {
        Self {
            fleet: Fleet::meta_us(),
            grids: BTreeMap::new(),
            fidelity,
        }
    }

    /// The Meta US fleet (Table 1).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The (cached) synthetic grid year for `ba`.
    pub fn grid(&mut self, ba: BalancingAuthority) -> &GridDataset {
        self.grids
            .entry(ba)
            .or_insert_with(|| GridDataset::synthesize(ba, YEAR, SEED))
    }

    /// The site for a state code.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not in Table 1.
    pub fn site(&self, state: &str) -> DataCenterSite {
        self.fleet
            .site(state)
            .unwrap_or_else(|| panic!("state {state} not in Table 1"))
            .clone()
    }

    /// A fully wired explorer for a site (paper defaults: 40% flexible,
    /// 100% DoD).
    pub fn explorer(&mut self, state: &str) -> CarbonExplorer {
        let site = self.site(state);
        let grid = self.grid(site.ba()).clone();
        CarbonExplorer::new(site.demand_trace(YEAR, SEED), grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_cached() {
        let mut ctx = Context::new(Fidelity::Fast);
        let a = ctx.grid(BalancingAuthority::PACE).clone();
        let b = ctx.grid(BalancingAuthority::PACE).clone();
        assert_eq!(a, b);
    }

    #[test]
    fn explorer_wires_site_to_its_ba() {
        let mut ctx = Context::new(Fidelity::Fast);
        let explorer = ctx.explorer("UT");
        assert_eq!(explorer.grid().ba(), BalancingAuthority::PACE);
        assert!((explorer.demand().mean() - 19.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "not in Table 1")]
    fn unknown_state_panics() {
        Context::new(Fidelity::Fast).site("ZZ");
    }

    #[test]
    fn fidelity_levels_differ() {
        assert!(Fidelity::Full.renewable_steps() > Fidelity::Fast.renewable_steps());
        assert!(Fidelity::Full.battery_steps() > Fidelity::Fast.battery_steps());
        assert!(Fidelity::Full.capacity_steps() > Fidelity::Fast.capacity_steps());
    }
}
