//! Design-strategy experiments: Figures 6, 7, 8, 9, 11, 12.

use crate::context::Context;
use ce_battery::{simulate_dispatch, ClcBattery};
use ce_core::report::{render_table, sparkline};
use ce_core::{renewable_coverage, Scenario};
use ce_datacenter::DataCenterSite;
use ce_grid::GridDataset;
use ce_scheduler::{
    additional_capacity_fraction, required_capacity_for_full_coverage, CasConfig, GreedyScheduler,
};
use ce_timeseries::resample::{average_day_profile, tile_day_profile};
use ce_timeseries::HourlySeries;
use std::fmt::Write as _;

/// Evenly spaced investment levels up to `max`.
fn axis(max: f64, steps: usize) -> Vec<f64> {
    (0..steps)
        .map(|i| max * i as f64 / (steps - 1).max(1) as f64)
        .collect()
}

/// Coverage percent of a site's demand under a (solar, wind) investment.
fn coverage_percent(demand: &HourlySeries, grid: &GridDataset, solar: f64, wind: f64) -> f64 {
    let supply = grid.scaled_renewables(solar, wind);
    renewable_coverage(demand, &supply)
        .expect("aligned")
        .percent()
}

/// Figure 6: hourly operational carbon intensity of the three supply
/// scenarios for the Utah datacenter.
pub fn fig6(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
    let grid = ctx.grid(site.ba()).clone();
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());

    // 24/7 mitigation: five hours of battery plus 40% CAS.
    let mut battery = ClcBattery::lfp(5.0 * site.avg_power_mw(), 1.0);
    let mitigated = ce_scheduler::combined_dispatch(
        &mut battery,
        &demand,
        &supply,
        ce_scheduler::CombinedConfig {
            max_capacity_mw: demand.max().unwrap() * 1.5,
            flexible_ratio: 0.4,
            window_hours: 24,
        },
    )
    .expect("aligned");

    let mut out = String::from(
        "Figure 6: Hourly operational carbon intensity of DC energy supply scenarios (UT)\n\n",
    );
    for scenario in Scenario::ALL {
        let intensity = ce_core::scenario::hourly_intensity(
            scenario,
            &demand,
            &supply,
            &grid,
            Some(&mitigated.unmet),
        )
        .expect("aligned");
        let profile = average_day_profile(&intensity);
        let _ = writeln!(
            out,
            "{:<17} avg {:>6.4} t/MWh  avg-day [{}]",
            scenario.label(),
            intensity.mean(),
            sparkline(&profile)
        );
    }
    out.push_str("\nOrdering: Grid Mix > Net Zero > 24/7 Carbon Free (paper Figure 6)\n");
    out
}

/// Figure 7: 24/7 coverage with varying wind and solar investments for the
/// three representative regions, with Meta's actual investment marked.
pub fn fig7(ctx: &mut Context) -> String {
    let steps = ctx.fidelity.renewable_steps().max(5);
    let mut out = String::from(
        "Figure 7: 24/7 coverage (%) vs wind/solar investment (rows: wind MW, cols: solar MW)\n",
    );
    for state in ["OR", "NC", "UT"] {
        let site = ctx.site(state);
        let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
        let grid = ctx.grid(site.ba()).clone();
        let max_invest = 20.0 * site.avg_power_mw();
        let levels = axis(max_invest, steps);

        let _ = writeln!(
            out,
            "\n--- {} ({}), AVG DC Power: {:.0} MW ---",
            site.name(),
            site.ba().regime(),
            site.avg_power_mw()
        );
        let headers: Vec<String> = std::iter::once("wind\\solar".to_string())
            .chain(levels.iter().map(|s| format!("{s:.0}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        // steps² coverage evaluations per site: fan out one wind level
        // (one table row) per task, rows collected in axis order.
        let rows: Vec<Vec<String>> = ce_parallel::par_map(&levels, |&w| {
            std::iter::once(format!("{w:.0}"))
                .chain(
                    levels
                        .iter()
                        .map(|&s| format!("{:.0}", coverage_percent(&demand, &grid, s, w))),
                )
                .collect()
        });
        out.push_str(&render_table(&header_refs, &rows));
        let meta_cov = coverage_percent(&demand, &grid, site.solar_mw(), site.wind_mw());
        let _ = writeln!(
            out,
            "Meta investment (solar {:.0} MW, wind {:.0} MW): {:.0}% coverage",
            site.solar_mw(),
            site.wind_mw(),
            meta_cov
        );
    }
    out.push_str("\nSolar-only regions plateau near ~50-55%; hybrid regions climb highest.\n");
    out
}

/// Minimum total investment (MW) along a fixed solar:wind mix reaching a
/// target coverage, or `None` if unreachable even at `max_total`.
fn investment_for_coverage(
    demand: &HourlySeries,
    grid: &GridDataset,
    solar_share: f64,
    target_percent: f64,
    max_total: f64,
) -> Option<f64> {
    let cov = |total: f64| {
        coverage_percent(
            demand,
            grid,
            total * solar_share,
            total * (1.0 - solar_share),
        )
    };
    if cov(max_total) < target_percent {
        return None;
    }
    let (mut lo, mut hi) = (0.0, max_total);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if cov(mid) < target_percent {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Figure 8: the long tail of renewable investment for the Oregon
/// datacenter, and the danger of assuming average-day output.
pub fn fig8(ctx: &mut Context) -> String {
    let site = ctx.site("OR");
    let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
    let grid = ctx.grid(site.ba()).clone();
    // BPAT is a wind grid: use a wind-dominant mix matching its resources.
    let solar_share = 0.1;
    let max_total = 4000.0 * site.avg_power_mw();

    let mut out = String::from("Figure 8: The long tail to reach 100% coverage (Oregon)\n\n");
    let mut invest95 = None;
    let mut invest999 = None;
    for target in [50.0, 80.0, 90.0, 95.0, 99.0, 99.9] {
        let invest = investment_for_coverage(&demand, &grid, solar_share, target, max_total);
        match invest {
            Some(mw) => {
                let _ = writeln!(
                    out,
                    "coverage {target:>5.1}% needs {mw:>12.0} MW of renewables"
                );
                // ce:allow(float-eq, reason = "target is drawn from the literal list above; comparing a literal to itself is exact")
                if target == 95.0 {
                    invest95 = Some(mw);
                }
                // ce:allow(float-eq, reason = "target is drawn from the literal list above; comparing a literal to itself is exact")
                if target == 99.9 {
                    invest999 = Some(mw);
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "coverage {target:>5.1}% unreachable below {max_total:.0} MW"
                );
            }
        }
    }
    if let (Some(a), Some(b)) = (invest95, invest999) {
        let _ = writeln!(
            out,
            "\n95% → 99.9% needs {:.1}x the investment of 0% → 95% (paper: >5x)",
            (b - a) / a
        );
    }

    // The average-day counterfactual: replace supply with its average-day
    // profile and the tail almost disappears.
    let supply_at =
        |total: f64| grid.scaled_renewables(total * solar_share, total * (1.0 - solar_share));
    let avg_day_coverage = |total: f64| {
        let supply = supply_at(total);
        let profile = average_day_profile(&supply);
        let tiled = tile_day_profile(supply.start(), &profile, supply.len() / 24);
        let demand_trunc = demand.window(0, tiled.len()).expect("fits");
        renewable_coverage(&demand_trunc, &tiled)
            .expect("aligned")
            .percent()
    };
    let mut naive_full = None;
    for i in 1..=400 {
        let total = max_total * i as f64 / 400.0;
        if avg_day_coverage(total) >= 99.9 {
            naive_full = Some(total);
            break;
        }
    }
    if let (Some(naive), Some(real)) = (naive_full, invest999) {
        let _ = writeln!(
            out,
            "assuming average-day output, 99.9% appears to need only {naive:.0} MW — {:.0}x less than reality ({real:.0} MW); fine-grained hourly data is essential",
            real / naive
        );
    }
    out
}

/// Battery capacity (MWh) needed for 100% coverage at a given supply, by
/// bisection over `ce_battery::simulate_dispatch`; `None` if `max_mwh`
/// does not suffice.
fn battery_for_full_coverage(
    demand: &HourlySeries,
    supply: &HourlySeries,
    max_mwh: f64,
) -> Option<f64> {
    let unmet = |capacity: f64| {
        let mut battery = ClcBattery::lfp(capacity, 1.0);
        simulate_dispatch(&mut battery, demand, supply)
            .expect("aligned")
            .unmet
            .sum()
    };
    if unmet(max_mwh) > 1e-6 {
        return None;
    }
    let (mut lo, mut hi) = (0.0, max_mwh);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if unmet(mid) > 1e-6 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Figure 9: battery capacity (in hours of datacenter compute) required
/// for 24/7 coverage at varying renewable investments (Utah), with the
/// North Carolina comparison.
pub fn fig9(ctx: &mut Context) -> String {
    let steps = ctx.fidelity.renewable_steps().max(4);
    let mut out = String::from(
        "Figure 9: Battery hours needed for 24/7 renewable coverage (rows: wind MW, cols: solar MW)\n",
    );
    for state in ["UT", "NC"] {
        let site = ctx.site(state);
        let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
        let grid = ctx.grid(site.ba()).clone();
        let avg = site.avg_power_mw();
        let max_batt = 400.0 * avg; // effectively unbounded
        let levels = axis(25.0 * avg, steps);

        let _ = writeln!(out, "\n--- {} (AVG DC Power: {avg:.0} MW) ---", site.name());
        let headers: Vec<String> = std::iter::once("wind\\solar".to_string())
            .chain(levels.iter().skip(1).map(|s| format!("{s:.0}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = levels
            .iter()
            .map(|&w| {
                std::iter::once(format!("{w:.0}"))
                    .chain(levels.iter().skip(1).map(|&s| {
                        let supply = grid.scaled_renewables(s, w);
                        match battery_for_full_coverage(&demand, &supply, max_batt) {
                            Some(mwh) => format!("{:.1}h", mwh / avg),
                            None => "-".to_string(),
                        }
                    }))
                    .collect()
            })
            .collect();
        out.push_str(&render_table(&header_refs, &rows));

        // Meta's actual investment plus battery.
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        match battery_for_full_coverage(&demand, &supply, max_batt) {
            Some(mwh) => {
                let _ = writeln!(
                    out,
                    "at Meta's investment: {:.1} hours of battery for 24/7 (paper: UT ~5h, NC ~14h)",
                    mwh / avg
                );
            }
            None => {
                let _ = writeln!(out, "at Meta's investment: no finite battery reaches 24/7");
            }
        }
    }
    out
}

/// Figure 11: three-day carbon-aware scheduling illustration for the Utah
/// datacenter (P_DC_MAX = 17.6 MW, 10% flexible, daily completion).
pub fn fig11(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
    let grid = ctx.grid(site.ba()).clone();
    let intensity = grid.carbon_intensity();

    // Three spring days.
    let offset = 100 * 24;
    let demand3 = demand.window(offset, 72).expect("window fits");
    let intensity3 = intensity.window(offset, 72).expect("window fits");

    let scheduler = GreedyScheduler::new(CasConfig {
        max_capacity_mw: 17.6,
        flexible_ratio: 0.10,
    });
    let result = scheduler
        .schedule_by_cost(&demand3, &intensity3)
        .expect("aligned");

    let mut out = String::from(
        "Figure 11: Carbon-aware scheduling illustration, Utah DC, 3 days\n(P_DC_MAX = 17.6 MW, 10% flexible, daily SLO)\n\n",
    );
    let _ = writeln!(
        out,
        "grid carbon intensity [{}]",
        sparkline(intensity3.values())
    );
    let _ = writeln!(
        out,
        "DC power without CAS  [{}]",
        sparkline(demand3.values())
    );
    let _ = writeln!(
        out,
        "DC power with CAS     [{}]",
        sparkline(result.shifted_demand.values())
    );
    let _ = writeln!(
        out,
        "\nenergy shifted: {:.1} MWh over 3 days",
        result.energy_shifted_mwh
    );
    let _ = writeln!(
        out,
        "peak power: {:.1} MW → {:.1} MW (cap 17.6 MW)",
        demand3.max().unwrap(),
        result.shifted_demand.max().unwrap()
    );
    let weighted = |d: &HourlySeries| {
        d.zip_with(&intensity3, |p, i| p * i)
            .expect("aligned")
            .sum()
    };
    let _ = writeln!(
        out,
        "carbon-weighted energy: {:.1} → {:.1} tCO2",
        weighted(&demand3),
        weighted(&result.shifted_demand)
    );
    out
}

/// Figure 12: server capacity required to reach 24/7 with CAS alone
/// (all workloads flexible), Utah.
pub fn fig12(ctx: &mut Context) -> String {
    let steps = ctx.fidelity.renewable_steps().max(4);
    let site = ctx.site("UT");
    let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
    let grid = ctx.grid(site.ba()).clone();
    let avg = site.avg_power_mw();
    let peak = demand.max().unwrap();
    let levels = axis(60.0 * avg, steps);

    let mut out = String::from(
        "Figure 12: Additional server capacity for 24/7 via scheduling alone (UT, 100% flexible)\n\n",
    );
    let headers: Vec<String> = std::iter::once("wind\\solar".to_string())
        .chain(levels.iter().skip(1).map(|s| format!("{s:.0}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = levels
        .iter()
        .map(|&w| {
            std::iter::once(format!("{w:.0}"))
                .chain(levels.iter().skip(1).map(|&s| {
                    let supply = grid.scaled_renewables(s, w);
                    match required_capacity_for_full_coverage(&demand, &supply, 1.0)
                        .expect("aligned")
                    {
                        Some(cap) => format!("+{:.0}%", ((cap - peak) / peak).max(0.0) * 100.0),
                        None => "-".to_string(),
                    }
                }))
                .collect()
        })
        .collect();
    out.push_str(&render_table(&header_refs, &rows));
    out.push_str(
        "\n'-' marks investments where scheduling alone cannot reach 24/7.\nPaper: additional capacity ranges from 19% to over 100%.\n",
    );
    out
}

/// Helper shared with the holistic experiments: coverage gain from CAS at
/// a site's Meta investment.
pub fn cas_gain_at_meta_investment(
    site: &DataCenterSite,
    demand: &HourlySeries,
    grid: &GridDataset,
    flexible_ratio: f64,
) -> (f64, f64, f64) {
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    let before = renewable_coverage(demand, &supply)
        .expect("aligned")
        .percent();
    let scheduler = GreedyScheduler::new(CasConfig {
        max_capacity_mw: demand.max().unwrap_or(0.0) * 2.0,
        flexible_ratio,
    });
    let result = scheduler.schedule(demand, &supply).expect("aligned");
    let after = renewable_coverage(&result.shifted_demand, &supply)
        .expect("aligned")
        .percent();
    let extra = additional_capacity_fraction(demand, &result.shifted_demand);
    (before, after, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    fn ctx() -> Context {
        Context::new(Fidelity::Fast)
    }

    #[test]
    fn fig6_orders_scenarios() {
        let out = fig6(&mut ctx());
        // Extract the three means and verify the ordering claim printed.
        let means: Vec<f64> = out
            .lines()
            .filter(|l| l.contains("avg "))
            .filter_map(|l| {
                l.split("avg")
                    .nth(1)?
                    .trim()
                    .split(' ')
                    .next()?
                    .parse()
                    .ok()
            })
            .collect();
        assert_eq!(means.len(), 3);
        assert!(means[0] > means[1], "grid mix > net zero: {means:?}");
        assert!(means[1] > means[2], "net zero > 24/7: {means:?}");
    }

    #[test]
    fn fig7_solar_region_caps_near_fifty() {
        let out = fig7(&mut ctx());
        assert!(out.contains("Forest City"));
        assert!(out.contains("Meta investment"));
    }

    #[test]
    fn fig8_shows_long_tail() {
        let out = fig8(&mut ctx());
        assert!(out.contains("95%") || out.contains("95.0%"));
        assert!(out.contains("needs"));
    }

    #[test]
    fn fig9_reports_battery_hours() {
        let out = fig9(&mut ctx());
        assert!(out.contains("Eagle Mountain"));
        assert!(out.contains("hours of battery") || out.contains("no finite battery"));
    }

    #[test]
    fn fig11_shifts_toward_clean_hours() {
        let out = fig11(&mut ctx());
        let weights: Vec<f64> = out
            .lines()
            .find(|l| l.contains("carbon-weighted"))
            .map(|l| {
                l.split(':')
                    .nth(1)
                    .unwrap()
                    .replace("tCO2", "")
                    .split('→')
                    .filter_map(|v| v.trim().parse().ok())
                    .collect()
            })
            .expect("carbon-weighted line");
        assert_eq!(weights.len(), 2);
        assert!(weights[1] <= weights[0] + 1e-9, "{weights:?}");
    }

    #[test]
    fn fig12_reports_capacity_percentages() {
        let out = fig12(&mut ctx());
        assert!(out.contains('%'));
        assert!(out.contains("wind\\solar"));
    }

    #[test]
    fn cas_gain_helper_improves_coverage() {
        let mut c = ctx();
        let site = c.site("UT");
        let demand = site.demand_trace(crate::context::YEAR, crate::context::SEED);
        let grid = c.grid(site.ba()).clone();
        let (before, after, extra) = cas_gain_at_meta_investment(&site, &demand, &grid, 0.4);
        assert!(after >= before);
        assert!(extra >= 0.0);
    }
}
