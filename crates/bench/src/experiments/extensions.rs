//! Extension and ablation experiments beyond the paper's figures:
//! credit-matching granularity, battery-model and scheduler ablations,
//! geographic load migration, and multi-year battery aging.

use crate::context::{Context, SEED, YEAR};
use ce_battery::{simulate_dispatch, simulate_fleet_aging, ClcBattery, IdealBattery};
use ce_core::accounting::{match_credits, MatchingGranularity};
use ce_core::report::render_table;
use ce_core::Coverage;
use ce_core::{sensitivity, StrategyKind};
use ce_scheduler::{
    lp_schedule, migrate_load, online_schedule, CasConfig, GreedyScheduler, MigrationConfig,
    SpatialSite, TieredScheduler,
};
use ce_timeseries::HourlySeries;
use std::fmt::Write as _;

/// Credit-matching granularity: how much of the "Net Zero" claim survives
/// tightening the accounting period (the paper's §3.2 argument,
/// quantified).
pub fn accounting(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand = site.demand_trace(YEAR, SEED);
    let grid = ctx.grid(site.ba()).clone();
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    let intensity = grid.carbon_intensity();

    let mut out = String::from("Credit-matching granularity (UT, Meta's investment):\n\n");
    let headers = ["granularity", "matched", "residual tCO2/year"];
    let rows: Vec<Vec<String>> = MatchingGranularity::ALL
        .iter()
        .map(|&g| {
            let report = match_credits(&demand, &supply, &intensity, g).expect("aligned");
            vec![
                g.label().to_string(),
                format!("{:.2}%", report.matched_fraction() * 100.0),
                format!("{:.0}", report.residual_emissions_tons),
            ]
        })
        .collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\nAnnual matching reads (near) 100% while hourly matching exposes the real residual —\nthe gap between Net Zero and 24/7 (paper §3.2).\n",
    );
    out
}

/// Battery-model ablation: ideal vs LFP at two DoD settings vs sodium-ion,
/// all at the same nameplate capacity.
pub fn ablation_battery(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand = site.demand_trace(YEAR, SEED);
    let grid = ctx.grid(site.ba()).clone();
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    let capacity = 5.0 * site.avg_power_mw();

    let mut rows = Vec::new();
    let mut run = |label: &str, battery: &mut dyn ce_battery::BatteryModel| {
        let result = simulate_dispatch(battery, &demand, &supply).expect("aligned");
        let coverage = Coverage::from_unmet(&demand, &result.unmet).expect("aligned");
        rows.push(vec![
            label.to_string(),
            format!("{:.3}%", coverage.percent()),
            format!("{:.0}", result.unmet.sum()),
            format!("{:.0}", result.equivalent_cycles),
        ]);
    };
    run("ideal (lossless)", &mut IdealBattery::new(capacity));
    run("LFP, 100% DoD", &mut ClcBattery::lfp(capacity, 1.0));
    run("LFP, 80% DoD", &mut ClcBattery::lfp(capacity, 0.8));
    run(
        "sodium-ion, 100% DoD",
        &mut ClcBattery::sodium_ion(capacity, 1.0),
    );

    let mut out =
        format!("Battery-model ablation (UT, {capacity:.0} MWh = 5 hours of compute):\n\n");
    out.push_str(&render_table(
        &["model", "coverage", "unmet MWh", "cycles"],
        &rows,
    ));
    out.push_str("\nThe C/L/C losses cost a few tenths of a point of coverage vs the ideal battery;\nDoD and chemistry matter less than capacity (paper §4.2's modular-model rationale).\n");
    out
}

/// Scheduler ablation on one quarter: greedy vs SLO-tiered vs LP-optimal
/// vs forecast-driven online scheduling.
pub fn ablation_scheduler(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand_full = site.demand_trace(YEAR, SEED);
    let grid = ctx.grid(site.ba()).clone();
    let supply_full = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    // One quarter keeps the LP run snappy.
    let demand = demand_full.window(0, 90 * 24).expect("window fits");
    let supply = supply_full.window(0, 90 * 24).expect("window fits");

    let deficit = |d: &HourlySeries| {
        d.zip_with(&supply, |p, s| (p - s).max(0.0))
            .expect("aligned")
            .sum()
    };
    let config = CasConfig {
        max_capacity_mw: demand.max().expect("non-empty") * 1.5,
        flexible_ratio: 0.4,
    };

    let mut rows = Vec::new();
    rows.push(vec![
        "no scheduling".into(),
        format!("{:.1}", deficit(&demand)),
    ]);

    let greedy = GreedyScheduler::new(config)
        .schedule(&demand, &supply)
        .expect("aligned");
    rows.push(vec![
        "greedy (paper, daily window)".into(),
        format!("{:.1}", deficit(&greedy.shifted_demand)),
    ]);

    let tiered = TieredScheduler::meta_tiers(config.max_capacity_mw, 0.4)
        .schedule(&demand, &supply)
        .expect("aligned");
    rows.push(vec![
        "SLO-tiered (Fig. 10 windows)".into(),
        format!("{:.1}", deficit(&tiered)),
    ]);

    let lp = lp_schedule(&demand, &supply, config).expect("day LPs solvable");
    rows.push(vec![
        "LP-optimal (oracle)".into(),
        format!("{:.1}", deficit(&lp)),
    ]);

    let online = online_schedule(&demand, &supply, config).expect("aligned");
    rows.push(vec![
        "online (seasonal-naive forecast)".into(),
        format!("{:.1}", online.deficit_mwh),
    ]);

    let mut out = String::from("Scheduler ablation (UT, first quarter, 40% flexible):\n\n");
    out.push_str(&render_table(
        &["scheduler", "renewable deficit MWh"],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\nonline-vs-oracle regret: {:.1}% — the cost of scheduling on forecasts instead of actuals",
        online.regret() * 100.0
    );
    out.push_str("the SLO-tiered scheduler is constrained by the ±1/±2/±4-hour tiers and lands between\nno scheduling and the daily-window greedy, which itself tracks the LP optimum closely.\n");
    out
}

/// Geographic load migration across three complementary regions.
pub fn migration(ctx: &mut Context) -> String {
    let mut sites = Vec::new();
    for state in ["OR", "TX", "NC"] {
        let site = ctx.site(state);
        let demand = site.demand_trace(YEAR, SEED);
        let grid = ctx.grid(site.ba()).clone();
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        let cap = demand.max().expect("non-empty") * 1.5;
        sites.push(SpatialSite {
            name: site.name().to_string(),
            demand,
            supply,
            max_capacity_mw: cap,
        });
    }
    let result = migrate_load(&sites, MigrationConfig::default()).expect("aligned fleets");
    let mut out =
        String::from("Geographic load migration (OR + TX + NC, 40% migratable, 2% overhead):\n\n");
    let _ = writeln!(
        out,
        "fleet renewable deficit: {:.0} MWh → {:.0} MWh ({:.1}% reduction)",
        result.deficit_before_mwh,
        result.deficit_after_mwh,
        (1.0 - result.deficit_after_mwh / result.deficit_before_mwh) * 100.0
    );
    let _ = writeln!(out, "energy migrated: {:.0} MWh/year", result.migrated_mwh);
    out.push_str(
        "\nSpatial shifting complements temporal shifting: Oregon's calm nights borrow Texas wind\n(the load-migration direction the paper cites as related work).\n",
    );
    out
}

/// Multi-year battery aging: coverage erosion as the cell fades.
pub fn aging(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand = site.demand_trace(YEAR, SEED);
    let grid = ctx.grid(site.ba()).clone();
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    let capacity = 5.0 * site.avg_power_mw();

    let years = simulate_fleet_aging(capacity, 1.0, &demand, &supply, 10).expect("aligned");
    let mut out =
        format!("Battery aging over 10 years (UT, {capacity:.0} MWh nameplate, 100% DoD):\n\n");
    let headers = ["year", "capacity", "unmet MWh", "cycles"];
    let rows: Vec<Vec<String>> = years
        .iter()
        .enumerate()
        .map(|(i, (fraction, unmet, cycles))| {
            vec![
                format!("{}", i + 1),
                format!("{:.1}%", fraction * 100.0),
                format!("{unmet:.0}"),
                format!("{cycles:.0}"),
            ]
        })
        .collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str("\nCapacity fade is slow at utility cycling rates; coverage planned on a fresh battery\nholds up well over the deployment's life (supports the paper's single-year sizing).\n");
    out
}

/// Tornado sensitivity of the optimal design to embodied-carbon
/// coefficients (paper §6: parameters "can be tuned as better data
/// becomes available").
pub fn sensitivity_study(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let explorer = ctx.explorer("UT");
    let avg = site.avg_power_mw();
    let space = ce_core::DesignSpace {
        solar: (0.0, 30.0 * avg, ctx.fidelity.renewable_steps()),
        wind: (0.0, 30.0 * avg, ctx.fidelity.renewable_steps()),
        battery: (0.0, 24.0 * avg, ctx.fidelity.battery_steps()),
        extra_capacity: (0.0, 0.0, 1),
    };
    let rows = sensitivity::tornado(&explorer, StrategyKind::RenewablesBattery, &space);
    let mut out = String::from(
        "Embodied-parameter sensitivity (UT, Renewables + Battery, published ranges):\n\n",
    );
    let headers = [
        "parameter",
        "low",
        "high",
        "total @low",
        "total @high",
        "swing t/y",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (lo, hi) = r.parameter.range();
            vec![
                r.parameter.label().to_string(),
                format!("{lo:.0}"),
                format!("{hi:.0}"),
                format!("{:.0}", r.total_at_low),
                format!("{:.0}", r.total_at_high),
                format!("{:.0}", r.swing()),
            ]
        })
        .collect();
    out.push_str(&render_table(&headers, &table));
    out.push_str("\nRows are sorted by swing: the largest uncertainty in the literature dominates the\ndesign's total carbon, which is why Carbon Explorer keeps these as parameters.\n");
    out
}

/// Seasonal breakdown: which month binds each region's coverage.
pub fn seasonal_study(ctx: &mut Context) -> String {
    let mut out = String::from(
        "Seasonal coverage breakdown at Meta's investments (binding month per region):\n\n",
    );
    let headers = [
        "site",
        "annual",
        "best month",
        "worst month",
        "worst coverage",
    ];
    let mut rows = Vec::new();
    for state in ["UT", "OR", "NC", "TX", "IA"] {
        let site = ctx.site(state);
        let demand = site.demand_trace(YEAR, SEED);
        let grid = ctx.grid(site.ba()).clone();
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        let months = ce_core::monthly_coverage(&demand, &supply).expect("aligned");
        let annual = ce_core::renewable_coverage(&demand, &supply).expect("aligned");
        let best = months
            .iter()
            .max_by(|a, b| a.coverage.partial_cmp(&b.coverage).expect("finite"))
            .expect("non-empty year");
        let worst = months
            .iter()
            .min_by(|a, b| a.coverage.partial_cmp(&b.coverage).expect("finite"))
            .expect("non-empty year");
        rows.push(vec![
            state.to_string(),
            format!("{:.1}%", annual.percent()),
            format!("month {} ({:.1}%)", best.month, best.coverage * 100.0),
            format!("month {}", worst.month),
            format!("{:.1}%", worst.coverage * 100.0),
        ]);
    }
    out.push_str(&render_table(&headers, &rows));
    out.push_str("\nThe worst month is what batteries and scheduling must be provisioned for —\nannual averages understate the problem (cf. Figure 5's seasonality).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    fn ctx() -> Context {
        Context::new(Fidelity::Fast)
    }

    #[test]
    fn accounting_shows_granularity_gap() {
        let out = accounting(&mut ctx());
        assert!(out.contains("hourly (24/7)"));
        assert!(out.contains("annual (Net Zero)"));
    }

    #[test]
    fn battery_ablation_orders_models() {
        let out = ablation_battery(&mut ctx());
        assert!(out.contains("ideal"));
        assert!(out.contains("sodium-ion"));
        // Parse unmet column: ideal must be the lowest.
        let unmet: Vec<f64> = out
            .lines()
            .filter(|l| l.contains('%'))
            .filter_map(|l| {
                let cells: Vec<&str> = l.split_whitespace().collect();
                cells.get(cells.len() - 2)?.parse().ok()
            })
            .collect();
        assert_eq!(unmet.len(), 4);
        for &u in &unmet[1..] {
            assert!(unmet[0] <= u + 1e-9, "ideal should have least unmet");
        }
    }

    #[test]
    fn scheduler_ablation_ranks_schedulers() {
        let out = ablation_scheduler(&mut ctx());
        let deficits: Vec<f64> = out
            .lines()
            .filter_map(|l| {
                if l.contains("scheduling")
                    || l.contains("greedy")
                    || l.contains("LP")
                    || l.contains("tiered")
                    || l.contains("online")
                {
                    l.split_whitespace().last()?.parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(deficits.len() >= 5);
        let (none, greedy, _tiered, lp, online) = (
            deficits[0],
            deficits[1],
            deficits[2],
            deficits[3],
            deficits[4],
        );
        assert!(
            lp <= greedy + 1e-6,
            "LP should be at least as good as greedy"
        );
        assert!(greedy <= none, "greedy should improve on no scheduling");
        assert!(online >= lp - 1e-6, "online cannot beat the oracle LP");
    }

    #[test]
    fn migration_reduces_fleet_deficit() {
        let out = migration(&mut ctx());
        assert!(out.contains("reduction"));
        assert!(out.contains("migrated"));
    }

    #[test]
    fn sensitivity_sorted_by_swing() {
        let out = sensitivity_study(&mut ctx());
        assert!(out.contains("battery kg/kWh"));
        assert!(out.contains("swing"));
    }

    #[test]
    fn seasonal_identifies_worst_month() {
        let out = seasonal_study(&mut ctx());
        assert!(out.contains("worst month"));
        assert!(out.contains("UT"));
    }

    #[test]
    fn aging_reports_ten_years() {
        let out = aging(&mut ctx());
        assert_eq!(
            out.lines()
                .filter(|l| l.trim().starts_with(|c: char| c.is_ascii_digit()))
                .count(),
            10
        );
        assert!(out.contains("100.0%"));
    }
}
