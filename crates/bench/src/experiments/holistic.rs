//! Holistic carbon-minimization experiments: Figures 14, 15, 16 and the
//! §5.2 DoD and CAS studies.

use crate::context::{Context, Fidelity, SEED, YEAR};
use crate::experiments::design::cas_gain_at_meta_investment;
use ce_battery::{simulate_dispatch, ClcBattery};
use ce_core::report::{render_table, sparkline};
use ce_core::{
    provenance, CarbonExplorer, DesignSpace, EnsembleSpec, ParetoFrontier, StrategyKind,
};
use ce_datacenter::DataCenterSite;
use ce_grid::GridDataset;
use std::fmt::Write as _;

/// The exploration grid for a site at a given fidelity.
pub fn space_for(site: &DataCenterSite, fidelity: Fidelity) -> DesignSpace {
    let avg = site.avg_power_mw();
    DesignSpace {
        solar: (0.0, 30.0 * avg, fidelity.renewable_steps()),
        wind: (0.0, 30.0 * avg, fidelity.renewable_steps()),
        battery: (0.0, 24.0 * avg, fidelity.battery_steps()),
        extra_capacity: (0.0, 1.0, fidelity.capacity_steps()),
    }
}

/// Figure 14 for a chosen subset of sites.
pub fn fig14_for_sites(ctx: &mut Context, states: &[&str]) -> String {
    let mut out = String::from(
        "Figure 14: Operational vs embodied footprint and Pareto frontiers (40% flexible workloads)\n",
    );
    // Grid synthesis needs `&mut ctx` (the dataset cache), so inputs are
    // prefetched serially; the sweeps themselves fan out per site and the
    // blocks are stitched back in input order.
    let inputs: Vec<_> = states
        .iter()
        .map(|state| {
            let site = ctx.site(state);
            let explorer = ctx.explorer(state);
            let space = space_for(&site, ctx.fidelity);
            (site, explorer, space)
        })
        .collect();
    let blocks = ce_parallel::par_map(&inputs, |(site, explorer, space)| {
        let mut block = String::new();
        let _ = writeln!(
            block,
            "\n--- {} ({}), AVG DC Power: {:.0} MW ---",
            site.name(),
            site.ba().regime(),
            site.avg_power_mw()
        );
        for strategy in StrategyKind::ALL {
            let evals = explorer.explore(strategy, space);
            let frontier = ParetoFrontier::from_evaluations(&evals);
            let _ = writeln!(
                block,
                "{} — frontier ({} points):",
                strategy,
                frontier.len()
            );
            for point in frontier.points().iter().take(8) {
                let _ = writeln!(
                    block,
                    "  embodied {:>9.0} t/y  operational {:>9.0} t/y  coverage {:>5.1}%",
                    point.embodied_tons(),
                    point.operational_tons,
                    point.coverage.percent()
                );
            }
            if let Some(best) = frontier.carbon_optimal() {
                let _ = writeln!(
                    block,
                    "  carbon-optimal: total {:.0} t/y at coverage {:.1}%",
                    best.total_tons(),
                    best.coverage.percent()
                );
            }
        }
        block
    });
    for block in blocks {
        out.push_str(&block);
    }
    out
}

/// Figure 14: Pareto frontiers for the three representative regions.
pub fn fig14(ctx: &mut Context) -> String {
    fig14_for_sites(ctx, &["OR", "NC", "UT"])
}

/// Figure 15 for a chosen subset of sites.
pub fn fig15_for_sites(ctx: &mut Context, states: &[&str]) -> String {
    let mut out = String::from(
        "Figure 15: Total footprint of the carbon-optimal setting of each solution, per MW of DC capacity\n\n",
    );
    let headers = [
        "site",
        "regime",
        "strategy",
        "coverage",
        "op t/MW",
        "emb t/MW",
        "total t/MW",
    ];
    let refine_rounds = ctx.fidelity.refine_rounds();
    let inputs: Vec<_> = states
        .iter()
        .map(|state| {
            let site = ctx.site(state);
            let explorer = ctx.explorer(state);
            let space = space_for(&site, ctx.fidelity);
            (state.to_string(), site, explorer, space)
        })
        .collect();
    let site_rows = ce_parallel::par_map(&inputs, |(state, site, explorer, space)| {
        let avg = site.avg_power_mw();
        StrategyKind::ALL
            .iter()
            .map(|&strategy| {
                let best = explorer
                    .optimal_refined(strategy, space, refine_rounds)
                    .expect("non-empty space");
                let annotation = if best.coverage.is_full() {
                    "★100%".to_string()
                } else {
                    format!("{:.0}%", best.coverage.percent())
                };
                vec![
                    state.clone(),
                    site.ba().regime().to_string(),
                    strategy.label().to_string(),
                    annotation,
                    format!("{:.0}", best.operational_tons / avg),
                    format!("{:.0}", best.embodied_tons() / avg),
                    format!("{:.0}", best.total_tons() / avg),
                ]
            })
            .collect::<Vec<_>>()
    });
    let rows: Vec<Vec<String>> = site_rows.into_iter().flatten().collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\n★ marks solutions whose carbon-optimal configuration reaches full 24/7 coverage.\n",
    );
    out
}

/// Figure 15: every Table 1 region × every strategy.
pub fn fig15(ctx: &mut Context) -> String {
    let states: Vec<&str> = vec![
        "NE", "OR", "UT", "NM", "TX", "IL", "VA", "OH", "NC", "IA", "GA", "TN", "AL",
    ];
    fig15_for_sites(ctx, &states)
}

/// Weather-year count in the `fig15-ensemble` robustness study.
pub const FIG15_ENSEMBLE_MEMBERS: usize = 7;

/// `fig15-ensemble` for a chosen subset of sites: each strategy's
/// carbon-optimal design, found on the canonical seed, is frozen and
/// re-scored across [`FIG15_ENSEMBLE_MEMBERS`] independently seeded
/// weather years. The coverage and total-carbon spreads bound how much
/// of a Fig. 15 number is the luck of one weather draw; each row carries
/// the content address (result hash) of the ensemble's provenance
/// manifest, whose input key names every member grid by its lineage.
pub fn fig15_ensemble_for_sites(ctx: &mut Context, states: &[&str]) -> String {
    let members = u64::try_from(FIG15_ENSEMBLE_MEMBERS).unwrap_or(u64::MAX);
    let mut out = format!(
        "Fig. 15 ensemble: carbon-optimal designs re-scored across {} seeded weather years (seeds {}..{})\n\n",
        FIG15_ENSEMBLE_MEMBERS,
        SEED,
        SEED.wrapping_add(members)
    );
    let headers = [
        "site",
        "strategy",
        "cov@7",
        "cov min/mean/max",
        "t/MW min~max (mean)",
        "manifest",
    ];
    let refine_rounds = ctx.fidelity.refine_rounds();
    let inputs: Vec<_> = states
        .iter()
        .map(|state| {
            let site = ctx.site(state);
            let explorer = ctx.explorer(state);
            let space = space_for(&site, ctx.fidelity);
            (state.to_string(), site, explorer, space)
        })
        .collect();
    let site_rows = ce_parallel::par_map(&inputs, |(state, site, explorer, space)| {
        let avg = site.avg_power_mw();
        let spec = EnsembleSpec::consecutive(YEAR, SEED, FIG15_ENSEMBLE_MEMBERS);
        // One synthesis per member year, shared across strategies; the
        // lineage keys also name each member in the manifests' input keys.
        let grids: Vec<GridDataset> = spec
            .seeds
            .iter()
            .map(|&seed| GridDataset::synthesize(site.ba(), YEAR, seed))
            .collect();
        let mut lineage = String::new();
        for grid in &grids {
            lineage.push_str(&grid.lineage_key());
        }
        let build = |seed: u64| {
            let grid = grids
                .iter()
                .find(|g| g.seed() == seed)
                .cloned()
                .unwrap_or_else(|| GridDataset::synthesize(site.ba(), YEAR, seed));
            CarbonExplorer::new(site.demand_trace(YEAR, seed), grid)
        };
        StrategyKind::ALL
            .iter()
            .filter_map(|&strategy| {
                let best = explorer.optimal_refined(strategy, space, refine_rounds)?;
                let result = spec.evaluate(strategy, &best.design, build);
                let cov = result.coverage_spread()?;
                let tons = result.total_tons_spread()?;
                let mut input_key = format!(
                    "experiment=fig15-ensemble;site={state};{lineage}strategy={};",
                    strategy.canonical_key()
                );
                for (name, value) in [
                    ("solar_mw", best.design.solar_mw),
                    ("wind_mw", best.design.wind_mw),
                    ("battery_mwh", best.design.battery_mwh),
                    (
                        "extra_capacity_fraction",
                        best.design.extra_capacity_fraction,
                    ),
                ] {
                    let _ = write!(input_key, "{name}={:016x};", value.to_bits());
                }
                let manifest = provenance::ensemble_manifest(site.ba().code(), &input_key, &result);
                Some(vec![
                    state.clone(),
                    strategy.label().to_string(),
                    format!("{:.1}%", best.coverage.percent()),
                    format!(
                        "{:.1}/{:.1}/{:.1}%",
                        cov.min * 100.0,
                        cov.mean * 100.0,
                        cov.max * 100.0
                    ),
                    format!(
                        "{:.0}~{:.0} ({:.0})",
                        tons.min / avg,
                        tons.max / avg,
                        tons.mean / avg
                    ),
                    manifest.address().chars().take(12).collect::<String>(),
                ])
            })
            .collect::<Vec<_>>()
    });
    let rows: Vec<Vec<String>> = site_rows.into_iter().flatten().collect();
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\ncov@7 is the canonical-seed coverage Fig. 15 reports; the spread across\n\
         weather years bounds its seed sensitivity. \"manifest\" is the first 12 hex\n\
         digits of each ensemble's content address — re-running this experiment on\n\
         any checkout must reproduce these digits exactly.\n",
    );
    out
}

/// `fig15-ensemble`: the three Fig. 14 representative regions.
pub fn fig15_ensemble(ctx: &mut Context) -> String {
    fig15_ensemble_for_sites(ctx, &["OR", "NC", "UT"])
}

/// Figure 16: battery charge-level distribution at the carbon-optimal
/// battery configuration (UT), at 100% and 80% DoD.
pub fn fig16(ctx: &mut Context) -> String {
    let site = ctx.site("UT");
    let demand = site.demand_trace(YEAR, SEED);
    let grid = ctx.grid(site.ba()).clone();
    // A working battery: supply tight enough that the battery cycles
    // (near-)daily, as at the paper's carbon-optimal configurations.
    let supply = grid.scaled_renewables(0.35 * site.solar_mw(), 0.35 * site.wind_mw());
    let capacity = 5.0 * site.avg_power_mw();

    let mut out =
        String::from("Figure 16: Battery charge-level distribution (UT, ~5 hours of battery)\n\n");
    for dod in [1.0, 0.8] {
        let mut battery = ClcBattery::lfp(capacity, dod);
        let result = simulate_dispatch(&mut battery, &demand, &supply).expect("aligned");
        let hist = result
            .charge_level_histogram(capacity, 10)
            .expect("bins > 0");
        let counts: Vec<f64> = hist.counts().iter().map(|&c| c as f64).collect();
        let edges = hist.counts()[0] + hist.counts()[9];
        let total = hist.total();
        let _ = writeln!(
            out,
            "DoD {:>3.0}%: SoC histogram [{}]  extreme bins hold {:.0}% of hours, {:.0} equivalent cycles",
            dod * 100.0,
            sparkline(&counts),
            100.0 * edges as f64 / total as f64,
            result.equivalent_cycles
        );
    }
    out.push_str("\nBatteries sit mostly full or mostly empty (paper: \"often fully charged or fully discharged\").\n");
    out
}

/// §5.2 DoD study: 80% DoD trades bigger batteries (more embodied carbon)
/// for longer life, lowering total carbon a few percent.
pub fn dod_study(ctx: &mut Context) -> String {
    let mut out = String::from("DoD study (§5.2): depth of discharge vs total carbon (UT)\n\n");
    let site = ctx.site("UT");
    let space = space_for(&site, ctx.fidelity);
    let base_explorer = ctx.explorer("UT");

    let mut results = Vec::new();
    for dod in [1.0, 0.8, 0.6] {
        let explorer = base_explorer.clone().with_dod(dod);
        let best = explorer
            .optimal_refined(
                StrategyKind::RenewablesBattery,
                &space,
                ctx.fidelity.refine_rounds(),
            )
            .expect("non-empty space");
        results.push((dod, best));
    }
    let headers = [
        "DoD",
        "batt MWh",
        "cycles/y",
        "emb batt t/y",
        "total t/y",
        "coverage",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(dod, best)| {
            vec![
                format!("{:.0}%", dod * 100.0),
                format!("{:.0}", best.design.battery_mwh),
                format!("{:.0}", best.battery_cycles),
                format!("{:.0}", best.embodied_battery_tons),
                format!("{:.0}", best.total_tons()),
                format!("{:.1}%", best.coverage.percent()),
            ]
        })
        .collect();
    out.push_str(&render_table(&headers, &rows));

    let t100 = results[0].1.total_tons();
    let t80 = results[1].1.total_tons();
    let _ = writeln!(
        out,
        "\n80% DoD changes total carbon by {:+.1}% vs 100% DoD (paper: ~-5% on average; tuning DoD is worth 3-9%)",
        (t80 - t100) / t100 * 100.0
    );
    let _ = writeln!(
        out,
        "cycle life at 80% DoD is 1.5x that at 100% (4500 vs 3000 cycles, paper §5.1)"
    );
    out
}

/// §5 CAS study: coverage gained by scheduling and the extra servers it
/// needs, per region.
pub fn cas_study(ctx: &mut Context) -> String {
    let mut out = String::from(
        "CAS study (§5): carbon-aware scheduling at Meta's investments (40% flexible)\n\n",
    );
    let states = ["NE", "OR", "UT", "NM", "TX", "VA", "NC", "IA", "GA", "TN"];
    let headers = [
        "site",
        "coverage before",
        "after CAS",
        "gain",
        "extra servers",
    ];
    let inputs: Vec<_> = states
        .iter()
        .map(|state| {
            let site = ctx.site(state);
            let demand = site.demand_trace(YEAR, SEED);
            let grid = ctx.grid(site.ba()).clone();
            (state.to_string(), site, demand, grid)
        })
        .collect();
    // Each site's before/after coverage and capacity bisection (dozens of
    // scheduler runs) is independent — fan out per site.
    let per_site = ce_parallel::par_map(&inputs, |(state, site, demand, grid)| {
        let (before, after, _) = cas_gain_at_meta_investment(site, demand, grid, 0.4);

        // Minimum extra capacity that still realizes (nearly) the full
        // gain: bisect the capacity cap between the existing peak and 2x.
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        let peak = demand.max().expect("non-empty");
        let coverage_at = |cap: f64| {
            let scheduler = ce_scheduler::GreedyScheduler::new(ce_scheduler::CasConfig {
                max_capacity_mw: cap,
                flexible_ratio: 0.4,
            });
            let shifted = scheduler.schedule(demand, &supply).expect("aligned");
            ce_core::renewable_coverage(&shifted.shifted_demand, &supply)
                .expect("aligned")
                .percent()
        };
        let target = after - 0.05;
        let (mut lo, mut hi) = (peak, peak * 2.0);
        for _ in 0..25 {
            let mid = 0.5 * (lo + hi);
            if coverage_at(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let extra = hi / peak - 1.0;

        let row = vec![
            state.clone(),
            format!("{before:.1}%"),
            format!("{after:.1}%"),
            format!("+{:.1} pts", after - before),
            format!("+{:.0}%", extra * 100.0),
        ];
        (row, after - before)
    });
    let (rows, gains): (Vec<_>, Vec<_>) = per_site.into_iter().unzip();
    out.push_str(&render_table(&headers, &rows));
    let min = gains.iter().copied().fold(f64::MAX, f64::min);
    let max = gains.iter().copied().fold(f64::MIN, f64::max);
    let _ = writeln!(
        out,
        "\ncoverage gain ranges from +{min:.1} to +{max:.1} points (paper: +1% to +22% depending on region)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(Fidelity::Fast)
    }

    #[test]
    fn fig14_prints_frontiers_for_utah() {
        let out = fig14_for_sites(&mut ctx(), &["UT"]);
        assert!(out.contains("Renewables Only — frontier"));
        assert!(out.contains("Renewables + Battery + CAS — frontier"));
        assert!(out.contains("carbon-optimal"));
    }

    #[test]
    fn fig15_subset_has_all_strategies_per_site() {
        let out = fig15_for_sites(&mut ctx(), &["UT", "NC"]);
        assert_eq!(out.matches("Renewables Only").count(), 2);
        assert_eq!(out.matches("Renewables + Battery + CAS").count(), 2);
    }

    #[test]
    fn fig15_ensemble_rows_carry_spreads_and_addresses() {
        let out = fig15_ensemble_for_sites(&mut ctx(), &["UT"]);
        // One row per strategy, each with a 12-hex-digit manifest address.
        assert_eq!(out.matches("Renewables Only").count(), 1);
        assert_eq!(out.matches("Renewables + Battery + CAS").count(), 1);
        let addresses: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("UT"))
            .filter_map(|l| l.split_whitespace().last())
            .collect();
        assert_eq!(addresses.len(), StrategyKind::ALL.len());
        for addr in &addresses {
            assert_eq!(addr.len(), 12, "short content address: {addr}");
            assert!(addr.chars().all(|c| c.is_ascii_hexdigit()));
        }
        // Content addressing: the same scenario must reproduce the same
        // addresses bit-for-bit on a second run.
        let again = fig15_ensemble_for_sites(&mut ctx(), &["UT"]);
        assert_eq!(out, again);
    }

    #[test]
    fn battery_strategies_beat_renewables_only_in_fig15() {
        // The paper's headline: adding batteries reduces total footprint
        // dramatically. Parse the totals column and compare.
        let out = fig15_for_sites(&mut ctx(), &["NC"]);
        let totals: Vec<f64> = out
            .lines()
            .filter(|l| l.starts_with("NC"))
            .filter_map(|l| l.split_whitespace().last()?.parse().ok())
            .collect();
        assert_eq!(totals.len(), 4);
        let renewables_only = totals[0];
        let with_battery = totals[1];
        assert!(
            with_battery < renewables_only,
            "battery {with_battery} should beat renewables-only {renewables_only}"
        );
    }

    #[test]
    fn fig16_shows_bimodal_distribution() {
        let out = fig16(&mut ctx());
        assert!(out.contains("DoD 100%"));
        assert!(out.contains("DoD  80%"));
        assert!(out.contains("equivalent cycles"));
    }

    #[test]
    fn dod_study_reports_three_levels() {
        let out = dod_study(&mut ctx());
        assert!(out.contains("100%"));
        assert!(out.contains("80%"));
        assert!(out.contains("60%"));
        assert!(out.contains("cycle life at 80% DoD is 1.5x"));
    }

    #[test]
    fn cas_study_reports_positive_gains() {
        let out = cas_study(&mut ctx());
        assert!(out.contains("coverage gain ranges"));
        assert!(out.contains("UT"));
        // All gains non-negative by construction of the scheduler.
        assert!(!out.contains("+-"));
    }
}
