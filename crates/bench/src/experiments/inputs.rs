//! Operational-input experiments: Tables 1-2 and Figures 1, 3, 4, 5, 10.

use crate::context::{Context, SEED, YEAR};
use ce_core::report::{render_table, sparkline};
use ce_datacenter::trace::{TraceGenerator, TraceProfile};
use ce_datacenter::SloTier;
use ce_grid::curtailment::historical_ca_curtailment;
use ce_grid::BalancingAuthority;
use ce_timeseries::resample::{average_day_profile, daily_totals};
use ce_timeseries::stats::{mean_of_top_k, pearson, Histogram};
use std::fmt::Write as _;

/// Table 1: Meta's datacenter locations and regional renewable investments.
pub fn table1(ctx: &mut Context) -> String {
    let rows: Vec<Vec<String>> = ctx
        .fleet()
        .sites()
        .iter()
        .map(|s| {
            vec![
                s.name().to_string(),
                s.ba().code().to_string(),
                format!("{:.0}", s.solar_mw()),
                format!("{:.0}", s.wind_mw()),
                format!("{:.0}", s.total_investment_mw()),
            ]
        })
        .collect();
    let mut out =
        String::from("Table 1: Meta's US datacenter locations and renewable investments [MW]\n\n");
    out.push_str(&render_table(
        &["Location", "BA", "Solar", "Wind", "Total"],
        &rows,
    ));
    let fleet = ctx.fleet();
    let _ = writeln!(
        out,
        "\nTotals: solar {:.0} MW, wind {:.0} MW, combined {:.0} MW",
        fleet.total_solar_mw(),
        fleet.total_wind_mw(),
        fleet.total_solar_mw() + fleet.total_wind_mw()
    );
    out
}

/// Table 2: carbon efficiency of energy sources.
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = ce_grid::FuelType::ALL
        .iter()
        .map(|f| {
            vec![
                f.name().to_string(),
                format!("{:.0}", f.carbon_intensity_g_per_kwh()),
            ]
        })
        .collect();
    let mut out = String::from("Table 2: Carbon efficiency of various energy sources\n\n");
    out.push_str(&render_table(&["Type", "gCO2eq/kWh"], &rows));
    out
}

/// Figure 1: hourly wind and solar generation in the California grid over
/// one week, highlighting the intermittency (>3x swing).
pub fn fig1(ctx: &mut Context) -> String {
    let grid = ctx.grid(BalancingAuthority::CISO);
    // A spring week (the paper's curtailment-heavy season): days 90-96.
    let week_start = 90 * 24;
    let wind = grid.wind().window(week_start, 7 * 24).expect("window fits");
    let solar = grid
        .solar()
        .window(week_start, 7 * 24)
        .expect("window fits");
    let combined = &wind + &solar;
    let max = combined.max().unwrap_or(0.0);
    let daily: Vec<f64> = daily_totals(&combined);
    let best = daily.iter().copied().fold(f64::MIN, f64::max);
    let worst = daily.iter().copied().fold(f64::MAX, f64::min).max(1.0);
    let mut out = String::from(
        "Figure 1: Hourly wind and solar generation in the California grid over one week\n\n",
    );
    let _ = writeln!(out, "wind  [{}]", sparkline(wind.values()));
    let _ = writeln!(out, "solar [{}]", sparkline(solar.values()));
    let _ = writeln!(out, "\npeak combined renewables: {max:.0} MW");
    let _ = writeln!(
        out,
        "best day / worst day (total renewable energy): {:.1}x",
        best / worst
    );
    out
}

/// Figure 3: diurnal CPU fluctuations of Meta-like and Google-like fleets,
/// and the utilization/power correlation.
pub fn fig3() -> String {
    let meta = TraceGenerator::new(TraceProfile::Meta, 50.0).generate(YEAR, SEED);
    let google = TraceGenerator::new(TraceProfile::Google, 50.0).generate(YEAR, SEED);

    let profile = |t: &ce_datacenter::trace::DemandTrace| average_day_profile(&t.utilization);
    let swing = |p: &[f64; 24]| {
        p.iter().copied().fold(f64::MIN, f64::max) - p.iter().copied().fold(f64::MAX, f64::min)
    };
    let meta_profile = profile(&meta);
    let google_profile = profile(&google);
    let corr = pearson(meta.utilization.values(), meta.power.values()).expect("same length");
    let power_swing = (meta.power.max().unwrap() - meta.power.min().unwrap()) / meta.power.mean();

    let mut out = String::from("Figure 3: Hourly DC CPU fluctuations and power correlation\n\n");
    let _ = writeln!(
        out,
        "Meta avg day utilization   [{}]",
        sparkline(&meta_profile)
    );
    let _ = writeln!(
        out,
        "Google avg day utilization [{}]",
        sparkline(&google_profile)
    );
    let _ = writeln!(
        out,
        "\nMeta CPU swing: {:.1} pts   Google CPU swing: {:.1} pts",
        swing(&meta_profile) * 100.0,
        swing(&google_profile) * 100.0
    );
    let _ = writeln!(out, "CPU-power Pearson correlation (Meta): {corr:.4}");
    let _ = writeln!(
        out,
        "DC-scale power max-min swing: {:.1}% (paper: ~4%)",
        power_swing * 100.0
    );
    out
}

/// Figure 4: historical wind and solar curtailments in the California grid.
pub fn fig4() -> String {
    let rows: Vec<Vec<String>> = historical_ca_curtailment()
        .iter()
        .map(|r| {
            vec![
                r.year.to_string(),
                format!("{:.2}%", r.solar_fraction * 100.0),
                format!("{:.2}%", r.wind_fraction * 100.0),
                format!("{:.2}%", r.total_fraction() * 100.0),
            ]
        })
        .collect();
    let mut out =
        String::from("Figure 4: Curtailed energy / total renewable energy, California grid\n\n");
    out.push_str(&render_table(&["Year", "Solar", "Wind", "Total"], &rows));
    out.push_str("\n2021 total reaches ~6% (paper: 6%)\n");
    out
}

/// Figure 5: average-day generation and daily-total histograms for BPAT
/// (wind), DUK (solar), and PACE (mixed).
pub fn fig5(ctx: &mut Context) -> String {
    let mut out =
        String::from("Figure 5: Average-day generation and day-to-day variability, year 2020\n");
    for (ba, label) in [
        (BalancingAuthority::BPAT, "BPAT (in OR) — majorly wind"),
        (BalancingAuthority::DUK, "DUK (in NC) — majorly solar"),
        (BalancingAuthority::PACE, "PACE (in UT) — wind + solar mix"),
    ] {
        let grid = ctx.grid(ba);
        let wind_profile = average_day_profile(grid.wind());
        let solar_profile = average_day_profile(grid.solar());
        let renewables = grid.wind().try_add(grid.solar()).expect("aligned");
        let daily = daily_totals(&renewables);
        let hist = Histogram::from_values(&daily, 12).expect("non-empty year");
        let top10 = mean_of_top_k(&daily, 10).expect("non-empty");
        let avg = daily.iter().sum::<f64>() / daily.len() as f64;

        let _ = writeln!(out, "\n--- {label} ---");
        let _ = writeln!(out, "avg day wind  [{}]", sparkline(&wind_profile));
        let _ = writeln!(out, "avg day solar [{}]", sparkline(&solar_profile));
        let counts: Vec<f64> = hist.counts().iter().map(|&c| c as f64).collect();
        let _ = writeln!(out, "daily-total histogram [{}]", sparkline(&counts));
        let _ = writeln!(
            out,
            "best 10 days / average day: {:.2}x (paper, BPAT: ~2.5x)",
            top10 / avg
        );
    }
    out
}

/// Figure 10: breakdown of data-processing workloads by completion-time SLO.
pub fn fig10() -> String {
    let rows: Vec<Vec<String>> = SloTier::ALL
        .iter()
        .map(|t| {
            vec![
                t.to_string(),
                format!("{:.1}%", t.meta_fraction() * 100.0),
                match t.shift_window_hours() {
                    Some(w) => format!("{w} h"),
                    None => "unbounded".to_string(),
                },
            ]
        })
        .collect();
    let mut out = String::from(
        "Figure 10: Breakdown of data processing workloads by completion-time SLO at Meta\n\n",
    );
    out.push_str(&render_table(&["Tier", "Share", "Shift window"], &rows));
    let over4: f64 = [SloTier::Tier4, SloTier::Tier5]
        .iter()
        .map(|t| t.meta_fraction())
        .sum();
    let _ = writeln!(
        out,
        "\nworkloads with SLOs > 4 hours: {:.1}% (paper: 87.4% of data-processing workloads)",
        (over4 + SloTier::Tier3.meta_fraction()) * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    fn ctx() -> Context {
        Context::new(Fidelity::Fast)
    }

    #[test]
    fn table1_lists_13_sites_and_totals() {
        let out = table1(&mut ctx());
        assert!(out.matches('\n').count() >= 16);
        assert!(out.contains("Prineville"));
        assert!(out.contains("combined 5754 MW"));
    }

    #[test]
    fn table2_has_coal_at_820() {
        let out = table2();
        assert!(out.contains("Coal"));
        assert!(out.contains("820"));
        assert!(out.contains("Wind"));
        assert!(out.contains("11"));
    }

    #[test]
    fn fig1_reports_large_swing() {
        let out = fig1(&mut ctx());
        // The paper's headline: >3x between best and worst days.
        let ratio: f64 = out
            .lines()
            .find(|l| l.contains("best day / worst day"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches('x').parse().ok())
            .expect("ratio line present");
        assert!(ratio > 1.5, "weekly swing ratio {ratio}");
    }

    #[test]
    fn fig3_reports_paper_statistics() {
        let out = fig3();
        assert!(out.contains("correlation"));
        let corr: f64 = out
            .lines()
            .find(|l| l.contains("Pearson"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("correlation line");
        assert!(corr > 0.99);
    }

    #[test]
    fn fig4_trend_reaches_six_percent() {
        let out = fig4();
        assert!(out.contains("2015"));
        assert!(out.contains("2021"));
        assert!(out.contains("~6%"));
    }

    #[test]
    fn fig5_covers_three_regimes() {
        let out = fig5(&mut ctx());
        assert!(out.contains("BPAT"));
        assert!(out.contains("DUK"));
        assert!(out.contains("PACE"));
        assert!(out.contains("best 10 days"));
    }

    #[test]
    fn fig10_shares_sum_to_100() {
        let out = fig10();
        assert!(out.contains("71.2%"));
        assert!(out.contains("Tier 5"));
    }
}
