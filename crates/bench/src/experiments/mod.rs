//! One function per paper artifact. Each returns a printable report
//! containing the numbers the corresponding paper table/figure reports.

pub mod design;
pub mod extensions;
pub mod holistic;
pub mod inputs;

use crate::context::Context;

/// Every experiment id: the paper's artifacts in paper order, followed by
/// this reproduction's extension/ablation studies.
pub const ALL_IDS: [&str; 26] = [
    "table1",
    "table2",
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig15-ensemble",
    "fig16",
    "dod",
    "cas",
    "accounting",
    "ablation-battery",
    "ablation-scheduler",
    "migration",
    "aging",
    "sensitivity",
    "seasonal",
];

/// Runs one experiment by id; `None` for an unknown id.
pub fn run(id: &str, ctx: &mut Context) -> Option<String> {
    Some(match id {
        "table1" => inputs::table1(ctx),
        "table2" => inputs::table2(),
        "fig1" => inputs::fig1(ctx),
        "fig3" => inputs::fig3(),
        "fig4" => inputs::fig4(),
        "fig5" => inputs::fig5(ctx),
        "fig6" => design::fig6(ctx),
        "fig7" => design::fig7(ctx),
        "fig8" => design::fig8(ctx),
        "fig9" => design::fig9(ctx),
        "fig10" => inputs::fig10(),
        "fig11" => design::fig11(ctx),
        "fig12" => design::fig12(ctx),
        "fig14" => holistic::fig14(ctx),
        "fig15" => holistic::fig15(ctx),
        "fig15-ensemble" => holistic::fig15_ensemble(ctx),
        "fig16" => holistic::fig16(ctx),
        "dod" => holistic::dod_study(ctx),
        "cas" => holistic::cas_study(ctx),
        "accounting" => extensions::accounting(ctx),
        "ablation-battery" => extensions::ablation_battery(ctx),
        "ablation-scheduler" => extensions::ablation_scheduler(ctx),
        "migration" => extensions::migration(ctx),
        "aging" => extensions::aging(ctx),
        "sensitivity" => extensions::sensitivity_study(ctx),
        "seasonal" => extensions::seasonal_study(ctx),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn unknown_id_is_none() {
        let mut ctx = Context::new(Fidelity::Fast);
        assert!(run("nope", &mut ctx).is_none());
    }

    #[test]
    fn all_ids_are_unique() {
        let mut ids = ALL_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_IDS.len());
    }
}
