//! Reproduction harness for Carbon Explorer: one function per paper table
//! and figure, each returning the printed artifact as a `String`.
//!
//! The `repro` binary (`cargo run --release -p ce-bench --bin repro -- all`)
//! drives these; integration tests assert on their quantitative content;
//! the Criterion benches in `benches/` time the underlying kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;

pub use context::{Context, Fidelity};
