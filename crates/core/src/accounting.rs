//! Renewable-energy-credit accounting at different matching granularities.
//!
//! The paper (§3.2) contrasts Net Zero — "at the end of the month (or end
//! of the year), the total amount of energy generated and credits issued
//! is equal or greater than the total amount of energy consumed" — with
//! true 24/7 hourly matching. This module generalizes both: credits are
//! matched against consumption within periods of a chosen granularity,
//! and the *residual* (unmatched) consumption is charged at the grid's
//! carbon intensity. Hourly matching recovers the paper's coverage
//! metric; annual matching recovers Net Zero.

use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The period within which generated credits may offset consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchingGranularity {
    /// Every hour stands alone — the 24/7 Carbon-Free Energy Compact.
    Hourly,
    /// Credits net out within each calendar day.
    Daily,
    /// Credits net out within each calendar month.
    Monthly,
    /// Credits net out across the whole series — classic Net Zero.
    Annual,
}

impl MatchingGranularity {
    /// All granularities, finest first.
    pub const ALL: [MatchingGranularity; 4] = [
        MatchingGranularity::Hourly,
        MatchingGranularity::Daily,
        MatchingGranularity::Monthly,
        MatchingGranularity::Annual,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MatchingGranularity::Hourly => "hourly (24/7)",
            MatchingGranularity::Daily => "daily",
            MatchingGranularity::Monthly => "monthly",
            MatchingGranularity::Annual => "annual (Net Zero)",
        }
    }
}

impl fmt::Display for MatchingGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of matching credits against consumption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchingReport {
    /// The granularity used.
    pub granularity: MatchingGranularity,
    /// Total energy consumed, MWh.
    pub consumed_mwh: f64,
    /// Consumption offset by credits within its period, MWh.
    pub matched_mwh: f64,
    /// Emissions attributed to unmatched consumption, tons CO2
    /// (unmatched hourly consumption × that hour's grid intensity).
    pub residual_emissions_tons: f64,
}

impl MatchingReport {
    /// Fraction of consumption covered by period-matched credits.
    pub fn matched_fraction(&self) -> f64 {
        if self.consumed_mwh > 0.0 {
            self.matched_mwh / self.consumed_mwh
        } else {
            1.0
        }
    }

    /// `true` if every period fully covered its consumption.
    pub fn is_fully_matched(&self) -> bool {
        self.consumed_mwh - self.matched_mwh <= 1e-6
    }
}

/// Matches renewable `generation` credits against `demand` within periods
/// of the given granularity, attributing residual consumption to the grid
/// at `grid_intensity` (t/MWh, hourly).
///
/// Within a period, total credits offset total consumption; the unmatched
/// remainder is distributed over the period's *deficit hours*
/// proportionally to their hourly deficit, which is where grid energy is
/// physically drawn.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn match_credits(
    demand: &HourlySeries,
    generation: &HourlySeries,
    grid_intensity: &HourlySeries,
    granularity: MatchingGranularity,
) -> Result<MatchingReport, TimeSeriesError> {
    demand.check_aligned(generation)?;
    demand.check_aligned(grid_intensity)?;

    let consumed = demand.sum();
    let mut matched = 0.0;
    let mut residual_emissions = 0.0;

    for (start, end) in period_ranges(demand, granularity) {
        let period_demand: f64 = demand.values()[start..end].iter().sum();
        let period_gen: f64 = generation.values()[start..end].iter().sum();
        let period_matched = period_demand.min(period_gen);
        matched += period_matched;
        let unmatched = period_demand - period_matched;
        if unmatched <= 0.0 {
            continue;
        }
        // Distribute the unmatched energy over the period's deficit hours.
        let deficits: Vec<f64> = (start..end)
            .map(|h| (demand[h] - generation[h]).max(0.0))
            .collect();
        let total_deficit: f64 = deficits.iter().sum();
        if total_deficit <= 0.0 {
            // Degenerate (can only happen with zero-demand periods).
            continue;
        }
        for (offset, deficit) in deficits.iter().enumerate() {
            let share = unmatched * deficit / total_deficit;
            residual_emissions += share * grid_intensity[start + offset];
        }
    }

    Ok(MatchingReport {
        granularity,
        consumed_mwh: consumed,
        matched_mwh: matched,
        residual_emissions_tons: residual_emissions,
    })
}

/// Half-open index ranges of the matching periods covering the series.
fn period_ranges(series: &HourlySeries, granularity: MatchingGranularity) -> Vec<(usize, usize)> {
    let len = series.len();
    match granularity {
        MatchingGranularity::Hourly => (0..len).map(|h| (h, h + 1)).collect(),
        MatchingGranularity::Annual => {
            if len == 0 {
                Vec::new()
            } else {
                vec![(0, len)]
            }
        }
        MatchingGranularity::Daily => boundaries(series, |t| {
            (t.date().year(), t.date().month(), t.date().day())
        }),
        MatchingGranularity::Monthly => {
            boundaries(series, |t| (t.date().year(), t.date().month(), 0))
        }
    }
}

/// Groups consecutive hours whose key is equal.
fn boundaries<K: PartialEq>(
    series: &HourlySeries,
    key: impl Fn(ce_timeseries::Timestamp) -> K,
) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0;
    for h in 1..series.len() {
        if key(series.timestamp(h)) != key(series.timestamp(start)) {
            ranges.push((start, h));
            start = h;
        }
    }
    if !series.is_empty() {
        ranges.push((start, series.len()));
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn flat_intensity(len: usize) -> HourlySeries {
        HourlySeries::constant(start(), len, 0.5)
    }

    #[test]
    fn hourly_matching_equals_coverage_semantics() {
        let demand = HourlySeries::constant(start(), 2, 10.0);
        let gen = HourlySeries::from_values(start(), vec![20.0, 0.0]);
        let report = match_credits(
            &demand,
            &gen,
            &flat_intensity(2),
            MatchingGranularity::Hourly,
        )
        .unwrap();
        assert_eq!(report.matched_mwh, 10.0);
        assert_eq!(report.matched_fraction(), 0.5);
        assert!((report.residual_emissions_tons - 5.0).abs() < 1e-12);
        assert!(!report.is_fully_matched());
    }

    #[test]
    fn annual_matching_declares_net_zero_despite_hourly_deficits() {
        let demand = HourlySeries::constant(start(), 2, 10.0);
        let gen = HourlySeries::from_values(start(), vec![20.0, 0.0]);
        let report = match_credits(
            &demand,
            &gen,
            &flat_intensity(2),
            MatchingGranularity::Annual,
        )
        .unwrap();
        assert!(report.is_fully_matched());
        assert_eq!(report.matched_fraction(), 1.0);
        assert_eq!(report.residual_emissions_tons, 0.0);
    }

    #[test]
    fn granularity_refines_monotonically() {
        // Finer matching can only match less (the paper's whole point).
        let len = 24 * 62; // two months
        let demand = HourlySeries::constant(start(), len, 10.0);
        // Generation concentrated in the first month's daytime hours, with
        // annual total exceeding demand.
        let gen = HourlySeries::from_fn(start(), len, |h| {
            if h < 24 * 31 && (8..18).contains(&(h % 24)) {
                60.0
            } else {
                0.0
            }
        });
        let intensity = flat_intensity(len);
        // Coarser periods can only match more: ALL is ordered finest first.
        let mut previous = -1.0;
        for granularity in MatchingGranularity::ALL {
            let report = match_credits(&demand, &gen, &intensity, granularity).unwrap();
            assert!(
                report.matched_fraction() >= previous - 1e-12,
                "{granularity} matched less than a finer granularity"
            );
            previous = report.matched_fraction();
        }
    }

    #[test]
    fn monthly_periods_follow_the_calendar() {
        // 2020 Jan has 31 days, Feb has 29.
        let len = 24 * (31 + 29);
        let demand = HourlySeries::constant(start(), len, 1.0);
        // Generate only in January, exactly January's demand.
        let jan_hours = 24 * 31;
        let gen = HourlySeries::from_fn(start(), len, |h| if h < jan_hours { 1.0 } else { 0.0 });
        let report = match_credits(
            &demand,
            &gen,
            &flat_intensity(len),
            MatchingGranularity::Monthly,
        )
        .unwrap();
        // January fully matched, February fully unmatched.
        assert!((report.matched_mwh - jan_hours as f64).abs() < 1e-9);
    }

    #[test]
    fn daily_matching_moves_solar_within_the_day() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let gen = HourlySeries::from_fn(
            start(),
            24,
            |h| if (8..16).contains(&h) { 30.0 } else { 0.0 },
        );
        let hourly = match_credits(
            &demand,
            &gen,
            &flat_intensity(24),
            MatchingGranularity::Hourly,
        )
        .unwrap();
        let daily = match_credits(
            &demand,
            &gen,
            &flat_intensity(24),
            MatchingGranularity::Daily,
        )
        .unwrap();
        assert!(daily.matched_fraction() > hourly.matched_fraction());
        assert!(daily.is_fully_matched()); // 240 generated = 240 consumed
    }

    #[test]
    fn residual_uses_hourly_intensity() {
        let demand = HourlySeries::constant(start(), 2, 10.0);
        let gen = HourlySeries::from_values(start(), vec![10.0, 0.0]);
        let intensity = HourlySeries::from_values(start(), vec![0.1, 0.9]);
        let report = match_credits(&demand, &gen, &intensity, MatchingGranularity::Hourly).unwrap();
        // The deficit hour carries 0.9 t/MWh.
        assert!((report.residual_emissions_tons - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_fully_matched() {
        let empty = HourlySeries::zeros(start(), 0);
        let report = match_credits(&empty, &empty, &empty, MatchingGranularity::Annual).unwrap();
        assert!(report.is_fully_matched());
        assert_eq!(report.matched_fraction(), 1.0);
    }

    #[test]
    fn misaligned_inputs_error() {
        let demand = HourlySeries::zeros(start(), 2);
        let gen = HourlySeries::zeros(start(), 3);
        assert!(match_credits(&demand, &gen, &demand, MatchingGranularity::Hourly).is_err());
    }
}
