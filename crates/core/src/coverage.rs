//! The renewable-coverage metric (paper §4.1).
//!
//! > We define renewable coverage as the percentage of hours in the year
//! > where datacenter power (P_DC) is covered by renewable power (P_Ren):
//! >
//! > { 1 − Σ_hour max(P_DC − P_Ren, 0) / Σ_hour P_DC } × 100
//!
//! The deficit is clamped at zero per hour: surplus in one hour cannot
//! cancel deficit in another (that is precisely what distinguishes 24/7
//! matching from Net-Zero annual matching). Alongside the paper's
//! energy-weighted metric we also expose the strict hours-fully-covered
//! fraction.

use ce_timeseries::{kernels, HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of a coverage computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    energy_fraction: f64,
    hour_fraction: f64,
    unmet_mwh: f64,
    demand_mwh: f64,
}

impl Coverage {
    /// Builds a coverage directly from an unmet-demand series and the
    /// demand itself. `unmet` must be the per-hour grid draw (deficit
    /// after all mitigation), already clamped non-negative.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn from_unmet(
        demand: &HourlySeries,
        unmet: &HourlySeries,
    ) -> Result<Self, TimeSeriesError> {
        demand.check_aligned(unmet)?;
        let covered_hours = unmet.count_where(|u| u <= kernels::COVERED_EPSILON_MWH);
        Ok(Self::from_sums(
            demand.sum(),
            unmet.sum(),
            covered_hours,
            unmet.len(),
        ))
    }

    /// Builds a coverage from pre-reduced aggregates: total demand and
    /// unmet energy, plus the count of fully covered hours (clamped
    /// deficit ≤ [`kernels::COVERED_EPSILON_MWH`]) out of `total_hours`.
    ///
    /// This is the allocation-free entry point used by the sweep engine —
    /// the aggregates come straight from the fused deficit kernels, and
    /// the explorer's (invariant) annual demand energy is computed once
    /// instead of per design point. An empty series (`total_hours == 0`)
    /// counts as fully covered, matching [`Coverage::from_unmet`].
    pub fn from_sums(
        demand_mwh: f64,
        unmet_mwh: f64,
        covered_hours: usize,
        total_hours: usize,
    ) -> Self {
        let energy_fraction = if demand_mwh > 0.0 {
            (1.0 - unmet_mwh / demand_mwh).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let hour_fraction = if total_hours == 0 {
            1.0
        } else {
            covered_hours as f64 / total_hours as f64
        };
        Self {
            energy_fraction,
            hour_fraction,
            unmet_mwh,
            demand_mwh,
        }
    }

    /// The paper's energy-weighted coverage as a fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.energy_fraction
    }

    /// The paper's coverage as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.energy_fraction * 100.0
    }

    /// Fraction of hours whose demand was fully covered.
    pub fn hour_fraction(&self) -> f64 {
        self.hour_fraction
    }

    /// Total unmet (grid-supplied) energy, MWh.
    pub fn unmet_mwh(&self) -> f64 {
        self.unmet_mwh
    }

    /// Total demand energy, MWh.
    pub fn demand_mwh(&self) -> f64 {
        self.demand_mwh
    }

    /// `true` if this is full 24/7 coverage (no unmet energy).
    pub fn is_full(&self) -> bool {
        self.unmet_mwh <= 1e-6
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}% (hours {:.1}%)",
            self.percent(),
            self.hour_fraction * 100.0
        )
    }
}

/// Computes renewable coverage of `demand` by `supply` with no storage or
/// scheduling: the paper's formula with per-hour deficit clamping.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
///
/// ```
/// use ce_core::renewable_coverage;
/// use ce_timeseries::{HourlySeries, Timestamp};
///
/// let start = Timestamp::start_of_year(2020);
/// let demand = HourlySeries::constant(start, 4, 10.0);
/// let supply = HourlySeries::from_values(start, vec![20.0, 0.0, 10.0, 5.0]);
/// let cov = renewable_coverage(&demand, &supply)?;
/// // Deficits: 0 + 10 + 0 + 5 = 15 of 40 MWh → 62.5% coverage.
/// assert!((cov.percent() - 62.5).abs() < 1e-9);
/// # Ok::<(), ce_timeseries::TimeSeriesError>(())
/// ```
pub fn renewable_coverage(
    demand: &HourlySeries,
    supply: &HourlySeries,
) -> Result<Coverage, TimeSeriesError> {
    let stats = demand.deficit_stats(supply)?;
    Ok(Coverage::from_sums(
        demand.sum(),
        stats.unmet_mwh,
        stats.covered_hours,
        demand.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn full_coverage() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = HourlySeries::constant(start(), 24, 10.0);
        let cov = renewable_coverage(&demand, &supply).unwrap();
        assert_eq!(cov.percent(), 100.0);
        assert!(cov.is_full());
        assert_eq!(cov.hour_fraction(), 1.0);
    }

    #[test]
    fn zero_supply_is_zero_coverage() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = HourlySeries::zeros(start(), 24);
        let cov = renewable_coverage(&demand, &supply).unwrap();
        assert_eq!(cov.percent(), 0.0);
        assert_eq!(cov.hour_fraction(), 0.0);
        assert_eq!(cov.unmet_mwh(), 240.0);
    }

    #[test]
    fn surplus_does_not_cancel_deficit() {
        // The crux of 24/7 vs Net Zero: annual totals match, hourly doesn't.
        let demand = HourlySeries::constant(start(), 2, 10.0);
        let supply = HourlySeries::from_values(start(), vec![20.0, 0.0]);
        let cov = renewable_coverage(&demand, &supply).unwrap();
        assert_eq!(cov.percent(), 50.0);
        assert_eq!(cov.hour_fraction(), 0.5);
    }

    #[test]
    fn empty_demand_is_fully_covered() {
        let demand = HourlySeries::zeros(start(), 0);
        let supply = HourlySeries::zeros(start(), 0);
        let cov = renewable_coverage(&demand, &supply).unwrap();
        assert_eq!(cov.fraction(), 1.0);
        assert_eq!(cov.hour_fraction(), 1.0);
    }

    #[test]
    fn zero_demand_hours_count_as_covered() {
        let demand = HourlySeries::from_values(start(), vec![0.0, 10.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 10.0]);
        let cov = renewable_coverage(&demand, &supply).unwrap();
        assert!(cov.is_full());
    }

    #[test]
    fn from_unmet_matches_direct_computation() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 10.0, 10.0]);
        let supply = HourlySeries::from_values(start(), vec![4.0, 12.0, 10.0]);
        let direct = renewable_coverage(&demand, &supply).unwrap();
        let unmet = HourlySeries::from_values(start(), vec![6.0, 0.0, 0.0]);
        let indirect = Coverage::from_unmet(&demand, &unmet).unwrap();
        assert_eq!(direct, indirect);
    }

    #[test]
    fn misaligned_series_error() {
        let demand = HourlySeries::zeros(start(), 2);
        let supply = HourlySeries::zeros(start(), 3);
        assert!(renewable_coverage(&demand, &supply).is_err());
    }

    #[test]
    fn display_shows_percent() {
        let demand = HourlySeries::constant(start(), 2, 10.0);
        let supply = HourlySeries::from_values(start(), vec![10.0, 5.0]);
        let cov = renewable_coverage(&demand, &supply).unwrap();
        assert!(cov.to_string().starts_with("75.0%"));
    }

    #[test]
    fn coverage_is_monotone_in_supply() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let mut prev = -1.0;
        for scale in [0.0, 0.3, 0.7, 1.2] {
            let supply = HourlySeries::from_fn(start(), 24, |h| (h % 12) as f64 * scale);
            let cov = renewable_coverage(&demand, &supply).unwrap().fraction();
            assert!(cov >= prev);
            prev = cov;
        }
    }
}
