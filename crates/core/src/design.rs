//! Design points, design spaces, and the four solution strategies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One configuration in Carbon Explorer's design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Solar investment, MW.
    pub solar_mw: f64,
    /// Wind investment, MW.
    pub wind_mw: f64,
    /// Battery nameplate capacity, MWh.
    pub battery_mwh: f64,
    /// Extra server capacity for demand response, as a fraction of the
    /// datacenter's existing peak (0.5 = 50% more servers).
    pub extra_capacity_fraction: f64,
}

impl DesignPoint {
    /// A design with renewables only.
    pub fn renewables(solar_mw: f64, wind_mw: f64) -> Self {
        Self {
            solar_mw,
            wind_mw,
            battery_mwh: 0.0,
            extra_capacity_fraction: 0.0,
        }
    }

    /// Total renewable investment, MW.
    pub fn total_renewables_mw(&self) -> f64 {
        self.solar_mw + self.wind_mw
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solar {:.0} MW, wind {:.0} MW, battery {:.0} MWh, +{:.0}% servers",
            self.solar_mw,
            self.wind_mw,
            self.battery_mwh,
            self.extra_capacity_fraction * 100.0
        )
    }
}

/// The four solutions the paper evaluates (§5.2, Figures 14-15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Wind/solar investment alone (the Net-Zero state of the art).
    RenewablesOnly,
    /// Renewables plus on-site battery storage.
    RenewablesBattery,
    /// Renewables plus carbon-aware scheduling with extra servers.
    RenewablesCas,
    /// Renewables, battery, and carbon-aware scheduling combined.
    RenewablesBatteryCas,
}

impl StrategyKind {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::RenewablesOnly,
        StrategyKind::RenewablesBattery,
        StrategyKind::RenewablesCas,
        StrategyKind::RenewablesBatteryCas,
    ];

    /// `true` if this strategy deploys a battery.
    pub fn uses_battery(&self) -> bool {
        matches!(
            self,
            StrategyKind::RenewablesBattery | StrategyKind::RenewablesBatteryCas
        )
    }

    /// `true` if this strategy schedules workloads.
    pub fn uses_cas(&self) -> bool {
        matches!(
            self,
            StrategyKind::RenewablesCas | StrategyKind::RenewablesBatteryCas
        )
    }

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::RenewablesOnly => "Renewables Only",
            StrategyKind::RenewablesBattery => "Renewables + Battery",
            StrategyKind::RenewablesCas => "Renewables + CAS",
            StrategyKind::RenewablesBatteryCas => "Renewables + Battery + CAS",
        }
    }

    /// The stable, machine-readable identifier of this strategy — the wire
    /// name used by `ce-serve`'s JSON schema and by scenario cache keys.
    /// Guaranteed never to change spelling; round-trips through
    /// [`StrategyKind::from_canonical_key`].
    pub fn canonical_key(&self) -> &'static str {
        match self {
            StrategyKind::RenewablesOnly => "renewables_only",
            StrategyKind::RenewablesBattery => "renewables_battery",
            StrategyKind::RenewablesCas => "renewables_cas",
            StrategyKind::RenewablesBatteryCas => "renewables_battery_cas",
        }
    }

    /// Parses a [`StrategyKind::canonical_key`] back into a strategy.
    pub fn from_canonical_key(key: &str) -> Option<StrategyKind> {
        StrategyKind::ALL
            .into_iter()
            .find(|s| s.canonical_key() == key)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An axis-aligned grid over the design space. Bounds are inclusive and
/// each axis is swept with `steps` evenly spaced values (a single step
/// pins the axis at its minimum).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// (min, max, steps) for solar MW.
    pub solar: (f64, f64, usize),
    /// (min, max, steps) for wind MW.
    pub wind: (f64, f64, usize),
    /// (min, max, steps) for battery MWh.
    pub battery: (f64, f64, usize),
    /// (min, max, steps) for extra server capacity fraction.
    pub extra_capacity: (f64, f64, usize),
}

impl DesignSpace {
    /// A space suited to a datacenter with average power `avg_mw`:
    /// renewables up to `30 × avg_mw` of each type, batteries up to 24
    /// hours of compute, extra capacity up to +100%.
    pub fn for_datacenter(avg_mw: f64) -> Self {
        Self {
            solar: (0.0, 30.0 * avg_mw, 7),
            wind: (0.0, 30.0 * avg_mw, 7),
            battery: (0.0, 24.0 * avg_mw, 7),
            extra_capacity: (0.0, 1.0, 5),
        }
    }

    /// Restricts the space to the axes a strategy actually uses: the
    /// battery axis collapses to zero for strategies without storage, the
    /// capacity axis for strategies without CAS. This keeps exhaustive
    /// sweeps from wasting evaluations on inert dimensions.
    pub fn restricted_to(&self, strategy: StrategyKind) -> Self {
        let mut space = self.clone();
        if !strategy.uses_battery() {
            space.battery = (0.0, 0.0, 1);
        }
        if !strategy.uses_cas() {
            space.extra_capacity = (0.0, 0.0, 1);
        }
        space
    }

    /// Total number of design points in the grid.
    pub fn len(&self) -> usize {
        axis_len(self.solar)
            * axis_len(self.wind)
            * axis_len(self.battery)
            * axis_len(self.extra_capacity)
    }

    /// `true` if the space contains no points (any axis has zero steps).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every design point in the grid.
    pub fn iter(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        let solar = axis_values(self.solar);
        let wind = axis_values(self.wind);
        let battery = axis_values(self.battery);
        let extra = axis_values(self.extra_capacity);
        solar.into_iter().flat_map(move |s| {
            let wind = wind.clone();
            let battery = battery.clone();
            let extra = extra.clone();
            wind.into_iter().flat_map(move |w| {
                let battery = battery.clone();
                let extra = extra.clone();
                battery.into_iter().flat_map(move |b| {
                    let extra = extra.clone();
                    extra.into_iter().map(move |e| DesignPoint {
                        solar_mw: s,
                        wind_mw: w,
                        battery_mwh: b,
                        extra_capacity_fraction: e,
                    })
                })
            })
        })
    }
}

fn axis_len((_, _, steps): (f64, f64, usize)) -> usize {
    steps
}

/// The concrete values an `(min, max, steps)` axis sweeps, in iteration
/// order. Shared with the supply-major factorized traversal in
/// [`crate::explore`], which regroups these same values without changing
/// any of them.
pub(crate) fn axis_values((min, max, steps): (f64, f64, usize)) -> Vec<f64> {
    match steps {
        0 => Vec::new(),
        1 => vec![min],
        _ => (0..steps)
            .map(|i| min + (max - min) * i as f64 / (steps - 1) as f64)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_classification() {
        use StrategyKind::*;
        assert!(!RenewablesOnly.uses_battery() && !RenewablesOnly.uses_cas());
        assert!(RenewablesBattery.uses_battery() && !RenewablesBattery.uses_cas());
        assert!(!RenewablesCas.uses_battery() && RenewablesCas.uses_cas());
        assert!(RenewablesBatteryCas.uses_battery() && RenewablesBatteryCas.uses_cas());
        assert_eq!(StrategyKind::ALL.len(), 4);
    }

    #[test]
    fn design_point_helpers() {
        let d = DesignPoint::renewables(100.0, 50.0);
        assert_eq!(d.total_renewables_mw(), 150.0);
        assert_eq!(d.battery_mwh, 0.0);
        assert!(d.to_string().contains("solar 100 MW"));
    }

    #[test]
    fn space_len_matches_iteration() {
        let space = DesignSpace {
            solar: (0.0, 100.0, 3),
            wind: (0.0, 100.0, 4),
            battery: (0.0, 50.0, 2),
            extra_capacity: (0.0, 1.0, 2),
        };
        assert_eq!(space.len(), 48);
        assert_eq!(space.iter().count(), 48);
        assert!(!space.is_empty());
    }

    #[test]
    fn axis_endpoints_are_included() {
        let space = DesignSpace {
            solar: (10.0, 90.0, 5),
            wind: (0.0, 0.0, 1),
            battery: (0.0, 0.0, 1),
            extra_capacity: (0.0, 0.0, 1),
        };
        let solars: Vec<f64> = space.iter().map(|d| d.solar_mw).collect();
        assert_eq!(solars, vec![10.0, 30.0, 50.0, 70.0, 90.0]);
    }

    #[test]
    fn restriction_collapses_inert_axes() {
        let space = DesignSpace::for_datacenter(20.0);
        let ren = space.restricted_to(StrategyKind::RenewablesOnly);
        assert_eq!(ren.battery, (0.0, 0.0, 1));
        assert_eq!(ren.extra_capacity, (0.0, 0.0, 1));
        let bat = space.restricted_to(StrategyKind::RenewablesBattery);
        assert_ne!(bat.battery, (0.0, 0.0, 1));
        assert_eq!(bat.extra_capacity, (0.0, 0.0, 1));
        let all = space.restricted_to(StrategyKind::RenewablesBatteryCas);
        assert_eq!(all, space);
    }

    #[test]
    fn zero_step_axis_empties_the_space() {
        let mut space = DesignSpace::for_datacenter(20.0);
        space.wind = (0.0, 10.0, 0);
        assert!(space.is_empty());
        assert_eq!(space.iter().count(), 0);
    }

    #[test]
    fn canonical_keys_round_trip() {
        for s in StrategyKind::ALL {
            assert_eq!(StrategyKind::from_canonical_key(s.canonical_key()), Some(s));
        }
        assert_eq!(StrategyKind::from_canonical_key("Renewables Only"), None);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(StrategyKind::RenewablesOnly.label(), "Renewables Only");
        assert_eq!(
            StrategyKind::RenewablesBatteryCas.to_string(),
            "Renewables + Battery + CAS"
        );
    }
}
