//! Seeded multi-year weather ensembles.
//!
//! A single synthetic weather year can mislead: the Fig. 15 reproduction
//! caps optima at 98–99% coverage purely because one seed's joint
//! (calm + overcast) tails happen to run fat. An *ensemble* evaluates the
//! same design under N independently seeded weather years — each seed
//! drives `GridDataset::synthesize` and the demand trace to an
//! independent synthetic year — and reports the per-year coverages plus
//! their min/mean/max [`Spread`], so "optimal" can be read as "robust
//! across weather years" instead of "optimal for one draw".
//!
//! Evaluation fans out over [`ce_parallel::par_map_with`] and inherits
//! its contract: results return in seed order, bitwise identical to the
//! serial loop, for any `CE_THREADS` setting.

use crate::design::{DesignPoint, StrategyKind};
use crate::explore::{CarbonExplorer, EvalScratch, EvaluatedDesign};
use serde::{Deserialize, Serialize};

/// Which seeded weather years an ensemble evaluates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnsembleSpec {
    /// Calendar year every member synthesizes (fixes trace length and
    /// leap-year shape; the *weather* varies by seed).
    pub year: i32,
    /// One seed per ensemble member. Order is significant: results are
    /// reported in this order.
    pub seeds: Vec<u64>,
}

impl EnsembleSpec {
    /// An ensemble of `count` consecutive seeds starting at `base_seed` —
    /// the conventional spelling for "N independent weather years".
    pub fn consecutive(year: i32, base_seed: u64, count: usize) -> Self {
        EnsembleSpec {
            year,
            seeds: (0..count)
                .map(|i| base_seed.wrapping_add(u64::try_from(i).unwrap_or(u64::MAX)))
                .collect(),
        }
    }

    /// Scores `design` under `strategy` across every seeded year.
    ///
    /// `build` constructs the evaluation engine for one seed (typically
    /// `|seed| CarbonExplorer::new(site.demand_trace(year, seed),
    /// GridDataset::synthesize(ba, year, seed))`). Members evaluate in
    /// parallel via [`ce_parallel::par_map_with`]; the result vector is in
    /// seed order and bitwise identical to [`EnsembleSpec::evaluate_serial`].
    #[must_use]
    pub fn evaluate<F>(
        &self,
        strategy: StrategyKind,
        design: &DesignPoint,
        build: F,
    ) -> EnsembleResult
    where
        F: Fn(u64) -> CarbonExplorer + Sync,
    {
        let evaluations =
            ce_parallel::par_map_with(&self.seeds, EvalScratch::default, |scratch, &seed| {
                build(seed).evaluate_with(strategy, design, scratch)
            });
        self.result(strategy, design, evaluations)
    }

    /// The serial reference loop: same contract as
    /// [`EnsembleSpec::evaluate`], never spawning. Exists so the
    /// bitwise-equality pin (`tests/ensemble_determinism.rs`) has an
    /// independent implementation to compare against.
    #[must_use]
    pub fn evaluate_serial<F>(
        &self,
        strategy: StrategyKind,
        design: &DesignPoint,
        build: F,
    ) -> EnsembleResult
    where
        F: Fn(u64) -> CarbonExplorer,
    {
        let mut scratch = EvalScratch::default();
        let evaluations = self
            .seeds
            .iter()
            .map(|&seed| build(seed).evaluate_with(strategy, design, &mut scratch))
            .collect();
        self.result(strategy, design, evaluations)
    }

    fn result(
        &self,
        strategy: StrategyKind,
        design: &DesignPoint,
        evaluations: Vec<EvaluatedDesign>,
    ) -> EnsembleResult {
        EnsembleResult {
            year: self.year,
            seeds: self.seeds.clone(),
            strategy,
            design: *design,
            evaluations,
        }
    }
}

/// Min/mean/max of a metric across ensemble members.
///
/// The mean is summed in member (seed) order, so a spread over the same
/// evaluations is itself bitwise deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Smallest member value.
    pub min: f64,
    /// Arithmetic mean, accumulated in member order.
    pub mean: f64,
    /// Largest member value.
    pub max: f64,
}

impl Spread {
    /// The spread of `values`, or `None` for an empty iterator.
    pub fn over(values: impl IntoIterator<Item = f64>) -> Option<Spread> {
        let mut iter = values.into_iter();
        let first = iter.next()?;
        let mut spread = Spread {
            min: first,
            mean: first,
            max: first,
        };
        let mut sum = first;
        let mut count = 1.0;
        for v in iter {
            spread.min = spread.min.min(v);
            spread.max = spread.max.max(v);
            sum += v;
            count += 1.0;
        }
        spread.mean = sum / count;
        Some(spread)
    }

    /// `max - min`: how far apart the best and worst weather years land.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }
}

/// The outcome of evaluating one design across an ensemble of seeded
/// weather years.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleResult {
    /// Calendar year of every member.
    pub year: i32,
    /// Member seeds, in evaluation order.
    pub seeds: Vec<u64>,
    /// Strategy evaluated.
    pub strategy: StrategyKind,
    /// Design evaluated.
    pub design: DesignPoint,
    /// One full evaluation per seed, in seed order.
    pub evaluations: Vec<EvaluatedDesign>,
}

impl EnsembleResult {
    /// Spread of any per-member metric, in member order.
    pub fn spread_of(&self, metric: impl FnMut(&EvaluatedDesign) -> f64) -> Option<Spread> {
        Spread::over(self.evaluations.iter().map(metric))
    }

    /// Spread of renewable coverage fraction — the ensemble's headline
    /// answer to "how robust is this design across weather years?".
    pub fn coverage_spread(&self) -> Option<Spread> {
        self.spread_of(|e| e.coverage.fraction())
    }

    /// Spread of total (operational + embodied) carbon, tons/year.
    pub fn total_tons_spread(&self) -> Option<Spread> {
        self.spread_of(|e| e.total_tons())
    }

    /// Per-member coverage fractions, in seed order.
    pub fn coverages(&self) -> Vec<f64> {
        self.evaluations
            .iter()
            .map(|e| e.coverage.fraction())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datacenter::Fleet;
    use ce_grid::GridDataset;

    fn build_ut(year: i32) -> impl Fn(u64) -> CarbonExplorer + Sync {
        let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
        move |seed| {
            let grid = GridDataset::synthesize(site.ba(), year, seed);
            CarbonExplorer::new(site.demand_trace(year, seed), grid)
        }
    }

    fn design() -> DesignPoint {
        DesignPoint {
            solar_mw: 150.0,
            wind_mw: 100.0,
            battery_mwh: 40.0,
            extra_capacity_fraction: 0.0,
        }
    }

    #[test]
    fn consecutive_seeds() {
        let spec = EnsembleSpec::consecutive(2020, 7, 3);
        assert_eq!(spec.seeds, vec![7, 8, 9]);
        assert_eq!(spec.year, 2020);
    }

    #[test]
    fn members_match_individual_evaluations_bitwise() {
        let spec = EnsembleSpec::consecutive(2020, 7, 3);
        let build = build_ut(2020);
        let result = spec.evaluate(StrategyKind::RenewablesBattery, &design(), &build);
        assert_eq!(result.evaluations.len(), 3);
        for (&seed, member) in spec.seeds.iter().zip(&result.evaluations) {
            let solo = build(seed).evaluate(StrategyKind::RenewablesBattery, &design());
            for ((name, a), (_, b)) in member
                .canonical_fields()
                .iter()
                .zip(solo.canonical_fields())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}, field {name}");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_weather_years() {
        let spec = EnsembleSpec::consecutive(2020, 7, 4);
        let result = spec.evaluate(StrategyKind::RenewablesOnly, &design(), build_ut(2020));
        let coverages = result.coverages();
        let spread = result.coverage_spread().expect("non-empty ensemble");
        assert!(
            spread.width() > 0.0,
            "independent weather years should not produce identical coverage: {coverages:?}"
        );
        assert!(spread.min <= spread.mean && spread.mean <= spread.max);
        for c in coverages {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn spread_over_fixed_values() {
        let s = Spread::over([0.5, 0.25, 1.0]).expect("non-empty");
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.mean, (0.5 + 0.25 + 1.0) / 3.0);
        assert_eq!(s.width(), 0.75);
        assert_eq!(Spread::over([]), None);
    }

    #[test]
    fn empty_ensemble_has_no_spread() {
        let spec = EnsembleSpec {
            year: 2020,
            seeds: Vec::new(),
        };
        let result = spec.evaluate(StrategyKind::RenewablesOnly, &design(), build_ut(2020));
        assert!(result.evaluations.is_empty());
        assert_eq!(result.coverage_spread(), None);
    }
}
