//! Exhaustive design-space exploration minimizing operational + embodied
//! carbon (paper §5, Figure 13).

use crate::coverage::Coverage;
use crate::design::{axis_values, DesignPoint, DesignSpace, StrategyKind};
use ce_battery::{simulate_dispatch_stats, ClcBattery};
use ce_datacenter::WorkloadMix;
use ce_embodied::EmbodiedParams;
use ce_grid::GridDataset;
use ce_scheduler::{
    combined_dispatch_stats, CasConfig, CombinedConfig, CombinedScratch, CostOrder,
    GreedyScheduler, ScheduleScratch,
};
use ce_timeseries::{kernels, HourlySeries};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully scored design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedDesign {
    /// The strategy evaluated.
    pub strategy: StrategyKind,
    /// The configuration evaluated.
    pub design: DesignPoint,
    /// Renewable (plus battery/CAS) coverage achieved.
    pub coverage: Coverage,
    /// Operational carbon: grid energy consumed × hourly grid intensity,
    /// tons CO2 per year.
    pub operational_tons: f64,
    /// Embodied carbon of the wind/solar farms, tons CO2 per year.
    pub embodied_renewables_tons: f64,
    /// Embodied carbon of the battery, tons CO2 per year.
    pub embodied_battery_tons: f64,
    /// Embodied carbon of the extra servers, tons CO2 per year.
    pub embodied_servers_tons: f64,
    /// Equivalent full battery cycles performed over the year.
    pub battery_cycles: f64,
}

impl EvaluatedDesign {
    /// Total embodied carbon, tons CO2 per year.
    pub fn embodied_tons(&self) -> f64 {
        self.embodied_renewables_tons + self.embodied_battery_tons + self.embodied_servers_tons
    }

    /// Total (operational + embodied) carbon, tons CO2 per year.
    pub fn total_tons(&self) -> f64 {
        self.operational_tons + self.embodied_tons()
    }

    /// The evaluation's numeric fields as stable `(name, value)` pairs, in
    /// a fixed wire order.
    ///
    /// This is the *pure* serialization surface consumed by response
    /// encoders (`ce-serve` renders exactly these pairs as JSON): no I/O,
    /// no formatting — the caller decides how to print each `f64`, so a
    /// byte-identical encoder applied to a bitwise-equal evaluation always
    /// produces byte-identical output. Derived totals are included so
    /// clients never re-derive (and potentially re-round) them.
    #[must_use]
    pub fn canonical_fields(&self) -> [(&'static str, f64); 11] {
        [
            ("coverage_fraction", self.coverage.fraction()),
            ("coverage_hour_fraction", self.coverage.hour_fraction()),
            ("unmet_mwh", self.coverage.unmet_mwh()),
            ("demand_mwh", self.coverage.demand_mwh()),
            ("operational_tons", self.operational_tons),
            ("embodied_renewables_tons", self.embodied_renewables_tons),
            ("embodied_battery_tons", self.embodied_battery_tons),
            ("embodied_servers_tons", self.embodied_servers_tons),
            ("embodied_tons", self.embodied_tons()),
            ("total_tons", self.total_tons()),
            ("battery_cycles", self.battery_cycles),
        ]
    }
}

impl fmt::Display for EvaluatedDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} → coverage {}, op {:.0} t, embodied {:.0} t, total {:.0} t",
            self.strategy,
            self.design,
            self.coverage,
            self.operational_tons,
            self.embodied_tons(),
            self.total_tons()
        )
    }
}

/// Reusable per-thread evaluation buffers.
///
/// [`CarbonExplorer::evaluate_with`] fills the supply buffer in place
/// instead of allocating a fresh 8760-sample series per design point, and
/// the scheduler arms run through scratch-owned shift/backlog buffers;
/// sweep loops hand each worker thread one scratch for its whole chunk,
/// after which every strategy's evaluation path performs zero heap
/// allocation per design point. The scratch also owns a [`CostOrder`]:
/// the per-day cost-sorted hour permutations the CAS scheduler consumes,
/// rebuilt once per renewable supply (once per (solar, wind) group in the
/// factorized sweep) instead of once per design point. A
/// default-constructed scratch is sized lazily on first use.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    supply: Option<HourlySeries>,
    schedule: ScheduleScratch,
    combined: CombinedScratch,
    cost_order: CostOrder,
}

/// The design-space exploration engine (paper Figure 13).
///
/// Holds the operational inputs — an hourly demand trace and a grid
/// dataset — plus the embodied-carbon parameters, workload flexibility,
/// and battery depth-of-discharge policy, and a set of invariants
/// precomputed at construction (peak demand, annual demand energy,
/// per-MW renewable energy yields, the hourly carbon-intensity series) so
/// the per-design-point hot path never recomputes them. See the
/// [crate documentation](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct CarbonExplorer {
    demand: HourlySeries,
    grid: GridDataset,
    grid_intensity: HourlySeries,
    embodied: EmbodiedParams,
    workload: WorkloadMix,
    dod: f64,
    /// Largest demand sample, MW (0.0 for an empty trace).
    peak_demand_mw: f64,
    /// Annual demand energy, MWh.
    demand_mwh: f64,
    /// Annual energy of a 1 MW solar investment on this grid, MWh — so a
    /// design's solar energy is `unit_solar_mwh × solar_mw` with no
    /// scaled-series materialization.
    unit_solar_mwh: f64,
    /// Annual energy of a 1 MW wind investment on this grid, MWh.
    unit_wind_mwh: f64,
}

impl CarbonExplorer {
    /// Creates an explorer with the paper's defaults: 40% flexible
    /// workloads, 100% depth of discharge, published embodied
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `demand` and the grid's series are misaligned.
    pub fn new(demand: HourlySeries, grid: GridDataset) -> Self {
        let grid_intensity = grid.carbon_intensity();
        demand
            .check_aligned(&grid_intensity)
            .expect("demand trace must cover the same year as the grid dataset");
        let peak_demand_mw = demand.max().unwrap_or(0.0);
        let demand_mwh = demand.sum();
        let unit_solar_mwh = grid.scaled_solar(1.0).sum();
        let unit_wind_mwh = grid.scaled_wind(1.0).sum();
        Self {
            demand,
            grid,
            grid_intensity,
            embodied: EmbodiedParams::paper_defaults(),
            workload: WorkloadMix::borg_default(),
            dod: 1.0,
            peak_demand_mw,
            demand_mwh,
            unit_solar_mwh,
            unit_wind_mwh,
        }
    }

    /// Replaces the embodied-carbon parameters.
    pub fn with_embodied(mut self, embodied: EmbodiedParams) -> Self {
        self.embodied = embodied;
        self
    }

    /// Replaces the workload mix (flexibility).
    pub fn with_workload(mut self, workload: WorkloadMix) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the battery depth-of-discharge policy.
    ///
    /// # Panics
    ///
    /// Panics if `dod` is outside `(0, 1]`.
    pub fn with_dod(mut self, dod: f64) -> Self {
        assert!(dod > 0.0 && dod <= 1.0, "DoD must be in (0, 1]");
        self.dod = dod;
        self
    }

    /// The demand trace.
    pub fn demand(&self) -> &HourlySeries {
        &self.demand
    }

    /// The grid dataset.
    pub fn grid(&self) -> &GridDataset {
        &self.grid
    }

    /// The hourly grid carbon intensity (t/MWh).
    pub fn grid_intensity(&self) -> &HourlySeries {
        &self.grid_intensity
    }

    /// The workload mix in force.
    pub fn workload(&self) -> &WorkloadMix {
        &self.workload
    }

    /// Scores one design point under one strategy.
    ///
    /// Convenience wrapper over [`CarbonExplorer::evaluate_with`] using a
    /// throwaway scratch; sweep loops should reuse a scratch instead.
    ///
    /// # Panics
    ///
    /// Panics on non-finite design parameters.
    #[must_use]
    pub fn evaluate(&self, strategy: StrategyKind, design: &DesignPoint) -> EvaluatedDesign {
        self.evaluate_with(strategy, design, &mut EvalScratch::default())
    }

    /// Scores one design point under one strategy, reusing `scratch`'s
    /// buffers. This is the sweep engine's hot path: the renewable supply
    /// is written into the scratch in place, and every reduction (unmet
    /// energy, covered hours, operational carbon) runs through the fused
    /// `ce-timeseries` kernels, so the renewables-only path performs no
    /// heap allocation at all after the scratch warms up.
    ///
    /// # Panics
    ///
    /// Panics on non-finite design parameters.
    #[must_use]
    // ce:hot
    pub fn evaluate_with(
        &self,
        strategy: StrategyKind,
        design: &DesignPoint,
        scratch: &mut EvalScratch,
    ) -> EvaluatedDesign {
        let EvalScratch {
            supply,
            schedule,
            combined,
            cost_order,
        } = scratch;
        let supply = supply
            // ce:allow(hot-path-transitive-alloc, reason = "scratch warm-up: zeros runs once, before the steady state the rule guards")
            .get_or_insert_with(|| HourlySeries::zeros(self.demand.start(), self.demand.len()));
        self.grid
            .scaled_renewables_into(design.solar_mw, design.wind_mw, supply);
        if matches!(strategy, StrategyKind::RenewablesCas) {
            cost_order.rebuild_from_deficit_slices(self.demand.values(), supply.values());
        }
        self.score_with_supply(strategy, design, supply, schedule, combined, cost_order)
    }

    /// Scores one design point against an already-materialized renewable
    /// supply. This is the factorized sweep's inner loop: the supply is
    /// invariant along the battery/extra-capacity axes, so
    /// [`CarbonExplorer::explore`] fills it once per (solar, wind) group
    /// and calls this for each sub-point. `cost_order` must hold the
    /// per-day cost permutations for `(demand, supply)` whenever
    /// `strategy` is [`StrategyKind::RenewablesCas`] — callers rebuild it
    /// alongside the supply, so the per-day cost sort is likewise hoisted
    /// out of the sub-grid loop. Every strategy arm folds its dispatch to
    /// (unmet stats, operational tons, cycles) through the streaming
    /// kernels without materializing any per-hour series.
    // ce:hot
    fn score_with_supply(
        &self,
        strategy: StrategyKind,
        design: &DesignPoint,
        supply: &HourlySeries,
        schedule: &mut ScheduleScratch,
        combined: &mut CombinedScratch,
        cost_order: &CostOrder,
    ) -> EvaluatedDesign {
        assert!(
            design.solar_mw.is_finite()
                && design.wind_mw.is_finite()
                && design.battery_mwh.is_finite()
                && design.extra_capacity_fraction.is_finite(),
            "design parameters must be finite"
        );
        let battery_mwh = if strategy.uses_battery() {
            design.battery_mwh
        } else {
            0.0
        };
        let extra_fraction = if strategy.uses_cas() {
            design.extra_capacity_fraction
        } else {
            0.0
        };
        let peak = self.peak_demand_mw;
        let capacity_cap = peak * (1.0 + extra_fraction);

        // Each arm reduces to (unmet energy, covered hours, operational
        // tons, cycles) hour by hour, with no per-hour series
        // materialized anywhere.
        let (stats, operational_tons, cycles) = match strategy {
            StrategyKind::RenewablesOnly => {
                // Alignment is a constructor invariant (and the supply is
                // written into a demand-shaped buffer), so this goes
                // straight to the infallible slice kernel — the exact code
                // the checked `deficit_stats_dot` wrapper runs.
                let (stats, operational) = kernels::deficit_stats_dot_slices(
                    self.demand.values(),
                    supply.values(),
                    self.grid_intensity.values(),
                );
                (stats, operational, 0.0)
            }
            StrategyKind::RenewablesBattery => {
                let mut battery = ClcBattery::lfp(battery_mwh, self.dod);
                let result = simulate_dispatch_stats(
                    &mut battery,
                    &self.demand,
                    supply,
                    &self.grid_intensity,
                )
                .expect("aligned");
                (result.deficit, result.unmet_dot, result.equivalent_cycles)
            }
            StrategyKind::RenewablesCas => {
                let scheduler = GreedyScheduler::new(CasConfig {
                    max_capacity_mw: capacity_cap,
                    flexible_ratio: self.workload.flexible_fraction(),
                });
                scheduler
                    .schedule_with_order(&self.demand, supply, cost_order, schedule)
                    .expect("aligned");
                let (stats, operational) = kernels::deficit_stats_dot_slices(
                    schedule.shifted(),
                    supply.values(),
                    self.grid_intensity.values(),
                );
                (stats, operational, 0.0)
            }
            StrategyKind::RenewablesBatteryCas => {
                let mut battery = ClcBattery::lfp(battery_mwh, self.dod);
                let result = combined_dispatch_stats(
                    &mut battery,
                    &self.demand,
                    supply,
                    &self.grid_intensity,
                    CombinedConfig {
                        max_capacity_mw: capacity_cap,
                        flexible_ratio: self.workload.flexible_fraction(),
                        window_hours: 24,
                    },
                    combined,
                )
                .expect("aligned");
                (result.deficit, result.unmet_dot, result.equivalent_cycles)
            }
        };

        let coverage = Coverage::from_sums(
            self.demand_mwh,
            stats.unmet_mwh,
            stats.covered_hours,
            self.demand.len(),
        );

        // Embodied accounting from the precomputed per-MW energy yields:
        // `unit_sum × investment` replaces materializing (and summing) a
        // scaled generation series per design point.
        let solar_energy = if design.solar_mw > 0.0 {
            self.unit_solar_mwh * design.solar_mw
        } else {
            0.0
        };
        let wind_energy = if design.wind_mw > 0.0 {
            self.unit_wind_mwh * design.wind_mw
        } else {
            0.0
        };
        let embodied_renewables_tons = self
            .embodied
            .renewables
            .total_tons(solar_energy, wind_energy);
        let embodied_battery_tons =
            self.embodied
                .battery
                .amortized_tons_per_year(battery_mwh, self.dod, cycles);
        let embodied_servers_tons = self
            .embodied
            .server
            .amortized_tons_per_year(peak * extra_fraction);

        EvaluatedDesign {
            strategy,
            design: *design,
            coverage,
            operational_tons,
            embodied_renewables_tons,
            embodied_battery_tons,
            embodied_servers_tons,
            battery_cycles: cycles,
        }
    }

    /// Materializes the renewable supply for one (solar, wind) group and
    /// scores the whole battery × extra-capacity sub-grid against it.
    /// Group outputs are contiguous blocks of `DesignSpace::iter` order
    /// (solar and wind are the two outermost axes), so concatenating them
    /// reproduces the flat sweep order exactly.
    fn evaluate_group(
        &self,
        strategy: StrategyKind,
        solar_mw: f64,
        wind_mw: f64,
        sub: &[(f64, f64)],
        scratch: &mut EvalScratch,
    ) -> Vec<EvaluatedDesign> {
        let EvalScratch {
            supply,
            schedule,
            combined,
            cost_order,
        } = scratch;
        let supply = supply
            .get_or_insert_with(|| HourlySeries::zeros(self.demand.start(), self.demand.len()));
        self.grid.scaled_renewables_into(solar_mw, wind_mw, supply);
        if matches!(strategy, StrategyKind::RenewablesCas) {
            cost_order.rebuild_from_deficit_slices(self.demand.values(), supply.values());
        }
        sub.iter()
            .map(|&(battery_mwh, extra_capacity_fraction)| {
                let design = DesignPoint {
                    solar_mw,
                    wind_mw,
                    battery_mwh,
                    extra_capacity_fraction,
                };
                self.score_with_supply(strategy, &design, supply, schedule, combined, cost_order)
            })
            .collect()
    }

    /// Scores every point of `space` (restricted to the axes `strategy`
    /// uses) in parallel and returns the evaluations in iteration order —
    /// the same order, and bitwise-identical values, as
    /// [`CarbonExplorer::explore_serial`].
    ///
    /// The traversal is **supply-major factorized**: the scaled renewable
    /// supply depends only on the (solar, wind) coordinates, so the grid
    /// is grouped by those two axes, each group's supply is written into
    /// the worker's scratch once, and the battery × extra-capacity
    /// sub-grid is swept against the cached series. On a `B × E`
    /// sub-grid this divides the supply-synthesis work (two scaled
    /// year-long series plus their sum) by `B × E` relative to the
    /// point-per-point path, without changing a single float operation in
    /// any evaluation: the cached supply is bitwise what
    /// [`CarbonExplorer::evaluate_with`] would have recomputed. For the
    /// CAS strategy the per-day cost sort is hoisted the same way: the
    /// group's [`CostOrder`] is rebuilt once alongside its supply and
    /// every sub-point schedules through the cached permutations, which
    /// reproduce the sorting path's stable order exactly.
    #[must_use]
    pub fn explore(&self, strategy: StrategyKind, space: &DesignSpace) -> Vec<EvaluatedDesign> {
        let space = space.restricted_to(strategy);
        let (groups, sub) = factor_space(&space);
        let blocks = ce_parallel::par_map_with(
            &groups,
            EvalScratch::default,
            |scratch, &(solar_mw, wind_mw)| {
                self.evaluate_group(strategy, solar_mw, wind_mw, &sub, scratch)
            },
        );
        blocks.into_iter().flatten().collect()
    }

    /// Streams the sweep of `space` one supply group at a time: `visit`
    /// is called once per (solar, wind) group, in sweep order, with that
    /// group's contiguous block of evaluations. Concatenating the blocks
    /// reproduces [`CarbonExplorer::explore`] exactly — same order, same
    /// bits — because groups are contiguous prefixes of the
    /// `DesignSpace::iter` order (see [`CarbonExplorer::explore`]'s
    /// factorization notes). The traversal is serial by construction;
    /// callers that want parallelism use `explore`, callers that want
    /// incremental output (e.g. `ce-serve`'s chunked `/explore`
    /// responses) use this.
    pub fn explore_groups(
        &self,
        strategy: StrategyKind,
        space: &DesignSpace,
        mut visit: impl FnMut(&[EvaluatedDesign]),
    ) {
        let space = space.restricted_to(strategy);
        let (groups, sub) = factor_space(&space);
        let mut scratch = EvalScratch::default();
        for &(solar_mw, wind_mw) in &groups {
            let block = self.evaluate_group(strategy, solar_mw, wind_mw, &sub, &mut scratch);
            visit(&block);
        }
    }

    /// The serial reference implementation of [`CarbonExplorer::explore`]:
    /// identical results on one thread. Kept public for determinism tests
    /// and serial-vs-parallel benchmarking.
    #[must_use]
    pub fn explore_serial(
        &self,
        strategy: StrategyKind,
        space: &DesignSpace,
    ) -> Vec<EvaluatedDesign> {
        let mut scratch = EvalScratch::default();
        space
            .restricted_to(strategy)
            .iter()
            .map(|design| self.evaluate_with(strategy, &design, &mut scratch))
            .collect()
    }

    /// The carbon-optimal design in `space` for `strategy` (minimum total
    /// carbon), or `None` for an empty space.
    ///
    /// Streams the minimum instead of materializing the full evaluation
    /// vector: each worker folds its contiguous chunk of (solar, wind)
    /// groups — supply cached once per group, exactly as in
    /// [`CarbonExplorer::explore`] — down to a single best candidate, and
    /// the per-chunk candidates are combined in input order with a
    /// strictly-less replacement rule. That rule makes the *first*
    /// minimum in sweep order win, matching what
    /// `explore(..).into_iter().min_by(..)` returns, bitwise.
    pub fn optimal(&self, strategy: StrategyKind, space: &DesignSpace) -> Option<EvaluatedDesign> {
        let space = space.restricted_to(strategy);
        let (groups, sub) = factor_space(&space);
        if sub.is_empty() {
            return None;
        }
        ce_parallel::par_fold_chunks_with(
            &groups,
            EvalScratch::default,
            |scratch, chunk| {
                let mut best: Option<EvaluatedDesign> = None;
                for &(solar_mw, wind_mw) in chunk {
                    let EvalScratch {
                        supply,
                        schedule,
                        combined,
                        cost_order,
                    } = scratch;
                    let supply = supply.get_or_insert_with(|| {
                        HourlySeries::zeros(self.demand.start(), self.demand.len())
                    });
                    self.grid.scaled_renewables_into(solar_mw, wind_mw, supply);
                    if matches!(strategy, StrategyKind::RenewablesCas) {
                        cost_order
                            .rebuild_from_deficit_slices(self.demand.values(), supply.values());
                    }
                    for &(battery_mwh, extra_capacity_fraction) in &sub {
                        let design = DesignPoint {
                            solar_mw,
                            wind_mw,
                            battery_mwh,
                            extra_capacity_fraction,
                        };
                        let eval = self.score_with_supply(
                            strategy, &design, supply, schedule, combined, cost_order,
                        );
                        best = Some(match best.take() {
                            Some(incumbent) => first_min(incumbent, eval),
                            None => eval,
                        });
                    }
                }
                // Chunks and the sub-grid are non-empty, so `best` is
                // always `Some`; carrying the `Option` through the combine
                // keeps this path panic-free regardless.
                best
            },
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(first_min(a, b)),
                (a, None) => a,
                (None, b) => b,
            },
        )
        .flatten()
    }

    /// [`CarbonExplorer::optimal`] followed by `rounds` of local
    /// refinement: each round re-sweeps a space of the same step count
    /// centered on the incumbent with half the span per axis, quartering
    /// the grid resolution around the optimum. This is how the harness
    /// resolves near-100%-coverage optima that a coarse grid would miss.
    pub fn optimal_refined(
        &self,
        strategy: StrategyKind,
        space: &DesignSpace,
        rounds: usize,
    ) -> Option<EvaluatedDesign> {
        let mut best = self.optimal(strategy, space)?;
        let mut current = space.clone();
        for _ in 0..rounds {
            current = zoom_axis_space(&current, space, &best.design);
            if let Some(refined) = self.optimal(strategy, &current) {
                if refined.total_tons() < best.total_tons() {
                    best = refined;
                }
            }
        }
        Some(best)
    }
}

/// A flattened two-axis grid: the cross product of two axes in nesting
/// order (first axis outermost).
type AxisPairs = Vec<(f64, f64)>;

/// Splits a design space into its supply-determining (solar, wind) groups
/// and the (battery, extra-capacity) sub-grid swept inside each group.
/// Both lists are in `DesignSpace::iter` nesting order (solar outermost,
/// extra capacity innermost), so iterating `groups × sub` reproduces the
/// flat iteration order exactly.
fn factor_space(space: &DesignSpace) -> (AxisPairs, AxisPairs) {
    let solar = axis_values(space.solar);
    let wind = axis_values(space.wind);
    let battery = axis_values(space.battery);
    let extra = axis_values(space.extra_capacity);
    let mut groups = Vec::with_capacity(solar.len() * wind.len());
    for &s in &solar {
        for &w in &wind {
            groups.push((s, w));
        }
    }
    let mut sub = Vec::with_capacity(battery.len() * extra.len());
    for &b in &battery {
        for &e in &extra {
            sub.push((b, e));
        }
    }
    (groups, sub)
}

/// First-minimum-wins combine: the candidate replaces the incumbent only
/// when strictly lower, so ties keep the earlier point in sweep order —
/// the same winner `Iterator::min_by` would select over the flat sweep.
/// Totals are finite (`score_with_supply` rejects non-finite designs), so
/// the plain `<` is exactly `partial_cmp == Less`.
fn first_min(incumbent: EvaluatedDesign, candidate: EvaluatedDesign) -> EvaluatedDesign {
    if candidate.total_tons() < incumbent.total_tons() {
        candidate
    } else {
        incumbent
    }
}

/// Shrinks each axis of `current` to half its span, centered on `around`,
/// clamped to the `original` bounds.
fn zoom_axis_space(
    current: &DesignSpace,
    original: &DesignSpace,
    around: &DesignPoint,
) -> DesignSpace {
    let zoom = |(cur_min, cur_max, steps): (f64, f64, usize),
                (orig_min, orig_max, _): (f64, f64, usize),
                center: f64| {
        if steps <= 1 {
            return (cur_min, cur_max, steps);
        }
        let half = (cur_max - cur_min) / 4.0;
        let lo = (center - half).max(orig_min);
        let hi = (center + half).min(orig_max);
        (lo, hi, steps)
    };
    DesignSpace {
        solar: zoom(current.solar, original.solar, around.solar_mw),
        wind: zoom(current.wind, original.wind, around.wind_mw),
        battery: zoom(current.battery, original.battery, around.battery_mwh),
        extra_capacity: zoom(
            current.extra_capacity,
            original.extra_capacity,
            around.extra_capacity_fraction,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datacenter::Fleet;
    use ce_grid::BalancingAuthority;

    fn utah_explorer() -> CarbonExplorer {
        let site = Fleet::meta_us().site("UT").unwrap().clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        CarbonExplorer::new(site.demand_trace(2020, 7), grid)
    }

    #[test]
    fn no_investment_means_all_grid_energy() {
        let explorer = utah_explorer();
        let eval = explorer.evaluate(
            StrategyKind::RenewablesOnly,
            &DesignPoint::renewables(0.0, 0.0),
        );
        assert_eq!(eval.coverage.percent(), 0.0);
        assert!(eval.operational_tons > 0.0);
        assert_eq!(eval.embodied_tons(), 0.0);
    }

    #[test]
    fn more_renewables_increase_coverage_and_embodied() {
        let explorer = utah_explorer();
        let small = explorer.evaluate(
            StrategyKind::RenewablesOnly,
            &DesignPoint::renewables(50.0, 50.0),
        );
        let large = explorer.evaluate(
            StrategyKind::RenewablesOnly,
            &DesignPoint::renewables(500.0, 500.0),
        );
        assert!(large.coverage.fraction() > small.coverage.fraction());
        assert!(large.embodied_renewables_tons > small.embodied_renewables_tons);
        assert!(large.operational_tons < small.operational_tons);
    }

    #[test]
    fn workload_mix_changes_scheduled_coverage() {
        let design = DesignPoint {
            solar_mw: 300.0,
            wind_mw: 150.0,
            battery_mwh: 0.0,
            extra_capacity_fraction: 0.3,
        };
        let rigid = utah_explorer()
            .with_workload(WorkloadMix::inflexible())
            .evaluate(StrategyKind::RenewablesCas, &design);
        let flexible = utah_explorer()
            .with_workload(WorkloadMix::fully_flexible())
            .evaluate(StrategyKind::RenewablesCas, &design);
        assert!(flexible.coverage.fraction() >= rigid.coverage.fraction());
    }

    #[test]
    fn battery_improves_on_renewables_only() {
        let explorer = utah_explorer();
        let design = DesignPoint {
            solar_mw: 300.0,
            wind_mw: 150.0,
            battery_mwh: 200.0,
            extra_capacity_fraction: 0.0,
        };
        let plain = explorer.evaluate(StrategyKind::RenewablesOnly, &design);
        let battery = explorer.evaluate(StrategyKind::RenewablesBattery, &design);
        assert!(battery.coverage.fraction() > plain.coverage.fraction());
        assert!(battery.operational_tons < plain.operational_tons);
        assert!(battery.embodied_battery_tons > 0.0);
        assert!(battery.battery_cycles > 0.0);
    }

    #[test]
    fn cas_improves_on_renewables_only() {
        let explorer = utah_explorer();
        let design = DesignPoint {
            solar_mw: 300.0,
            wind_mw: 150.0,
            battery_mwh: 0.0,
            extra_capacity_fraction: 0.5,
        };
        let plain = explorer.evaluate(StrategyKind::RenewablesOnly, &design);
        let cas = explorer.evaluate(StrategyKind::RenewablesCas, &design);
        assert!(cas.coverage.fraction() > plain.coverage.fraction());
        assert!(cas.embodied_servers_tons > 0.0);
    }

    #[test]
    fn combined_is_at_least_as_good_as_either_alone() {
        let explorer = utah_explorer();
        let design = DesignPoint {
            solar_mw: 300.0,
            wind_mw: 150.0,
            battery_mwh: 100.0,
            extra_capacity_fraction: 0.3,
        };
        let battery = explorer.evaluate(StrategyKind::RenewablesBattery, &design);
        let cas = explorer.evaluate(StrategyKind::RenewablesCas, &design);
        let both = explorer.evaluate(StrategyKind::RenewablesBatteryCas, &design);
        assert!(both.coverage.fraction() >= battery.coverage.fraction() - 1e-9);
        assert!(both.coverage.fraction() >= cas.coverage.fraction() - 1e-9);
    }

    #[test]
    fn inert_axes_do_not_change_strategy_results() {
        let explorer = utah_explorer();
        let with_battery_axis = DesignPoint {
            solar_mw: 200.0,
            wind_mw: 100.0,
            battery_mwh: 500.0,
            extra_capacity_fraction: 0.8,
        };
        let without = DesignPoint::renewables(200.0, 100.0);
        let a = explorer.evaluate(StrategyKind::RenewablesOnly, &with_battery_axis);
        let b = explorer.evaluate(StrategyKind::RenewablesOnly, &without);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.operational_tons, b.operational_tons);
        assert_eq!(a.embodied_battery_tons, 0.0);
        assert_eq!(a.embodied_servers_tons, 0.0);
    }

    #[test]
    fn optimal_never_exceeds_any_explored_point() {
        let explorer = utah_explorer();
        let space = DesignSpace {
            solar: (0.0, 400.0, 3),
            wind: (0.0, 400.0, 3),
            battery: (0.0, 200.0, 2),
            extra_capacity: (0.0, 0.5, 2),
        };
        for strategy in StrategyKind::ALL {
            let all = explorer.explore(strategy, &space);
            let best = explorer.optimal(strategy, &space).unwrap();
            for eval in &all {
                assert!(best.total_tons() <= eval.total_tons() + 1e-9);
            }
        }
    }

    #[test]
    fn solar_only_region_coverage_caps_near_half() {
        // North Carolina (DUK): no wind on the grid, so even huge
        // investments cannot push renewables-only coverage much past ~50%.
        let fleet = Fleet::meta_us();
        let site = fleet.site("NC").unwrap().clone();
        let grid = GridDataset::synthesize(BalancingAuthority::DUK, 2020, 7);
        let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
        let eval = explorer.evaluate(
            StrategyKind::RenewablesOnly,
            &DesignPoint::renewables(50_000.0, 50_000.0),
        );
        assert!(
            eval.coverage.fraction() < 0.62,
            "solar-only coverage {} should cap near 50%",
            eval.coverage
        );
    }

    #[test]
    fn refinement_never_worsens_the_optimum() {
        let explorer = utah_explorer();
        let space = DesignSpace {
            solar: (0.0, 500.0, 3),
            wind: (0.0, 500.0, 3),
            battery: (0.0, 300.0, 3),
            extra_capacity: (0.0, 0.0, 1),
        };
        let coarse = explorer
            .optimal(StrategyKind::RenewablesBattery, &space)
            .unwrap();
        let refined = explorer
            .optimal_refined(StrategyKind::RenewablesBattery, &space, 2)
            .unwrap();
        assert!(refined.total_tons() <= coarse.total_tons() + 1e-9);
    }

    #[test]
    fn canonical_fields_match_accessors() {
        let explorer = utah_explorer();
        let eval = explorer.evaluate(
            StrategyKind::RenewablesBattery,
            &DesignPoint {
                solar_mw: 300.0,
                wind_mw: 150.0,
                battery_mwh: 200.0,
                extra_capacity_fraction: 0.0,
            },
        );
        let fields = eval.canonical_fields();
        let get = |name: &str| -> f64 {
            fields
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("total_tons").to_bits(), eval.total_tons().to_bits());
        assert_eq!(
            get("embodied_tons").to_bits(),
            eval.embodied_tons().to_bits()
        );
        assert_eq!(
            get("coverage_fraction").to_bits(),
            eval.coverage.fraction().to_bits()
        );
        assert_eq!(
            get("operational_tons").to_bits(),
            eval.operational_tons.to_bits()
        );
        // Names are unique and the order is fixed.
        let names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert_eq!(names[0], "coverage_fraction");
        assert_eq!(names[10], "battery_cycles");
    }

    #[test]
    fn explore_groups_concatenation_is_bitwise_identical() {
        let explorer = utah_explorer();
        let space = DesignSpace {
            solar: (0.0, 300.0, 3),
            wind: (0.0, 200.0, 2),
            battery: (0.0, 100.0, 4),
            extra_capacity: (0.0, 0.5, 2),
        };
        let strategy = StrategyKind::RenewablesBatteryCas;
        let reference = explorer.explore(strategy, &space);

        let mut blocks = 0usize;
        let mut streamed = Vec::new();
        explorer.explore_groups(strategy, &space, |block| {
            blocks += 1;
            streamed.extend_from_slice(block);
        });

        // One visit per (solar, wind) supply group, covering the whole sweep.
        assert_eq!(blocks, 3 * 2);
        assert_eq!(streamed.len(), reference.len());
        for (a, b) in streamed.iter().zip(&reference) {
            assert_eq!(a.design, b.design);
            for ((name_a, va), (name_b, vb)) in
                a.canonical_fields().iter().zip(b.canonical_fields())
            {
                assert_eq!(name_a, &name_b);
                assert_eq!(va.to_bits(), vb.to_bits(), "{name_a} differs");
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_design() {
        let explorer = utah_explorer();
        let _ = explorer.evaluate(
            StrategyKind::RenewablesOnly,
            &DesignPoint::renewables(f64::NAN, 0.0),
        );
    }

    #[test]
    #[should_panic(expected = "DoD")]
    fn rejects_bad_dod() {
        let _ = utah_explorer().with_dod(0.0);
    }
}
