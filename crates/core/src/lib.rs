//! Carbon Explorer core: renewable coverage, energy-supply scenarios,
//! holistic design-space exploration, and Pareto analysis.
//!
//! This crate is the paper's primary contribution. Given a datacenter
//! demand trace and a grid dataset (from `ce-datacenter` and `ce-grid`),
//! it evaluates *design points* — a (solar, wind) investment, a battery
//! capacity, and extra server capacity for demand response — under four
//! strategies (paper §5.2):
//!
//! 1. renewables only,
//! 2. renewables + battery,
//! 3. renewables + carbon-aware scheduling (CAS),
//! 4. renewables + battery + CAS,
//!
//! scoring each by **operational carbon** (grid energy consumed × hourly
//! grid carbon intensity) plus **embodied carbon** (amortized
//! manufacturing footprints from `ce-embodied`), and searching the space
//! exhaustively for the carbon-optimal configuration.
//!
//! # Example
//!
//! ```
//! use ce_core::{CarbonExplorer, DesignPoint, StrategyKind};
//! use ce_datacenter::Fleet;
//! use ce_grid::GridDataset;
//!
//! let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
//! let grid = GridDataset::synthesize(site.ba(), 2020, 7);
//! let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
//!
//! let design = DesignPoint {
//!     solar_mw: site.solar_mw(),
//!     wind_mw: site.wind_mw(),
//!     battery_mwh: 100.0,
//!     extra_capacity_fraction: 0.0,
//! };
//! let eval = explorer.evaluate(StrategyKind::RenewablesBattery, &design);
//! assert!(eval.coverage.fraction() > 0.5);
//! assert!(eval.total_tons() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod coverage;
pub mod design;
pub mod ensemble;
pub mod explore;
pub mod pareto;
pub mod provenance;
pub mod report;
pub mod scenario;
pub mod seasonal;
pub mod sensitivity;

pub use accounting::{match_credits, MatchingGranularity, MatchingReport};
pub use coverage::{renewable_coverage, Coverage};
pub use design::{DesignPoint, DesignSpace, StrategyKind};
pub use ensemble::{EnsembleResult, EnsembleSpec, Spread};
pub use explore::{CarbonExplorer, EvalScratch, EvaluatedDesign};
pub use pareto::ParetoFrontier;
pub use scenario::Scenario;
pub use seasonal::{monthly_coverage, worst_month, MonthlyCoverage};
pub use sensitivity::{tornado, Parameter, SensitivityRow};
