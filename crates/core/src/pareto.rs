//! Pareto-frontier extraction over (embodied, operational) carbon
//! (paper Figure 14).

use crate::explore::EvaluatedDesign;
use serde::{Deserialize, Serialize};

/// The set of non-dominated designs: no other design has both lower
/// embodied *and* lower operational carbon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    points: Vec<EvaluatedDesign>,
}

impl ParetoFrontier {
    /// Extracts the frontier from a set of evaluations. The result is
    /// sorted by embodied carbon ascending (so operational carbon descends
    /// along it).
    pub fn from_evaluations(evaluations: &[EvaluatedDesign]) -> Self {
        let mut sorted: Vec<&EvaluatedDesign> = evaluations.iter().collect();
        sorted.sort_by(|a, b| {
            a.embodied_tons()
                .total_cmp(&b.embodied_tons())
                .then(a.operational_tons.total_cmp(&b.operational_tons))
        });
        let mut points: Vec<EvaluatedDesign> = Vec::new();
        let mut best_operational = f64::INFINITY;
        for eval in sorted {
            if eval.operational_tons < best_operational - 1e-9 {
                best_operational = eval.operational_tons;
                points.push(eval.clone());
            }
        }
        Self { points }
    }

    /// The frontier points, embodied carbon ascending.
    #[must_use]
    pub fn points(&self) -> &[EvaluatedDesign] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the frontier is empty (no input evaluations).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The frontier point with minimum *total* carbon — the carbon-optimal
    /// design.
    pub fn carbon_optimal(&self) -> Option<&EvaluatedDesign> {
        self.points
            .iter()
            .min_by(|a, b| a.total_tons().total_cmp(&b.total_tons()))
    }

    /// The cheapest frontier point that achieves full 24/7 coverage, if
    /// any does.
    pub fn cheapest_full_coverage(&self) -> Option<&EvaluatedDesign> {
        self.points
            .iter()
            .filter(|e| e.coverage.is_full())
            .min_by(|a, b| a.total_tons().total_cmp(&b.total_tons()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::Coverage;
    use crate::design::{DesignPoint, StrategyKind};
    use ce_timeseries::{HourlySeries, Timestamp};

    fn eval(embodied: f64, operational: f64, covered: bool) -> EvaluatedDesign {
        let start = Timestamp::start_of_year(2020);
        let demand = HourlySeries::constant(start, 2, 10.0);
        let unmet = if covered {
            HourlySeries::zeros(start, 2)
        } else {
            HourlySeries::constant(start, 2, 1.0)
        };
        EvaluatedDesign {
            strategy: StrategyKind::RenewablesOnly,
            design: DesignPoint::renewables(0.0, 0.0),
            coverage: Coverage::from_unmet(&demand, &unmet).unwrap(),
            operational_tons: operational,
            embodied_renewables_tons: embodied,
            embodied_battery_tons: 0.0,
            embodied_servers_tons: 0.0,
            battery_cycles: 0.0,
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let evals = vec![
            eval(10.0, 100.0, false),
            eval(20.0, 50.0, false),
            eval(15.0, 120.0, false), // dominated by the first point
            eval(30.0, 10.0, false),
        ];
        let frontier = ParetoFrontier::from_evaluations(&evals);
        assert_eq!(frontier.len(), 3);
        let embodied: Vec<f64> = frontier
            .points()
            .iter()
            .map(|e| e.embodied_tons())
            .collect();
        assert_eq!(embodied, vec![10.0, 20.0, 30.0]);
        // Operational strictly decreases along the frontier.
        let ops: Vec<f64> = frontier
            .points()
            .iter()
            .map(|e| e.operational_tons)
            .collect();
        assert!(ops.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn carbon_optimal_minimizes_total() {
        let evals = vec![
            eval(10.0, 100.0, false), // total 110
            eval(40.0, 30.0, false),  // total 70 ← optimal
            eval(90.0, 0.0, true),    // total 90
        ];
        let frontier = ParetoFrontier::from_evaluations(&evals);
        assert_eq!(frontier.carbon_optimal().unwrap().total_tons(), 70.0);
    }

    #[test]
    fn cheapest_full_coverage_filters() {
        let evals = vec![
            eval(10.0, 50.0, false),
            eval(100.0, 0.0, true),
            eval(200.0, 0.0, true), // dominated anyway
        ];
        let frontier = ParetoFrontier::from_evaluations(&evals);
        let full = frontier.cheapest_full_coverage().unwrap();
        assert_eq!(full.embodied_tons(), 100.0);
        // Without full-coverage points, None.
        let frontier = ParetoFrontier::from_evaluations(&[eval(1.0, 1.0, false)]);
        assert!(frontier.cheapest_full_coverage().is_none());
    }

    #[test]
    fn empty_input_empty_frontier() {
        let frontier = ParetoFrontier::from_evaluations(&[]);
        assert!(frontier.is_empty());
        assert!(frontier.carbon_optimal().is_none());
    }

    #[test]
    fn duplicate_points_collapse() {
        let evals = vec![eval(10.0, 10.0, false), eval(10.0, 10.0, false)];
        let frontier = ParetoFrontier::from_evaluations(&evals);
        assert_eq!(frontier.len(), 1);
    }
}
