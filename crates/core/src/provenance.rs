//! Manifest assembly over evaluation results: the bridge between
//! `ce-manifest`'s generic lineage records and this crate's concrete
//! result types.
//!
//! Two digests anchor every record. The **input hash** is taken over a
//! canonical input key — the same canonical-key strings `ce-serve` uses
//! as cache identities, so one spelling of a scenario has one hash
//! everywhere. The **result hash** runs over every evaluation's
//! [`EvaluatedDesign::canonical_fields`] (plus its strategy and design
//! coordinates) in evaluation order, floats by IEEE-754 bit pattern:
//! bitwise-equal results — the invariant every kernel in this workspace
//! pins — produce byte-equal digests, and nothing else does.

use crate::design::DesignPoint;
use crate::ensemble::EnsembleResult;
use crate::explore::EvaluatedDesign;
use ce_manifest::{CanonicalHasher, Manifest, Recomputed, INPUT_DOMAIN, RESULT_DOMAIN};

/// Hash of a canonical input key (e.g. a `ce-serve` request key or a
/// bench scenario key), under the input domain.
pub fn input_key_digest_hex(key: &str) -> String {
    let mut h = CanonicalHasher::new(INPUT_DOMAIN);
    h.field_str("key", key);
    h.finish().to_hex()
}

/// Absorbs one evaluation into `h` in the pinned field order: strategy,
/// design coordinates, then every canonical metric field.
fn absorb_evaluation(h: &mut CanonicalHasher, eval: &EvaluatedDesign) {
    h.field_str("strategy", eval.strategy.canonical_key());
    absorb_design(h, &eval.design);
    for (name, value) in eval.canonical_fields() {
        h.field_f64(name, value);
    }
}

/// Absorbs a design point's four coordinates.
fn absorb_design(h: &mut CanonicalHasher, design: &DesignPoint) {
    h.field_f64("solar_mw", design.solar_mw);
    h.field_f64("wind_mw", design.wind_mw);
    h.field_f64("battery_mwh", design.battery_mwh);
    h.field_f64("extra_capacity_fraction", design.extra_capacity_fraction);
}

/// Streaming form of [`results_digest_hex`]: absorbs evaluations in
/// arbitrary-sized groups (e.g. one supply group at a time from a chunked
/// `/explore` sweep) and yields the same digest as hashing the
/// concatenated sequence in one call.
pub struct ResultHasher {
    inner: CanonicalHasher,
}

impl ResultHasher {
    /// A fresh hasher under the result domain.
    pub fn new() -> Self {
        Self {
            inner: CanonicalHasher::new(RESULT_DOMAIN),
        }
    }

    /// Absorbs a run of evaluations, in order.
    pub fn absorb(&mut self, evaluations: &[EvaluatedDesign]) {
        for eval in evaluations {
            absorb_evaluation(&mut self.inner, eval);
        }
    }

    /// The hex digest of everything absorbed so far.
    #[must_use]
    pub fn finish_hex(self) -> String {
        self.inner.finish().to_hex()
    }
}

impl Default for ResultHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonical digest of a result sequence, under the result domain.
/// Evaluation order is significant; each evaluation contributes a fixed
/// field count, so the framing is unambiguous without explicit indices.
pub fn results_digest_hex(evaluations: &[EvaluatedDesign]) -> String {
    let mut h = ResultHasher::new();
    h.absorb(evaluations);
    h.finish_hex()
}

/// Both hashes a verifier needs, re-derived from a fresh recomputation —
/// the value to return from a `ce_manifest::verify` callback.
pub fn recomputed(input_key: &str, evaluations: &[EvaluatedDesign]) -> Recomputed {
    Recomputed {
        input_hash: input_key_digest_hex(input_key),
        result_hash: results_digest_hex(evaluations),
    }
}

/// Assembles a manifest from an already-computed result digest (the
/// streaming path: a [`ResultHasher`] ran alongside the computation).
/// Stamps the current build's code fingerprint.
#[allow(clippy::too_many_arguments)]
pub fn manifest_with_result_hash(
    kind: &str,
    ba: &str,
    strategy: &str,
    years: &[i32],
    seeds: &[u64],
    input_key: &str,
    result_hash: String,
) -> Manifest {
    Manifest {
        schema: ce_manifest::SCHEMA_VERSION,
        kind: kind.to_string(),
        ba: ba.to_string(),
        strategy: strategy.to_string(),
        years: years.to_vec(),
        seeds: seeds.to_vec(),
        code_fingerprint: ce_manifest::CODE_FINGERPRINT.to_string(),
        input_hash: input_key_digest_hex(input_key),
        result_hash,
    }
}

/// Assembles a full manifest for a result sequence, stamping the current
/// build's code fingerprint.
#[allow(clippy::too_many_arguments)]
pub fn build_manifest(
    kind: &str,
    ba: &str,
    strategy: &str,
    years: &[i32],
    seeds: &[u64],
    input_key: &str,
    evaluations: &[EvaluatedDesign],
) -> Manifest {
    manifest_with_result_hash(
        kind,
        ba,
        strategy,
        years,
        seeds,
        input_key,
        results_digest_hex(evaluations),
    )
}

/// A manifest for an ensemble run: kind `"ensemble"`, one year, N seeds,
/// results in seed order. `input_key` should canonically spell the
/// scenario (site, year, seeds, strategy, design).
pub fn ensemble_manifest(ba: &str, input_key: &str, result: &EnsembleResult) -> Manifest {
    build_manifest(
        "ensemble",
        ba,
        result.strategy.canonical_key(),
        &[result.year],
        &result.seeds,
        input_key,
        &result.evaluations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::StrategyKind;
    use crate::ensemble::EnsembleSpec;
    use crate::explore::CarbonExplorer;
    use ce_datacenter::Fleet;
    use ce_grid::GridDataset;
    use ce_manifest::verify;

    fn utah_eval() -> EvaluatedDesign {
        let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
        explorer.evaluate(
            StrategyKind::RenewablesBattery,
            &DesignPoint {
                solar_mw: 150.0,
                wind_mw: 100.0,
                battery_mwh: 40.0,
                extra_capacity_fraction: 0.0,
            },
        )
    }

    #[test]
    fn manifest_verifies_against_faithful_recomputation() {
        let eval = utah_eval();
        let key = "site=UT;year=2020;seed=7;strategy=renewables_battery";
        let manifest = build_manifest(
            "evaluate",
            "PACE",
            "renewables_battery",
            &[2020],
            &[7],
            key,
            std::slice::from_ref(&eval),
        );
        assert_eq!(manifest.validate(), Ok(()));
        // Recomputing the evaluation from scratch reproduces both hashes.
        let fresh = utah_eval();
        assert_eq!(
            verify(&manifest, |_| recomputed(key, std::slice::from_ref(&fresh))),
            Ok(())
        );
    }

    #[test]
    fn result_digest_is_sensitive_to_any_bit() {
        let eval = utah_eval();
        let base = results_digest_hex(std::slice::from_ref(&eval));
        let mut tweaked = eval.clone();
        tweaked.operational_tons = f64::from_bits(tweaked.operational_tons.to_bits() ^ 1);
        assert_ne!(results_digest_hex(std::slice::from_ref(&tweaked)), base);
    }

    #[test]
    fn groupwise_absorption_matches_one_shot_digest() {
        let a = utah_eval();
        let mut b = a.clone();
        b.operational_tons += 1.0;
        let mut c = a.clone();
        c.design.wind_mw += 5.0;
        let all = [a, b, c];
        let one_shot = results_digest_hex(&all);
        for split in 0..=all.len() {
            let mut h = ResultHasher::new();
            h.absorb(&all[..split]);
            h.absorb(&all[split..]);
            assert_eq!(h.finish_hex(), one_shot, "split at {split}");
        }
    }

    #[test]
    fn result_digest_is_order_sensitive() {
        let a = utah_eval();
        let mut b = a.clone();
        b.design.solar_mw += 1.0;
        let b = {
            let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
            let grid = GridDataset::synthesize(site.ba(), 2020, 7);
            CarbonExplorer::new(site.demand_trace(2020, 7), grid)
                .evaluate(StrategyKind::RenewablesOnly, &b.design)
        };
        let ab = results_digest_hex(&[a.clone(), b.clone()]);
        let ba = results_digest_hex(&[b, a]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn ensemble_manifest_round_trips() {
        let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
        let spec = EnsembleSpec::consecutive(2020, 7, 3);
        let design = DesignPoint::renewables(150.0, 100.0);
        let build = |seed: u64| {
            CarbonExplorer::new(
                site.demand_trace(2020, seed),
                GridDataset::synthesize(site.ba(), 2020, seed),
            )
        };
        let result = spec.evaluate(StrategyKind::RenewablesOnly, &design, build);
        let key = "site=UT;year=2020;seeds=7..10;strategy=renewables_only";
        let manifest = ensemble_manifest(site.ba().code(), key, &result);
        assert_eq!(manifest.kind, "ensemble");
        assert_eq!(manifest.seeds, vec![7, 8, 9]);
        assert_eq!(manifest.validate(), Ok(()));
        let again = spec.evaluate_serial(StrategyKind::RenewablesOnly, &design, build);
        assert_eq!(
            verify(&manifest, |_| recomputed(key, &again.evaluations)),
            Ok(())
        );
    }
}
