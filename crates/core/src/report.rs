//! Plain-text rendering of exploration results, used by the reproduction
//! harness to print the paper's tables and figure data.

use crate::explore::EvaluatedDesign;
use std::fmt::Write as _;

/// Renders a fixed-width table. `headers` and every row must have the same
/// arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity must match header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        out.truncate(out.trim_end().len());
        out.push('\n');
    };
    write_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Renders an evaluation as a table row:
/// `[strategy, solar, wind, battery, +servers, coverage, op, embodied, total]`.
pub fn evaluation_row(eval: &EvaluatedDesign) -> Vec<String> {
    vec![
        eval.strategy.label().to_string(),
        format!("{:.0}", eval.design.solar_mw),
        format!("{:.0}", eval.design.wind_mw),
        format!("{:.0}", eval.design.battery_mwh),
        format!("{:.0}%", eval.design.extra_capacity_fraction * 100.0),
        format!("{:.1}%", eval.coverage.percent()),
        format!("{:.0}", eval.operational_tons),
        format!("{:.0}", eval.embodied_tons()),
        format!("{:.0}", eval.total_tons()),
    ]
}

/// The header matching [`evaluation_row`].
pub fn evaluation_headers() -> [&'static str; 9] {
    [
        "strategy",
        "solar MW",
        "wind MW",
        "batt MWh",
        "+serv",
        "coverage",
        "op tCO2",
        "emb tCO2",
        "total tCO2",
    ]
}

/// Renders a compact ASCII sparkline of a value series (8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    if values.is_empty() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "22222".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        assert_eq!(sparkline(&[]), "");
        // Constant input doesn't panic.
        assert_eq!(sparkline(&[5.0, 5.0]).chars().count(), 2);
    }

    #[test]
    fn evaluation_row_matches_header_arity() {
        use crate::coverage::Coverage;
        use crate::design::{DesignPoint, StrategyKind};
        use ce_timeseries::{HourlySeries, Timestamp};
        let start = Timestamp::start_of_year(2020);
        let demand = HourlySeries::constant(start, 2, 1.0);
        let unmet = HourlySeries::zeros(start, 2);
        let eval = EvaluatedDesign {
            strategy: StrategyKind::RenewablesOnly,
            design: DesignPoint::renewables(1.0, 2.0),
            coverage: Coverage::from_unmet(&demand, &unmet).unwrap(),
            operational_tons: 0.0,
            embodied_renewables_tons: 0.0,
            embodied_battery_tons: 0.0,
            embodied_servers_tons: 0.0,
            battery_cycles: 0.0,
        };
        assert_eq!(evaluation_row(&eval).len(), evaluation_headers().len());
    }
}
