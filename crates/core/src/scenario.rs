//! Energy-supply scenarios and their hourly operational carbon intensity
//! (paper §3.2 and Figure 6).
//!
//! Three ways a datacenter can relate to the grid:
//!
//! - **Grid mix** — consume whatever the grid serves; intensity is the
//!   grid's hourly generation-weighted intensity;
//! - **Net Zero** — invest in renewables and match *annually* with
//!   credits; physically, deficit hours still consume grid-mix energy, so
//!   the hourly intensity spikes whenever renewables fall short even
//!   though the annual paper accounting reads zero;
//! - **24/7 carbon-free** — cover every hour with renewables plus storage
//!   and scheduling; hourly intensity is (near) zero.

use ce_grid::GridDataset;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A datacenter energy-supply scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Consume the grid's generation mix directly.
    GridMix,
    /// Renewable investments with annual credit matching (the state of the
    /// art for hyperscalers).
    NetZero,
    /// Hourly matching via renewables + storage + scheduling.
    CarbonFree247,
}

impl Scenario {
    /// All scenarios in Figure 6's order.
    pub const ALL: [Scenario; 3] = [
        Scenario::GridMix,
        Scenario::NetZero,
        Scenario::CarbonFree247,
    ];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::GridMix => "Grid Mix",
            Scenario::NetZero => "Net Zero",
            Scenario::CarbonFree247 => "24/7 Carbon Free",
        }
    }

    /// The stable, machine-readable identifier of this scenario.
    ///
    /// This is the wire name used by serialization layers (`ce-serve`'s
    /// JSON schema and any cache keyed on scenarios): unlike [`Scenario::label`]
    /// it is guaranteed never to change spelling, so hashes derived from it
    /// stay valid across releases. Round-trips through
    /// [`Scenario::from_canonical_key`].
    pub fn canonical_key(&self) -> &'static str {
        match self {
            Scenario::GridMix => "grid_mix",
            Scenario::NetZero => "net_zero",
            Scenario::CarbonFree247 => "carbon_free_247",
        }
    }

    /// Parses a [`Scenario::canonical_key`] back into a scenario.
    pub fn from_canonical_key(key: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.canonical_key() == key)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The hourly operational carbon intensity (t/MWh) of the energy a
/// datacenter *consumes* under a scenario (paper Figure 6).
///
/// - `GridMix`: the grid's intensity for every hour;
/// - `NetZero`: zero in hours where `supply >= demand` (the PPA delivers
///   attributable carbon-free energy), the grid's intensity on the
///   deficit share otherwise;
/// - `CarbonFree247`: zero for hours covered after mitigation (given by
///   `unmet_after_mitigation`), grid intensity on residual unmet energy.
///
/// # Errors
///
/// Returns an alignment error if any series is misaligned with `demand`.
pub fn hourly_intensity(
    scenario: Scenario,
    demand: &HourlySeries,
    renewable_supply: &HourlySeries,
    grid: &GridDataset,
    unmet_after_mitigation: Option<&HourlySeries>,
) -> Result<HourlySeries, TimeSeriesError> {
    let grid_intensity = grid.carbon_intensity();
    demand.check_aligned(&grid_intensity)?;
    match scenario {
        Scenario::GridMix => Ok(grid_intensity),
        Scenario::NetZero => {
            demand.check_aligned(renewable_supply)?;
            Ok(HourlySeries::from_fn(demand.start(), demand.len(), |h| {
                let d = demand[h];
                if d <= 0.0 {
                    return 0.0;
                }
                let deficit = (d - renewable_supply[h]).max(0.0);
                grid_intensity[h] * deficit / d
            }))
        }
        Scenario::CarbonFree247 => {
            let unmet = unmet_after_mitigation.unwrap_or(renewable_supply);
            demand.check_aligned(unmet)?;
            Ok(HourlySeries::from_fn(demand.start(), demand.len(), |h| {
                let d = demand[h];
                if d <= 0.0 {
                    return 0.0;
                }
                grid_intensity[h] * (unmet[h].max(0.0) / d).min(1.0)
            }))
        }
    }
}

/// Whether a year of renewable generation earns enough credits to claim
/// Net Zero: total generation ≥ total consumption (paper §3.2, "at the end
/// of the month (or end of the year), the total amount of energy generated
/// and credits issued is equal or greater than the total amount of energy
/// consumed").
pub fn achieves_net_zero(demand: &HourlySeries, renewable_supply: &HourlySeries) -> bool {
    renewable_supply.sum() >= demand.sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_grid::BalancingAuthority;
    use ce_timeseries::Timestamp;

    fn grid() -> GridDataset {
        GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7)
    }

    fn flat_demand(mw: f64) -> HourlySeries {
        let g = grid();
        HourlySeries::constant(Timestamp::start_of_year(2020), g.demand().len(), mw)
    }

    #[test]
    fn grid_mix_intensity_is_the_grid_intensity() {
        let g = grid();
        let demand = flat_demand(20.0);
        let supply = flat_demand(0.0);
        let intensity = hourly_intensity(Scenario::GridMix, &demand, &supply, &g, None).unwrap();
        assert_eq!(intensity, g.carbon_intensity());
    }

    #[test]
    fn net_zero_is_zero_in_surplus_hours_only() {
        let g = grid();
        let demand = flat_demand(20.0);
        // Supply covers even hours (with surplus to spare), odd hours not
        // at all — annual generation (45/2 = 22.5 MW mean) exceeds the
        // 20 MW demand, so credits add up to Net Zero.
        let supply = HourlySeries::from_fn(demand.start(), demand.len(), |h| {
            if h % 2 == 0 {
                45.0
            } else {
                0.0
            }
        });
        let intensity = hourly_intensity(Scenario::NetZero, &demand, &supply, &g, None).unwrap();
        assert_eq!(intensity[0], 0.0);
        assert!(intensity[1] > 0.0);
        assert_eq!(intensity[1], g.carbon_intensity()[1]);
        // Annual accounting nevertheless reads Net Zero.
        assert!(achieves_net_zero(&demand, &supply));
    }

    #[test]
    fn carbon_free_247_with_zero_unmet_is_zero_everywhere() {
        let g = grid();
        let demand = flat_demand(20.0);
        let supply = flat_demand(25.0);
        let unmet = flat_demand(0.0);
        let intensity =
            hourly_intensity(Scenario::CarbonFree247, &demand, &supply, &g, Some(&unmet)).unwrap();
        assert_eq!(intensity.max().unwrap(), 0.0);
    }

    #[test]
    fn residual_unmet_energy_carries_grid_intensity() {
        let g = grid();
        let demand = flat_demand(20.0);
        let supply = flat_demand(0.0);
        let unmet = flat_demand(10.0); // half of demand unmet
        let intensity =
            hourly_intensity(Scenario::CarbonFree247, &demand, &supply, &g, Some(&unmet)).unwrap();
        let grid_intensity = g.carbon_intensity();
        for h in (0..intensity.len()).step_by(371) {
            assert!((intensity[h] - grid_intensity[h] * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn scenario_mean_intensities_are_ordered() {
        // Fig 6's message: grid mix ≥ net zero ≥ 24/7.
        let g = grid();
        let demand = flat_demand(20.0);
        let supply = g.scaled_renewables(400.0, 200.0);
        let unmet = demand.zip_with(&supply, |d, s| (d - s).max(0.0)).unwrap();
        let mix = hourly_intensity(Scenario::GridMix, &demand, &supply, &g, None)
            .unwrap()
            .mean();
        let net_zero = hourly_intensity(Scenario::NetZero, &demand, &supply, &g, None)
            .unwrap()
            .mean();
        // 24/7 with a big battery: assume unmet is halved by mitigation.
        let mitigated = unmet.scale(0.2);
        let cf = hourly_intensity(
            Scenario::CarbonFree247,
            &demand,
            &supply,
            &g,
            Some(&mitigated),
        )
        .unwrap()
        .mean();
        assert!(mix > net_zero, "{mix} vs {net_zero}");
        assert!(net_zero > cf, "{net_zero} vs {cf}");
    }

    #[test]
    fn net_zero_claim_requires_enough_generation() {
        let demand = flat_demand(20.0);
        assert!(!achieves_net_zero(&demand, &flat_demand(19.0)));
        assert!(achieves_net_zero(&demand, &flat_demand(20.0)));
    }

    #[test]
    fn labels() {
        assert_eq!(Scenario::NetZero.to_string(), "Net Zero");
        assert_eq!(Scenario::ALL.len(), 3);
    }

    #[test]
    fn canonical_keys_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_canonical_key(s.canonical_key()), Some(s));
        }
        assert_eq!(Scenario::from_canonical_key("Grid Mix"), None);
        assert_eq!(Scenario::from_canonical_key(""), None);
    }
}
