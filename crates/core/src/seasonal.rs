//! Seasonal decomposition of renewable coverage.
//!
//! Annual coverage numbers hide *when* a datacenter falls back to grid
//! energy. The paper's supply characterization (Figure 5) shows strong
//! seasonality — solar peaks in summer, wind in winter — so the binding
//! constraint on a design is usually one season's supply valley. This
//! module breaks coverage and residual emissions down by calendar month,
//! identifying the worst month a design must be provisioned for.

use crate::coverage::Coverage;
use ce_timeseries::{kernels, HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// Coverage statistics for one calendar month.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonthlyCoverage {
    /// Calendar month, 1-12.
    pub month: u8,
    /// Energy-weighted coverage fraction for the month.
    pub coverage: f64,
    /// Unmet (grid) energy in the month, MWh.
    pub unmet_mwh: f64,
}

/// Per-month coverage of `demand` by `supply` (no storage/scheduling),
/// in calendar order. Months absent from the series are omitted.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn monthly_coverage(
    demand: &HourlySeries,
    supply: &HourlySeries,
) -> Result<Vec<MonthlyCoverage>, TimeSeriesError> {
    demand.check_aligned(supply)?;
    if demand.is_empty() {
        return Ok(Vec::new());
    }
    // Month boundaries first (cheap calendar scan), then the per-month
    // reductions fan out over slices of the original series — no window
    // copies, no intermediate unmet series.
    let mut segments: Vec<(usize, usize, u8)> = Vec::new();
    let mut month_start = 0usize;
    let mut current_month = demand.timestamp(0).date().month();
    for h in 1..demand.len() {
        let month = demand.timestamp(h).date().month();
        if month != current_month {
            segments.push((month_start, h, current_month));
            month_start = h;
            current_month = month;
        }
    }
    segments.push((month_start, demand.len(), current_month));
    Ok(ce_parallel::par_map(&segments, |&(start, end, month)| {
        let d = &demand.values()[start..end];
        let s = &supply.values()[start..end];
        let stats = kernels::deficit_stats_slices(d, s);
        let demand_mwh: f64 = d.iter().sum();
        let coverage =
            Coverage::from_sums(demand_mwh, stats.unmet_mwh, stats.covered_hours, d.len());
        MonthlyCoverage {
            month,
            coverage: coverage.fraction(),
            unmet_mwh: coverage.unmet_mwh(),
        }
    }))
}

/// The month with the lowest coverage — the design's binding season.
///
/// # Errors
///
/// Propagates alignment errors; returns `None` inside `Ok` only for empty
/// input.
pub fn worst_month(
    demand: &HourlySeries,
    supply: &HourlySeries,
) -> Result<Option<MonthlyCoverage>, TimeSeriesError> {
    Ok(monthly_coverage(demand, supply)?
        .into_iter()
        .min_by(|a, b| {
            a.coverage
                .partial_cmp(&b.coverage)
                .expect("finite coverage")
        }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn splits_on_calendar_month_boundaries() {
        // Two months: Jan (31 days) + Feb (29 days, 2020).
        let len = 24 * (31 + 29);
        let demand = HourlySeries::constant(start(), len, 10.0);
        // Full coverage in January, none in February.
        let supply = HourlySeries::from_fn(start(), len, |h| if h < 24 * 31 { 10.0 } else { 0.0 });
        let months = monthly_coverage(&demand, &supply).unwrap();
        assert_eq!(months.len(), 2);
        assert_eq!(months[0].month, 1);
        assert_eq!(months[0].coverage, 1.0);
        assert_eq!(months[1].month, 2);
        assert_eq!(months[1].coverage, 0.0);
        assert_eq!(months[1].unmet_mwh, 24.0 * 29.0 * 10.0);
    }

    #[test]
    fn worst_month_finds_the_valley() {
        let len = 24 * 91; // Jan + Feb + Mar 2020
        let demand = HourlySeries::constant(start(), len, 10.0);
        let supply = HourlySeries::from_fn(start(), len, |h| {
            let day = h / 24;
            if (31..60).contains(&day) {
                3.0 // February is the bad month
            } else {
                12.0
            }
        });
        let worst = worst_month(&demand, &supply).unwrap().expect("non-empty");
        assert_eq!(worst.month, 2);
        assert!(worst.coverage < 0.5);
    }

    #[test]
    fn partial_months_are_reported() {
        let demand = HourlySeries::constant(start(), 10, 5.0);
        let supply = HourlySeries::constant(start(), 10, 5.0);
        let months = monthly_coverage(&demand, &supply).unwrap();
        assert_eq!(months.len(), 1);
        assert_eq!(months[0].coverage, 1.0);
    }

    #[test]
    fn empty_series_yield_empty_report() {
        let empty = HourlySeries::zeros(start(), 0);
        assert!(monthly_coverage(&empty, &empty).unwrap().is_empty());
        assert!(worst_month(&empty, &empty).unwrap().is_none());
    }

    #[test]
    fn monthly_unmet_sums_to_annual() {
        let len = 24 * 366;
        let demand = HourlySeries::from_fn(start(), len, |h| 10.0 + (h % 7) as f64);
        let supply = HourlySeries::from_fn(start(), len, |h| ((h * 13) % 29) as f64);
        let months = monthly_coverage(&demand, &supply).unwrap();
        assert_eq!(months.len(), 12);
        let monthly_total: f64 = months.iter().map(|m| m.unmet_mwh).sum();
        let annual = demand
            .zip_with(&supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum();
        assert!((monthly_total - annual).abs() < 1e-6);
    }

    #[test]
    fn misaligned_series_error() {
        let a = HourlySeries::zeros(start(), 2);
        let b = HourlySeries::zeros(start(), 3);
        assert!(monthly_coverage(&a, &b).is_err());
    }
}
