//! Sensitivity of the carbon-optimal design to embodied-carbon parameters.
//!
//! The paper's discussion (§6) stresses that Carbon Explorer
//! "emphasizes parameterized models because our understanding of carbon
//! emissions in computing is still rapidly evolving ... Carbon Explorer
//! sets parameters based on the best publicly available data and these
//! parameters can be tuned as better data becomes available." Published
//! coefficients carry wide ranges (wind 10-15 g/kWh, solar 40-70,
//! batteries 74-134 kg/kWh); this module quantifies how much those ranges
//! matter: each parameter is swept across its published low/high while
//! the others stay at their defaults, and the shift in the optimal
//! design's total carbon (and coverage) is recorded — a tornado analysis.

use crate::design::{DesignSpace, StrategyKind};
use crate::explore::CarbonExplorer;
use ce_embodied::{BatteryEmbodied, EmbodiedParams, RenewableEmbodied, ServerEmbodied};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which embodied-carbon parameter a sensitivity case perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parameter {
    /// Wind lifecycle intensity (published range 10-15 gCO2/kWh).
    WindIntensity,
    /// Solar lifecycle intensity (published range 40-70 gCO2/kWh).
    SolarIntensity,
    /// Battery manufacturing footprint (published range 74-134 kg/kWh).
    BatteryManufacturing,
    /// Server manufacturing footprint (±30% around 744.5 kg).
    ServerManufacturing,
    /// Battery calendar-life cap (10-25 years).
    BatteryCalendarLife,
}

impl Parameter {
    /// All parameters in tornado order.
    pub const ALL: [Parameter; 5] = [
        Parameter::WindIntensity,
        Parameter::SolarIntensity,
        Parameter::BatteryManufacturing,
        Parameter::ServerManufacturing,
        Parameter::BatteryCalendarLife,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Parameter::WindIntensity => "wind lifecycle g/kWh",
            Parameter::SolarIntensity => "solar lifecycle g/kWh",
            Parameter::BatteryManufacturing => "battery kg/kWh",
            Parameter::ServerManufacturing => "server kg/unit",
            Parameter::BatteryCalendarLife => "battery calendar life",
        }
    }

    /// The published low/high values this parameter sweeps between.
    pub fn range(&self) -> (f64, f64) {
        match self {
            Parameter::WindIntensity => (10.0, 15.0),
            Parameter::SolarIntensity => (40.0, 70.0),
            Parameter::BatteryManufacturing => (74.0, 134.0),
            Parameter::ServerManufacturing => (744.5 * 0.7, 744.5 * 1.3),
            Parameter::BatteryCalendarLife => (10.0, 25.0),
        }
    }

    /// Builds an [`EmbodiedParams`] with this parameter set to `value`
    /// and everything else at the paper defaults.
    pub fn apply(&self, value: f64) -> EmbodiedParams {
        let mut params = EmbodiedParams::paper_defaults();
        match self {
            Parameter::WindIntensity => {
                params.renewables = RenewableEmbodied {
                    wind_g_per_kwh: value,
                    ..params.renewables
                }
            }
            Parameter::SolarIntensity => {
                params.renewables = RenewableEmbodied {
                    solar_g_per_kwh: value,
                    ..params.renewables
                }
            }
            Parameter::BatteryManufacturing => {
                // Scale the assembly component to hit the requested total,
                // holding materials and end-of-life at their fixed values.
                let fixed = 59.0 + 15.0;
                params.battery = BatteryEmbodied {
                    assembly_kg_per_kwh: (value - fixed).max(0.0),
                    ..params.battery
                }
            }
            Parameter::ServerManufacturing => {
                params.server = ServerEmbodied {
                    embodied_kg_per_server: value,
                    ..params.server
                }
            }
            Parameter::BatteryCalendarLife => {
                params.battery = BatteryEmbodied {
                    calendar_life_cap_years: value,
                    ..params.battery
                }
            }
        }
        params
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One row of the tornado analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// The perturbed parameter.
    pub parameter: Parameter,
    /// Optimal total carbon at the parameter's low value, tons/year.
    pub total_at_low: f64,
    /// Optimal total carbon at the parameter's high value, tons/year.
    pub total_at_high: f64,
    /// Optimal coverage (percent) at the low value.
    pub coverage_at_low: f64,
    /// Optimal coverage (percent) at the high value.
    pub coverage_at_high: f64,
}

impl SensitivityRow {
    /// The swing this parameter induces in the optimal total, tons/year.
    pub fn swing(&self) -> f64 {
        (self.total_at_high - self.total_at_low).abs()
    }
}

/// Runs the tornado analysis: for each parameter, re-optimizes the
/// strategy over `space` at the parameter's published low and high
/// values. Rows are returned sorted by swing, largest first.
///
/// # Panics
///
/// Panics if `space` is empty.
pub fn tornado(
    explorer: &CarbonExplorer,
    strategy: StrategyKind,
    space: &DesignSpace,
) -> Vec<SensitivityRow> {
    // Each parameter's low/high re-optimizations are independent, so the
    // tornado fans out across parameters; the nested `optimal` sweeps
    // detect they are already inside a parallel region and run serial.
    let mut rows = ce_parallel::par_map(&Parameter::ALL, |&parameter| {
        let (low, high) = parameter.range();
        let at = |value: f64| {
            explorer
                .clone()
                .with_embodied(parameter.apply(value))
                .optimal(strategy, space)
                .expect("non-empty design space")
        };
        let low_eval = at(low);
        let high_eval = at(high);
        SensitivityRow {
            parameter,
            total_at_low: low_eval.total_tons(),
            total_at_high: high_eval.total_tons(),
            coverage_at_low: low_eval.coverage.percent(),
            coverage_at_high: high_eval.coverage.percent(),
        }
    });
    rows.sort_by(|a, b| b.swing().partial_cmp(&a.swing()).expect("finite swings"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datacenter::Fleet;
    use ce_grid::GridDataset;

    fn explorer() -> CarbonExplorer {
        let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        CarbonExplorer::new(site.demand_trace(2020, 7), grid)
    }

    fn space() -> DesignSpace {
        DesignSpace {
            solar: (0.0, 400.0, 3),
            wind: (0.0, 400.0, 3),
            battery: (0.0, 200.0, 3),
            extra_capacity: (0.0, 0.0, 1),
        }
    }

    #[test]
    fn ranges_match_published_bounds() {
        assert_eq!(Parameter::WindIntensity.range(), (10.0, 15.0));
        assert_eq!(Parameter::SolarIntensity.range(), (40.0, 70.0));
        assert_eq!(Parameter::BatteryManufacturing.range(), (74.0, 134.0));
    }

    #[test]
    fn apply_perturbs_exactly_one_parameter() {
        let defaults = EmbodiedParams::paper_defaults();
        let perturbed = Parameter::SolarIntensity.apply(70.0);
        assert_eq!(perturbed.renewables.solar_g_per_kwh, 70.0);
        assert_eq!(
            perturbed.renewables.wind_g_per_kwh,
            defaults.renewables.wind_g_per_kwh
        );
        assert_eq!(perturbed.battery, defaults.battery);
        assert_eq!(perturbed.server, defaults.server);
    }

    #[test]
    fn battery_total_hits_requested_value() {
        let low = Parameter::BatteryManufacturing.apply(74.0);
        assert!((low.battery.total_kg_per_kwh() - 74.0).abs() < 1e-9);
        let high = Parameter::BatteryManufacturing.apply(134.0);
        assert!((high.battery.total_kg_per_kwh() - 134.0).abs() < 1e-9);
    }

    #[test]
    fn tornado_rows_are_sorted_by_swing() {
        let rows = tornado(&explorer(), StrategyKind::RenewablesBattery, &space());
        assert_eq!(rows.len(), Parameter::ALL.len());
        for pair in rows.windows(2) {
            assert!(pair[0].swing() >= pair[1].swing() - 1e-9);
        }
    }

    #[test]
    fn dirtier_parameters_never_reduce_total_carbon() {
        // Higher embodied coefficients can only raise (or leave equal) the
        // optimal total, since every design's cost weakly increases.
        let rows = tornado(&explorer(), StrategyKind::RenewablesBattery, &space());
        for row in &rows {
            if row.parameter == Parameter::BatteryCalendarLife {
                // Longer life *reduces* amortized carbon: high is cheaper.
                assert!(row.total_at_high <= row.total_at_low + 1e-6);
            } else {
                assert!(
                    row.total_at_high >= row.total_at_low - 1e-6,
                    "{}: {} vs {}",
                    row.parameter,
                    row.total_at_low,
                    row.total_at_high
                );
            }
        }
    }

    #[test]
    fn renewable_intensity_ranges_actually_matter() {
        // The published coefficient ranges are wide enough to move the
        // optimum — the reason the paper keeps them as parameters.
        let rows = tornado(&explorer(), StrategyKind::RenewablesBattery, &space());
        let renewable_swing: f64 = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.parameter,
                    Parameter::WindIntensity | Parameter::SolarIntensity
                )
            })
            .map(SensitivityRow::swing)
            .sum();
        assert!(renewable_swing > 0.0);
    }

    #[test]
    fn tornado_low_values_match_direct_optimization() {
        let explorer = explorer();
        let rows = tornado(&explorer, StrategyKind::RenewablesBattery, &space());
        let row = rows
            .iter()
            .find(|r| r.parameter == Parameter::SolarIntensity)
            .expect("row present");
        let direct = explorer
            .clone()
            .with_embodied(Parameter::SolarIntensity.apply(40.0))
            .optimal(StrategyKind::RenewablesBattery, &space())
            .expect("non-empty");
        assert!((row.total_at_low - direct.total_tons()).abs() < 1e-9);
    }
}
