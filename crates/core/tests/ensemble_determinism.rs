//! The ensemble evaluator's determinism contract: N seeded weather years
//! evaluated through `ce_parallel::par_map_with` must be **bitwise**
//! identical to the serial reference loop, for every thread-count regime
//! `CE_THREADS` can select.

use ce_core::{CarbonExplorer, DesignPoint, EnsembleResult, EnsembleSpec, StrategyKind};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;

fn build_ut(seed: u64) -> CarbonExplorer {
    let site = Fleet::meta_us().site("UT").expect("UT exists").clone();
    CarbonExplorer::new(
        site.demand_trace(2020, seed),
        GridDataset::synthesize(site.ba(), 2020, seed),
    )
}

fn design() -> DesignPoint {
    DesignPoint {
        solar_mw: 150.0,
        wind_mw: 100.0,
        battery_mwh: 40.0,
        extra_capacity_fraction: 0.2,
    }
}

fn assert_bitwise_equal(a: &EnsembleResult, b: &EnsembleResult, label: &str) {
    assert_eq!(a.seeds, b.seeds, "{label}: seed order");
    assert_eq!(a.evaluations.len(), b.evaluations.len(), "{label}");
    for (i, (ea, eb)) in a.evaluations.iter().zip(&b.evaluations).enumerate() {
        for ((name, va), (_, vb)) in ea.canonical_fields().iter().zip(eb.canonical_fields()) {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{label}: member {i} field {name} differs"
            );
        }
    }
    // Spreads are derived in member order, so they inherit bit-equality.
    let (sa, sb) = (a.coverage_spread(), b.coverage_spread());
    assert_eq!(sa.is_some(), sb.is_some(), "{label}");
    if let (Some(sa), Some(sb)) = (sa, sb) {
        assert_eq!(sa.min.to_bits(), sb.min.to_bits(), "{label}: min");
        assert_eq!(sa.mean.to_bits(), sb.mean.to_bits(), "{label}: mean");
        assert_eq!(sa.max.to_bits(), sb.max.to_bits(), "{label}: max");
    }
}

/// One test function on purpose: it mutates the process-global
/// `CE_THREADS` variable, and a single `#[test]` means no concurrent
/// test in this binary can observe a half-set value. (Changing the
/// thread count mid-run only ever changes scheduling, never results —
/// that is the invariant under test — but the comparisons themselves
/// should run against a quiescent environment.)
#[test]
fn ensemble_is_bitwise_deterministic_across_thread_counts() {
    let spec = EnsembleSpec::consecutive(2020, 7, 7);
    for strategy in [
        StrategyKind::RenewablesOnly,
        StrategyKind::RenewablesBatteryCas,
    ] {
        let serial = spec.evaluate_serial(strategy, &design(), build_ut);

        // Ambient parallelism (whatever the machine offers).
        let parallel = spec.evaluate(strategy, &design(), build_ut);
        assert_bitwise_equal(&serial, &parallel, "ambient threads");

        // Inside a parallel region, evaluate() degrades to serial —
        // exactly how nested sweeps run under ce-serve's workers.
        let nested = ce_parallel::run_serial(|| spec.evaluate(strategy, &design(), build_ut));
        assert_bitwise_equal(&serial, &nested, "run_serial");

        // Forced thread counts, including over-subscription (more
        // threads than seeds) and odd chunkings.
        let saved = std::env::var("CE_THREADS").ok();
        for threads in ["1", "2", "3", "5", "16"] {
            std::env::set_var("CE_THREADS", threads);
            let forced = spec.evaluate(strategy, &design(), build_ut);
            assert_bitwise_equal(&serial, &forced, &format!("CE_THREADS={threads}"));
        }
        match saved {
            Some(v) => std::env::set_var("CE_THREADS", v),
            None => std::env::remove_var("CE_THREADS"),
        }
    }
}
