//! The supply-major factorized traversal behind `CarbonExplorer::explore`
//! and the streaming dispatch kernels it runs on must be pure
//! optimizations: same points, same order, bitwise-identical floats as
//! the point-per-point serial reference and the series-materializing
//! dispatch paths they replace.
//!
//! The grid here is deliberately uneven (different step counts per axis,
//! non-zero minima) so the factorization cannot get the ordering right by
//! symmetry: any confusion between group-major and flat order, or between
//! the battery and extra-capacity sub-axes, changes which design lands at
//! which index.

use ce_battery::{
    simulate_dispatch, simulate_dispatch_stats, BatteryModel, ClcBattery, IdealBattery,
};
use ce_core::{CarbonExplorer, DesignSpace, StrategyKind};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;
use ce_scheduler::{CasConfig, GreedyScheduler, ScheduleScratch};
use ce_timeseries::kernels::{self, COVERED_EPSILON_MWH};

fn explorer(state: &str) -> CarbonExplorer {
    let site = Fleet::meta_us()
        .site(state)
        .expect("state in Table 1")
        .clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    CarbonExplorer::new(site.demand_trace(2020, 7), grid)
}

/// Uneven on every axis: 5 × 3 × 4 × 3, with non-zero minima on the
/// renewable axes so group values are not multiples of each other.
fn uneven_space() -> DesignSpace {
    DesignSpace {
        solar: (30.0, 630.0, 5),
        wind: (10.0, 410.0, 3),
        battery: (0.0, 270.0, 4),
        extra_capacity: (0.0, 0.9, 3),
    }
}

#[test]
fn factorized_explore_is_bitwise_identical_to_serial_on_uneven_grid() {
    let explorer = explorer("UT");
    let space = uneven_space();
    for strategy in StrategyKind::ALL {
        let serial = explorer.explore_serial(strategy, &space);
        let factorized = explorer.explore(strategy, &space);
        assert_eq!(
            serial.len(),
            factorized.len(),
            "{strategy}: point count mismatch"
        );
        // Order check: the factorized traversal must put every design at
        // the index `DesignSpace::iter` gives it.
        for (i, (s, f)) in serial.iter().zip(&factorized).enumerate() {
            assert_eq!(s.design, f.design, "{strategy}: point {i} reordered");
            assert_eq!(
                s.operational_tons.to_bits(),
                f.operational_tons.to_bits(),
                "{strategy}: point {i} operational tons diverged"
            );
            assert_eq!(
                s.total_tons().to_bits(),
                f.total_tons().to_bits(),
                "{strategy}: point {i} total tons diverged"
            );
            assert_eq!(
                s.battery_cycles.to_bits(),
                f.battery_cycles.to_bits(),
                "{strategy}: point {i} cycles diverged"
            );
            assert_eq!(s, f, "{strategy}: point {i} diverged");
        }
    }
}

/// The sweep engine schedules CAS points through the cached per-day cost
/// permutations (`CostOrder`), rebuilt once per supply group. That cache
/// must be a pure optimization: every evaluation must match what the
/// original per-point sorting scheduler (`schedule_with`, which re-sorts
/// each day's hours by insertion sort) produces, bit for bit. The other
/// three strategies never touch the cache; the all-strategy
/// serial-vs-factorized test above pins them across the same grid.
#[test]
fn cached_cost_order_matches_sorting_scheduler_on_uneven_grid() {
    let explorer = explorer("UT");
    let space = uneven_space();
    let evals = explorer.explore(StrategyKind::RenewablesCas, &space);
    assert!(!evals.is_empty());

    let demand = explorer.demand();
    let intensity = explorer.grid_intensity();
    let peak = demand.max().unwrap_or(0.0);
    let flexible = explorer.workload().flexible_fraction();
    let mut scratch = ScheduleScratch::default();
    for eval in &evals {
        let supply = explorer
            .grid()
            .scaled_renewables(eval.design.solar_mw, eval.design.wind_mw);
        let scheduler = GreedyScheduler::new(CasConfig {
            max_capacity_mw: peak * (1.0 + eval.design.extra_capacity_fraction),
            flexible_ratio: flexible,
        });
        scheduler
            .schedule_with(demand, &supply, &mut scratch)
            .expect("aligned");
        let (stats, operational) = kernels::deficit_stats_dot_slices(
            scratch.shifted(),
            supply.values(),
            intensity.values(),
        );
        assert_eq!(
            operational.to_bits(),
            eval.operational_tons.to_bits(),
            "{}: cached-order operational tons diverged from sorting path",
            eval.design
        );
        assert_eq!(
            stats.unmet_mwh.to_bits(),
            eval.coverage.unmet_mwh().to_bits(),
            "{}: cached-order unmet energy diverged from sorting path",
            eval.design
        );
    }
}

#[test]
fn streaming_optimal_matches_full_sweep_first_minimum() {
    let explorer = explorer("NC");
    let space = uneven_space();
    for strategy in StrategyKind::ALL {
        let via_vec = explorer
            .explore(strategy, &space)
            .into_iter()
            .min_by(|a, b| a.total_tons().partial_cmp(&b.total_tons()).expect("finite"))
            .expect("non-empty space");
        let streamed = explorer.optimal(strategy, &space).expect("non-empty space");
        assert_eq!(via_vec.design, streamed.design, "{strategy}: winner moved");
        assert_eq!(
            via_vec.total_tons().to_bits(),
            streamed.total_tons().to_bits(),
            "{strategy}: winning total diverged"
        );
        assert_eq!(via_vec, streamed, "{strategy}");
    }
}

#[test]
fn streaming_optimal_is_none_only_for_empty_spaces() {
    let explorer = explorer("UT");
    let mut empty = uneven_space();
    empty.wind = (0.0, 100.0, 0);
    assert!(explorer
        .optimal(StrategyKind::RenewablesBattery, &empty)
        .is_none());
    let singleton = DesignSpace {
        solar: (120.0, 120.0, 1),
        wind: (40.0, 40.0, 1),
        battery: (60.0, 60.0, 1),
        extra_capacity: (0.5, 0.5, 1),
    };
    let best = explorer
        .optimal(StrategyKind::RenewablesBatteryCas, &singleton)
        .expect("one point");
    assert_eq!(best.design.solar_mw, 120.0);
    assert_eq!(best.design.battery_mwh, 60.0);
}

/// The streaming battery kernel must agree, bit for bit, with folds over
/// the materializing path's series when driven by a real explorer's
/// demand/supply/intensity traces (not just synthetic fixtures).
#[test]
fn dispatch_stats_match_materialized_series_on_explorer_traces() {
    let explorer = explorer("TX");
    let demand = explorer.demand().clone();
    let supply = explorer.grid().scaled_renewables(250.0, 150.0);
    let intensity = explorer.grid_intensity().clone();

    let mut batteries: Vec<Box<dyn BatteryModel>> = vec![
        Box::new(IdealBattery::new(180.0)),
        Box::new(ClcBattery::lfp(220.0, 0.85)),
    ];
    for battery in &mut batteries {
        let full = simulate_dispatch(battery.as_mut(), &demand, &supply).expect("aligned");
        let stats = simulate_dispatch_stats(battery.as_mut(), &demand, &supply, &intensity)
            .expect("aligned");

        let unmet_sum: f64 = full.unmet.values().iter().sum();
        let covered = full
            .unmet
            .values()
            .iter()
            .filter(|&&u| u <= COVERED_EPSILON_MWH)
            .count();
        let dot: f64 = full
            .unmet
            .values()
            .iter()
            .zip(intensity.values())
            .map(|(&u, &w)| u * w)
            .fold(0.0, |acc, x| acc + x);

        assert_eq!(stats.deficit.unmet_mwh.to_bits(), unmet_sum.to_bits());
        assert_eq!(stats.deficit.covered_hours, covered);
        assert_eq!(stats.unmet_dot.to_bits(), dot.to_bits());
        assert_eq!(
            stats.total_discharged_mwh.to_bits(),
            full.total_discharged_mwh.to_bits()
        );
        assert_eq!(
            stats.equivalent_cycles.to_bits(),
            full.equivalent_cycles.to_bits()
        );
    }
}
