//! The parallel sweep engine must be a pure optimization: for every
//! strategy, `explore` (parallel) and `explore_serial` must return the
//! same designs, in the same order, with bitwise-identical scores.
//!
//! This holds by construction — each design point's evaluation is
//! independent and the parallel map assembles contiguous chunks in input
//! order — but the test pins it so a future reduction reorder (e.g. a
//! tree-shaped sum) cannot silently change published numbers.

use ce_core::{CarbonExplorer, DesignSpace, StrategyKind};
use ce_datacenter::Fleet;
use ce_grid::GridDataset;

fn explorer(state: &str) -> CarbonExplorer {
    let site = Fleet::meta_us()
        .site(state)
        .expect("state in Table 1")
        .clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    CarbonExplorer::new(site.demand_trace(2020, 7), grid)
}

fn space() -> DesignSpace {
    DesignSpace {
        solar: (0.0, 600.0, 4),
        wind: (0.0, 600.0, 4),
        battery: (0.0, 300.0, 3),
        extra_capacity: (0.0, 0.8, 2),
    }
}

#[test]
fn parallel_explore_is_bitwise_identical_to_serial() {
    let explorer = explorer("UT");
    let space = space();
    for strategy in StrategyKind::ALL {
        let serial = explorer.explore_serial(strategy, &space);
        let parallel = explorer.explore(strategy, &space);
        assert_eq!(serial.len(), parallel.len(), "{strategy}: point count");
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            // EvaluatedDesign is all f64s + enums; equality on f64 is
            // bitwise here (no NaNs can come out of a finite evaluation).
            assert_eq!(s, p, "{strategy}: point {i} diverged");
            assert_eq!(
                s.total_tons().to_bits(),
                p.total_tons().to_bits(),
                "{strategy}: point {i} total diverged in the last bit"
            );
        }
    }
}

#[test]
fn optimal_agrees_between_serial_and_parallel_sweeps() {
    let explorer = explorer("NC");
    let space = space();
    for strategy in StrategyKind::ALL {
        let via_serial = explorer
            .explore_serial(strategy, &space)
            .into_iter()
            .min_by(|a, b| a.total_tons().partial_cmp(&b.total_tons()).expect("finite"))
            .expect("non-empty space");
        let via_parallel = explorer.optimal(strategy, &space).expect("non-empty space");
        assert_eq!(via_serial, via_parallel, "{strategy}");
    }
}

#[test]
fn repeated_parallel_sweeps_are_stable() {
    // Thread scheduling must not leak into results: two parallel runs of
    // the same sweep are identical.
    let explorer = explorer("TX");
    let space = space();
    let first = explorer.explore(StrategyKind::RenewablesBatteryCas, &space);
    let second = explorer.explore(StrategyKind::RenewablesBatteryCas, &space);
    assert_eq!(first, second);
}
