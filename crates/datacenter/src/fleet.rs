//! Meta's US datacenter fleet (the paper's Table 1).

use crate::site::DataCenterSite;
use ce_grid::BalancingAuthority;
use serde::{Deserialize, Serialize};

/// A collection of datacenter sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    sites: Vec<DataCenterSite>,
}

impl Fleet {
    /// Builds a fleet from explicit sites.
    pub fn new(sites: Vec<DataCenterSite>) -> Self {
        Self { sites }
    }

    /// The paper's Table 1: Meta's 13 US datacenter locations and regional
    /// renewable investments (MW).
    ///
    /// Average power figures for OR (73 MW), NC (51 MW) and UT (19 MW) are
    /// the values printed on the paper's Figures 7/9/12; the rest are
    /// representative hyperscale values since the paper does not publish
    /// per-site loads (see `DESIGN.md`).
    pub fn meta_us() -> Self {
        use BalancingAuthority::*;
        let rows: [(&str, &str, BalancingAuthority, f64, f64, f64); 13] = [
            ("Sarpy County, Nebraska", "NE", SWPP, 0.0, 515.0, 45.0),
            ("Prineville, Oregon", "OR", BPAT, 100.0, 0.0, 73.0),
            ("Eagle Mountain, Utah", "UT", PACE, 694.0, 239.0, 19.0),
            ("Los Lunas, New Mexico", "NM", PNM, 420.0, 215.0, 35.0),
            ("Fort Worth, Texas", "TX", ERCO, 300.0, 404.0, 45.0),
            ("DeKalb, Illinois", "IL", PJM, 0.0, 0.0, 40.0),
            ("Henrico, Virginia", "VA", PJM, 840.0, 309.0, 60.0),
            ("New Albany, Ohio", "OH", PJM, 0.0, 0.0, 40.0),
            ("Forest City, North Carolina", "NC", DUK, 410.0, 0.0, 51.0),
            ("Altoona, Iowa", "IA", MISO, 0.0, 141.0, 55.0),
            ("Newton County, Georgia", "GA", SOCO, 425.0, 0.0, 30.0),
            ("Gallatin, Tennessee", "TN", TVA, 742.0, 0.0, 25.0),
            ("Huntsville, Alabama", "AL", TVA, 0.0, 0.0, 20.0),
        ];
        Self {
            sites: rows
                .into_iter()
                .map(|(name, state, ba, solar, wind, avg)| {
                    DataCenterSite::new(name, state, ba, solar, wind, avg)
                })
                .collect(),
        }
    }

    /// All sites, in Table 1 order.
    pub fn sites(&self) -> &[DataCenterSite] {
        &self.sites
    }

    /// Looks up a site by its two-letter state code.
    ///
    /// For states with several sites (none in Table 1) the first match is
    /// returned.
    pub fn site(&self, state: &str) -> Option<&DataCenterSite> {
        self.sites.iter().find(|s| s.state() == state)
    }

    /// Total solar investment across the fleet, MW.
    pub fn total_solar_mw(&self) -> f64 {
        self.sites.iter().map(|s| s.solar_mw()).sum()
    }

    /// Total wind investment across the fleet, MW.
    pub fn total_wind_mw(&self) -> f64 {
        self.sites.iter().map(|s| s.wind_mw()).sum()
    }

    /// Iterate over the sites.
    pub fn iter(&self) -> std::slice::Iter<'_, DataCenterSite> {
        self.sites.iter()
    }
}

impl<'a> IntoIterator for &'a Fleet {
    type Item = &'a DataCenterSite;
    type IntoIter = std::slice::Iter<'a, DataCenterSite>;

    fn into_iter(self) -> Self::IntoIter {
        self.sites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_sites_as_in_table_1() {
        let fleet = Fleet::meta_us();
        assert_eq!(fleet.sites().len(), 13);
    }

    #[test]
    fn totals_match_table_1() {
        // Table 1's grand total is 5754 MW ("nearly six Gigawatts").
        // Summing the per-row columns gives solar 3931 / wind 1823; the
        // printed Total row shows the two subtotals transposed, so we trust
        // the rows (each of which is consistent with its region's regime —
        // NC/TN/GA are solar-only, NE/IA wind-only).
        let fleet = Fleet::meta_us();
        assert_eq!(fleet.total_solar_mw(), 3931.0);
        assert_eq!(fleet.total_wind_mw(), 1823.0);
        assert_eq!(fleet.total_solar_mw() + fleet.total_wind_mw(), 5754.0);
    }

    #[test]
    fn key_rows_match_table_1() {
        let fleet = Fleet::meta_us();
        let ne = fleet.site("NE").unwrap();
        assert_eq!((ne.solar_mw(), ne.wind_mw()), (0.0, 515.0));
        assert_eq!(ne.ba(), BalancingAuthority::SWPP);
        let ut = fleet.site("UT").unwrap();
        assert_eq!((ut.solar_mw(), ut.wind_mw()), (694.0, 239.0));
        let va = fleet.site("VA").unwrap();
        assert_eq!((va.solar_mw(), va.wind_mw()), (840.0, 309.0));
        let or = fleet.site("OR").unwrap();
        assert_eq!((or.solar_mw(), or.wind_mw()), (100.0, 0.0));
        assert_eq!(or.ba(), BalancingAuthority::BPAT);
    }

    #[test]
    fn oregon_invests_solar_against_a_wind_grid() {
        // The paper singles this mismatch out in §4.1.
        let fleet = Fleet::meta_us();
        let or = fleet.site("OR").unwrap();
        assert!(or.solar_mw() > or.wind_mw());
        assert_eq!(
            or.ba().regime(),
            ce_grid::balancing_authority::RenewableRegime::MajorlyWind
        );
    }

    #[test]
    fn figure_power_annotations() {
        let fleet = Fleet::meta_us();
        assert_eq!(fleet.site("OR").unwrap().avg_power_mw(), 73.0);
        assert_eq!(fleet.site("NC").unwrap().avg_power_mw(), 51.0);
        assert_eq!(fleet.site("UT").unwrap().avg_power_mw(), 19.0);
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(Fleet::meta_us().site("ZZ").is_none());
    }

    #[test]
    fn iteration_visits_every_site() {
        let fleet = Fleet::meta_us();
        assert_eq!(fleet.iter().count(), 13);
        assert_eq!((&fleet).into_iter().count(), 13);
    }
}
