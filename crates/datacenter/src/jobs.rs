//! Job-level workload synthesis.
//!
//! The hourly traces used by the coverage analyses aggregate away job
//! structure; scheduling studies sometimes need it back (how many jobs
//! miss their SLO, how large the deferred-work queue grows). This module
//! generates a synthetic job population consistent with the paper's
//! Figure 10 tier mix and aggregates it to the hourly flexible/inflexible
//! split the schedulers consume.

use crate::workload::SloTier;
use ce_timeseries::time::hours_in_year;
use ce_timeseries::{HourlySeries, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Hour of year the job becomes runnable.
    pub arrival_hour: u32,
    /// Runtime in whole hours (at least 1).
    pub duration_hours: u32,
    /// Average power drawn while running, MW.
    pub power_mw: f64,
    /// The job's SLO tier.
    pub tier: SloTier,
}

impl Job {
    /// The job's energy requirement, MWh.
    pub fn energy_mwh(&self) -> f64 {
        self.power_mw * self.duration_hours as f64
    }

    /// Latest completion hour permitted by the tier's SLO (arrival +
    /// duration + shift window; unbounded tiers get the end of the year).
    pub fn deadline_hour(&self, year: i32) -> u32 {
        let natural_end = self.arrival_hour + self.duration_hours;
        match self.tier.shift_window_hours() {
            Some(w) => natural_end + w,
            None => hours_in_year(year) as u32,
        }
    }
}

/// Generator for synthetic job populations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTraceGenerator {
    /// Mean number of flexible jobs arriving per hour.
    pub arrivals_per_hour: f64,
    /// Mean job power, MW.
    pub mean_power_mw: f64,
    /// Mean job duration, hours.
    pub mean_duration_hours: f64,
}

impl Default for JobTraceGenerator {
    fn default() -> Self {
        Self {
            arrivals_per_hour: 20.0,
            mean_power_mw: 0.05,
            mean_duration_hours: 3.0,
        }
    }
}

impl JobTraceGenerator {
    /// Generates a year of jobs, deterministic in `seed`, with tiers drawn
    /// from the Figure 10 distribution.
    pub fn generate(&self, year: i32, seed: u64) -> Vec<Job> {
        let hours = hours_in_year(year) as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = Vec::new();
        for hour in 0..hours {
            // Poisson-ish arrivals via a uniform count around the mean.
            let count = rng.gen_range(0.0..2.0 * self.arrivals_per_hour).round() as usize;
            for _ in 0..count {
                let tier = draw_tier(&mut rng);
                let duration = rng.gen_range(1.0..2.0 * self.mean_duration_hours).round() as u32;
                let power = rng.gen_range(0.2..1.8) * self.mean_power_mw;
                jobs.push(Job {
                    arrival_hour: hour,
                    duration_hours: duration.max(1),
                    power_mw: power,
                    tier,
                });
            }
        }
        jobs
    }
}

fn draw_tier(rng: &mut StdRng) -> SloTier {
    let x: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for tier in SloTier::ALL {
        acc += tier.meta_fraction();
        if x < acc {
            return tier;
        }
    }
    SloTier::Tier5
}

/// Aggregates a job population to an hourly power series (jobs run
/// immediately at arrival, spanning their duration).
pub fn aggregate_hourly(jobs: &[Job], year: i32) -> HourlySeries {
    let hours = hours_in_year(year);
    let mut load = vec![0.0; hours];
    for job in jobs {
        for h in job.arrival_hour..(job.arrival_hour + job.duration_hours) {
            if (h as usize) < hours {
                load[h as usize] += job.power_mw;
            }
        }
    }
    HourlySeries::from_values(Timestamp::start_of_year(year), load)
}

/// Splits a population's aggregate hourly power into per-tier series,
/// in [`SloTier::ALL`] order.
pub fn aggregate_by_tier(jobs: &[Job], year: i32) -> [HourlySeries; 5] {
    SloTier::ALL.map(|tier| {
        let subset: Vec<Job> = jobs.iter().copied().filter(|j| j.tier == tier).collect();
        aggregate_hourly(&subset, year)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<Job> {
        JobTraceGenerator::default().generate(2020, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = jobs();
        let b = jobs();
        assert_eq!(a, b);
        assert_ne!(a, JobTraceGenerator::default().generate(2020, 8));
        assert!(a.len() > 100_000); // ~20/hour over a year
    }

    #[test]
    fn tier_mix_matches_figure_10() {
        let population = jobs();
        let total = population.len() as f64;
        for tier in SloTier::ALL {
            let share = population.iter().filter(|j| j.tier == tier).count() as f64 / total;
            let expected = tier.meta_fraction();
            assert!(
                (share - expected).abs() < 0.02,
                "{tier}: {share:.3} vs expected {expected:.3}"
            );
        }
    }

    #[test]
    fn aggregate_accounts_for_all_energy() {
        let population = jobs();
        let series = aggregate_hourly(&population, 2020);
        let expected: f64 = population
            .iter()
            .map(|j| {
                // Energy inside the year only (jobs may straddle the end).
                let end = (j.arrival_hour + j.duration_hours).min(8784);
                j.power_mw * (end.saturating_sub(j.arrival_hour)) as f64
            })
            .sum();
        assert!((series.sum() - expected).abs() < 1e-6);
    }

    #[test]
    fn per_tier_aggregates_sum_to_total() {
        let population: Vec<Job> = jobs().into_iter().take(5000).collect();
        let total = aggregate_hourly(&population, 2020);
        let by_tier = aggregate_by_tier(&population, 2020);
        let mut sum = HourlySeries::zeros(total.start(), total.len());
        for series in &by_tier {
            sum = sum.try_add(series).unwrap();
        }
        for h in (0..total.len()).step_by(97) {
            assert!((sum[h] - total[h]).abs() < 1e-9);
        }
    }

    #[test]
    fn deadlines_respect_tier_windows() {
        let job = Job {
            arrival_hour: 100,
            duration_hours: 2,
            power_mw: 1.0,
            tier: SloTier::Tier1,
        };
        assert_eq!(job.deadline_hour(2020), 103);
        let daily = Job {
            tier: SloTier::Tier4,
            ..job
        };
        assert_eq!(daily.deadline_hour(2020), 126);
        let free = Job {
            tier: SloTier::Tier5,
            ..job
        };
        assert_eq!(free.deadline_hour(2020), 8784);
        assert_eq!(job.energy_mwh(), 2.0);
    }
}
