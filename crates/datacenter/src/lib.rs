//! Datacenter demand substrate: Meta's US fleet (paper Table 1), diurnal
//! CPU-utilization modeling, energy-proportional power modeling, workload
//! SLO tiers (paper Figure 10), and synthetic hourly demand traces.
//!
//! The paper's demand-side inputs are production Meta traces, which are not
//! shippable. This crate substitutes a parameterized generator that
//! preserves the three demand-side facts the paper's analysis actually
//! uses (see `DESIGN.md`):
//!
//! 1. CPU utilization swings ~20% diurnally (Meta) / ~15% (Google, Borg);
//! 2. power correlates linearly with utilization, but at datacenter scale
//!    the max-min *power* swing is only ~4% — demand is nearly flat
//!    relative to renewable-supply swings;
//! 3. roughly 40% of workloads are flexible enough (24-hour SLOs) for
//!    carbon-aware scheduling.
//!
//! # Example
//!
//! ```
//! use ce_datacenter::Fleet;
//!
//! let fleet = Fleet::meta_us();
//! assert_eq!(fleet.sites().len(), 13);
//! let utah = fleet.site("UT").expect("Utah site exists");
//! let demand = utah.demand_trace(2020, 7);
//! // Demand is nearly flat: the paper reports ~4% max-min swing.
//! let swing = (demand.max().unwrap() - demand.min().unwrap()) / demand.mean();
//! assert!(swing < 0.10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod jobs;
pub mod power;
pub mod site;
pub mod trace;
pub mod utilization;
pub mod workload;

pub use fleet::Fleet;
pub use jobs::{Job, JobTraceGenerator};
pub use power::PowerModel;
pub use site::DataCenterSite;
pub use trace::TraceGenerator;
pub use utilization::UtilizationModel;
pub use workload::{SloTier, WorkloadMix};
