//! Energy-proportional power modeling (paper Figure 3, right).
//!
//! Server power is accurately modeled as a linear function of utilization
//! with the y-intercept at idle power (Barroso & Hölzle). At *datacenter*
//! scale the effective idle fraction is high — cooling, networking,
//! storage, and power-conversion overheads are largely load-independent —
//! which is why a ~20% utilization swing becomes only a ~4% power swing.

use ce_timeseries::HourlySeries;
use serde::{Deserialize, Serialize};

/// Idle fraction that reproduces the paper's ~4% facility power swing for
/// a ~20% utilization swing (plus event peaks) around a 0.6 mean.
pub const FACILITY_IDLE_FRACTION: f64 = 0.86;

/// Linear utilization→power model for a whole datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Facility power at 100% utilization, MW (includes PUE overhead).
    pub peak_power_mw: f64,
    /// Fraction of peak power drawn at zero utilization.
    ///
    /// The default facility-level value [`FACILITY_IDLE_FRACTION`]
    /// reproduces the paper's ~4% max-min power swing for a ~20%
    /// utilization swing around a 0.6 mean.
    pub idle_fraction: f64,
}

impl PowerModel {
    /// A facility-level model calibrated to the paper's ~4% power swing.
    pub fn facility(peak_power_mw: f64) -> Self {
        Self {
            peak_power_mw,
            idle_fraction: FACILITY_IDLE_FRACTION,
        }
    }

    /// A single-server-style model (much lower idle fraction), used when
    /// studying energy-proportional hardware rather than whole facilities.
    pub fn server_level(peak_power_mw: f64) -> Self {
        Self {
            peak_power_mw,
            idle_fraction: 0.40,
        }
    }

    /// Instantaneous power (MW) at CPU utilization `util` in `[0, 1]`.
    ///
    /// ```
    /// use ce_datacenter::PowerModel;
    /// let m = PowerModel::facility(100.0);
    /// assert!(m.power_at(1.0) > m.power_at(0.0));
    /// assert_eq!(m.power_at(1.0), 100.0);
    /// ```
    pub fn power_at(&self, util: f64) -> f64 {
        let util = util.clamp(0.0, 1.0);
        self.peak_power_mw * (self.idle_fraction + (1.0 - self.idle_fraction) * util)
    }

    /// Inverse of [`PowerModel::power_at`]: the utilization that draws
    /// `power_mw`, clamped to `[0, 1]`.
    pub fn utilization_at(&self, power_mw: f64) -> f64 {
        if self.idle_fraction >= 1.0 {
            return 0.0;
        }
        ((power_mw / self.peak_power_mw - self.idle_fraction) / (1.0 - self.idle_fraction))
            .clamp(0.0, 1.0)
    }

    /// Maps an hourly utilization series to an hourly power series.
    pub fn power_series(&self, utilization: &HourlySeries) -> HourlySeries {
        utilization.map(|u| self.power_at(u))
    }

    /// Chooses `peak_power_mw` such that the *average* power over
    /// `utilization` equals `avg_power_mw`, then returns the power series.
    /// This is how site traces are calibrated to Table 1's "AVG DC Power"
    /// figures.
    pub fn calibrated_series(
        idle_fraction: f64,
        avg_power_mw: f64,
        utilization: &HourlySeries,
    ) -> (Self, HourlySeries) {
        let mean_util = utilization.mean();
        let mean_fraction = idle_fraction + (1.0 - idle_fraction) * mean_util;
        let peak = if mean_fraction > 0.0 {
            avg_power_mw / mean_fraction
        } else {
            avg_power_mw
        };
        let model = Self {
            peak_power_mw: peak,
            idle_fraction,
        };
        let series = model.power_series(utilization);
        (model, series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utilization::UtilizationModel;
    use ce_timeseries::stats::pearson;
    use ce_timeseries::Timestamp;

    #[test]
    fn linearity_endpoints() {
        let m = PowerModel::facility(50.0);
        assert_eq!(m.power_at(0.0), 50.0 * FACILITY_IDLE_FRACTION);
        assert_eq!(m.power_at(1.0), 50.0);
        assert_eq!(m.power_at(2.0), 50.0); // clamped
        let mid = m.power_at(0.5);
        assert!(
            (mid - 50.0 * (FACILITY_IDLE_FRACTION + (1.0 - FACILITY_IDLE_FRACTION) * 0.5)).abs()
                < 1e-12
        );
    }

    #[test]
    fn inverse_roundtrips() {
        let m = PowerModel::facility(80.0);
        for u in [0.0, 0.3, 0.6, 1.0] {
            let p = m.power_at(u);
            assert!((m.utilization_at(p) - u).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_and_power_are_perfectly_correlated() {
        // Fig 3 (right): at DC scale power tracks CPU utilization linearly.
        let util = UtilizationModel::meta().generate(2020, 1);
        let m = PowerModel::facility(100.0);
        let power = m.power_series(&util);
        let corr = pearson(util.values(), power.values()).unwrap();
        assert!(corr > 0.999, "correlation {corr}");
    }

    #[test]
    fn facility_swing_is_about_four_percent() {
        // The headline demand-side fact from §3.1.
        let util = UtilizationModel::meta().generate(2020, 1);
        let m = PowerModel::facility(100.0);
        let power = m.power_series(&util);
        let swing = (power.max().unwrap() - power.min().unwrap()) / power.mean();
        assert!(
            (0.02..0.06).contains(&swing),
            "facility power swing {swing:.4}"
        );
    }

    #[test]
    fn calibrated_series_hits_requested_average() {
        let util = UtilizationModel::meta().generate(2020, 2);
        let (model, series) = PowerModel::calibrated_series(FACILITY_IDLE_FRACTION, 19.0, &util);
        assert!((series.mean() - 19.0).abs() < 1e-6);
        assert!(model.peak_power_mw > 19.0);
    }

    #[test]
    fn server_level_model_is_more_proportional() {
        let facility = PowerModel::facility(1.0);
        let server = PowerModel::server_level(1.0);
        let f_ratio = facility.power_at(0.0) / facility.power_at(1.0);
        let s_ratio = server.power_at(0.0) / server.power_at(1.0);
        assert!(s_ratio < f_ratio);
    }

    #[test]
    fn degenerate_idle_fraction_one() {
        let m = PowerModel {
            peak_power_mw: 10.0,
            idle_fraction: 1.0,
        };
        assert_eq!(m.utilization_at(10.0), 0.0);
        let flat = m.power_series(&HourlySeries::from_values(
            Timestamp::start_of_year(2020),
            vec![0.0, 0.5, 1.0],
        ));
        assert_eq!(flat.values(), &[10.0, 10.0, 10.0]);
    }
}
