//! A single datacenter site (one row of the paper's Table 1).

use crate::power::PowerModel;
use crate::utilization::UtilizationModel;
use ce_grid::BalancingAuthority;
use ce_timeseries::HourlySeries;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One datacenter site: its location, grid, renewable investments, and
/// average power draw.
///
/// Renewable investment figures are Table 1's; the average power figures
/// for OR/NC/UT are the ones printed on Figures 7/9/12, and the remaining
/// sites carry representative hyperscale values (documented in
/// `DESIGN.md`), since the paper does not publish them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenterSite {
    name: String,
    state: String,
    ba: BalancingAuthority,
    solar_mw: f64,
    wind_mw: f64,
    avg_power_mw: f64,
}

impl DataCenterSite {
    /// Creates a site description.
    ///
    /// # Panics
    ///
    /// Panics if any MW figure is negative.
    pub fn new(
        name: impl Into<String>,
        state: impl Into<String>,
        ba: BalancingAuthority,
        solar_mw: f64,
        wind_mw: f64,
        avg_power_mw: f64,
    ) -> Self {
        assert!(
            solar_mw >= 0.0 && wind_mw >= 0.0 && avg_power_mw >= 0.0,
            "MW figures must be non-negative"
        );
        Self {
            name: name.into(),
            state: state.into(),
            ba,
            solar_mw,
            wind_mw,
            avg_power_mw,
        }
    }

    /// Human-readable location, e.g. "Prineville, Oregon".
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Two-letter state code, e.g. "OR". Used as the fleet lookup key.
    pub fn state(&self) -> &str {
        &self.state
    }

    /// The balancing authority whose grid powers this site.
    pub fn ba(&self) -> BalancingAuthority {
        self.ba
    }

    /// Regional solar investment, MW (Table 1).
    pub fn solar_mw(&self) -> f64 {
        self.solar_mw
    }

    /// Regional wind investment, MW (Table 1).
    pub fn wind_mw(&self) -> f64 {
        self.wind_mw
    }

    /// Total renewable investment, MW.
    pub fn total_investment_mw(&self) -> f64 {
        self.solar_mw + self.wind_mw
    }

    /// Average facility power draw, MW.
    pub fn avg_power_mw(&self) -> f64 {
        self.avg_power_mw
    }

    /// Synthesizes a year-long hourly demand trace for this site: the Meta
    /// diurnal utilization profile through the facility power model,
    /// calibrated so the trace's mean equals [`DataCenterSite::avg_power_mw`].
    pub fn demand_trace(&self, year: i32, seed: u64) -> HourlySeries {
        let util = UtilizationModel::meta().generate(year, seed ^ site_stream(&self.state));
        let (_, power) = PowerModel::calibrated_series(
            crate::power::FACILITY_IDLE_FRACTION,
            self.avg_power_mw,
            &util,
        );
        power
    }
}

impl fmt::Display for DataCenterSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] on {} (solar {} MW, wind {} MW, avg load {} MW)",
            self.name, self.state, self.ba, self.solar_mw, self.wind_mw, self.avg_power_mw
        )
    }
}

/// Derives a per-site seed stream so different sites get independent traces
/// from the same top-level seed.
fn site_stream(state: &str) -> u64 {
    state.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn utah() -> DataCenterSite {
        DataCenterSite::new(
            "Eagle Mountain, Utah",
            "UT",
            BalancingAuthority::PACE,
            694.0,
            239.0,
            19.0,
        )
    }

    #[test]
    fn accessors() {
        let s = utah();
        assert_eq!(s.state(), "UT");
        assert_eq!(s.ba(), BalancingAuthority::PACE);
        assert_eq!(s.total_investment_mw(), 933.0);
        assert!(s.to_string().contains("Eagle Mountain"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_investment() {
        DataCenterSite::new("x", "XX", BalancingAuthority::PJM, -1.0, 0.0, 10.0);
    }

    #[test]
    fn demand_trace_is_calibrated_and_flat() {
        let trace = utah().demand_trace(2020, 7);
        assert_eq!(trace.len(), 8784);
        assert!((trace.mean() - 19.0).abs() < 1e-6);
        let swing = (trace.max().unwrap() - trace.min().unwrap()) / trace.mean();
        assert!(swing < 0.10, "power swing {swing}");
    }

    #[test]
    fn traces_differ_across_sites_with_same_seed() {
        let a = utah().demand_trace(2020, 7);
        let b = DataCenterSite::new(
            "Prineville, Oregon",
            "OR",
            BalancingAuthority::BPAT,
            100.0,
            0.0,
            19.0,
        )
        .demand_trace(2020, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_is_deterministic() {
        assert_eq!(utah().demand_trace(2020, 7), utah().demand_trace(2020, 7));
        assert_ne!(utah().demand_trace(2020, 7), utah().demand_trace(2020, 8));
    }
}
