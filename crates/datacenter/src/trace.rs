//! Synthetic production-trace generation: the substitute for Meta's
//! internal hourly datacenter power traces and the open Borg comparison.

use crate::power::PowerModel;
use crate::utilization::UtilizationModel;
use ce_timeseries::HourlySeries;

/// Which published fleet profile a trace imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceProfile {
    /// Meta-style trace (~20% CPU swing, evening peak).
    Meta,
    /// Google/Borg-style trace (~15% CPU swing) — used only for Figure 3's
    /// comparison.
    Google,
}

/// Generates paired (utilization, power) traces for a datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenerator {
    profile: TraceProfile,
    avg_power_mw: f64,
}

/// A generated demand trace: hourly utilization and facility power.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTrace {
    /// Hourly CPU utilization in `[0, 1]`.
    pub utilization: HourlySeries,
    /// Hourly facility power, MW.
    pub power: HourlySeries,
    /// The calibrated power model that produced `power`.
    pub model: PowerModel,
}

impl TraceGenerator {
    /// A generator for the given profile and average facility power.
    pub fn new(profile: TraceProfile, avg_power_mw: f64) -> Self {
        Self {
            profile,
            avg_power_mw,
        }
    }

    /// Generates a year of paired utilization/power data.
    pub fn generate(&self, year: i32, seed: u64) -> DemandTrace {
        let model = match self.profile {
            TraceProfile::Meta => UtilizationModel::meta(),
            TraceProfile::Google => UtilizationModel::google(),
        };
        let utilization = model.generate(year, seed);
        let (model, power) = PowerModel::calibrated_series(
            crate::power::FACILITY_IDLE_FRACTION,
            self.avg_power_mw,
            &utilization,
        );
        DemandTrace {
            utilization,
            power,
            model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::resample::average_day_profile;
    use ce_timeseries::stats::pearson;

    #[test]
    fn meta_trace_reproduces_figure_3() {
        let trace = TraceGenerator::new(TraceProfile::Meta, 50.0).generate(2020, 1);
        // Utilization swing ~20%.
        let util_profile = average_day_profile(&trace.utilization);
        let util_swing = util_profile.iter().copied().fold(f64::MIN, f64::max)
            - util_profile.iter().copied().fold(f64::MAX, f64::min);
        assert!((0.15..0.26).contains(&util_swing), "{util_swing}");
        // Power correlates with utilization.
        let corr = pearson(trace.utilization.values(), trace.power.values()).unwrap();
        assert!(corr > 0.999);
        // Power swing ~4%.
        let swing = (trace.power.max().unwrap() - trace.power.min().unwrap()) / trace.power.mean();
        assert!((0.02..0.08).contains(&swing), "power swing {swing}");
        // Calibrated to the requested mean.
        assert!((trace.power.mean() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn google_swing_is_smaller_than_meta() {
        let meta = TraceGenerator::new(TraceProfile::Meta, 50.0).generate(2020, 2);
        let google = TraceGenerator::new(TraceProfile::Google, 50.0).generate(2020, 2);
        let swing = |t: &DemandTrace| {
            let p = average_day_profile(&t.utilization);
            p.iter().copied().fold(f64::MIN, f64::max) - p.iter().copied().fold(f64::MAX, f64::min)
        };
        assert!(swing(&google) < swing(&meta));
    }

    #[test]
    fn traces_are_deterministic() {
        let g = TraceGenerator::new(TraceProfile::Meta, 10.0);
        assert_eq!(g.generate(2020, 3), g.generate(2020, 3));
        assert_ne!(g.generate(2020, 3), g.generate(2020, 4));
    }
}
