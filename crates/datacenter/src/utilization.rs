//! Diurnal CPU-utilization modeling (paper Figure 3, left).

use ce_timeseries::time::hours_in_year;
use ce_timeseries::{HourlySeries, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parameterized diurnal CPU-utilization model.
///
/// Utilization follows user activity: low in the small hours, peaking in
/// the evening, with a weekend dip, mild noise, and occasional
/// special-event peaks (holidays, major events) — the features the paper
/// calls out for Meta's hyperscale fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationModel {
    /// Long-run mean utilization (0..1).
    pub mean: f64,
    /// Max-min diurnal swing in absolute utilization (the paper: ~0.20 for
    /// Meta, ~0.15 for Google).
    pub diurnal_swing: f64,
    /// Hour of day (0-23) at which utilization peaks.
    pub peak_hour: f64,
    /// Weekend utilization dip in absolute terms.
    pub weekend_dip: f64,
    /// Std-dev of hour-to-hour noise.
    pub noise: f64,
    /// Number of special-event days per year with elevated load.
    pub event_days: usize,
}

impl UtilizationModel {
    /// Meta-like profile: ~20% diurnal swing, evening peak.
    pub fn meta() -> Self {
        Self {
            mean: 0.60,
            diurnal_swing: 0.20,
            peak_hour: 20.0,
            weekend_dip: 0.03,
            noise: 0.01,
            event_days: 6,
        }
    }

    /// Google/Borg-like profile: ~15% diurnal swing (paper §3.1).
    pub fn google() -> Self {
        Self {
            mean: 0.55,
            diurnal_swing: 0.15,
            peak_hour: 19.0,
            weekend_dip: 0.02,
            noise: 0.01,
            event_days: 4,
        }
    }

    /// Generates a year of hourly utilization in `[0, 1]`, deterministic in
    /// `seed`.
    pub fn generate(&self, year: i32, seed: u64) -> HourlySeries {
        let hours = hours_in_year(year);
        let mut rng = StdRng::seed_from_u64(seed);

        // Pick the special-event days up front.
        let days = hours / 24;
        let mut event = vec![0.0f64; days];
        for _ in 0..self.event_days {
            let d = rng.gen_range(0..days);
            event[d] = rng.gen_range(0.05..0.12);
        }

        let amplitude = self.diurnal_swing / 2.0;
        HourlySeries::from_fn(Timestamp::start_of_year(year), hours, |h| {
            let hod = (h % 24) as f64;
            let day = h / 24;
            let phase = (hod - self.peak_hour) / 24.0 * std::f64::consts::TAU;
            let diurnal = amplitude * phase.cos();
            // Day 0 of the synthetic year is a Wednesday-like weekday;
            // days 3 and 4 of each week are the weekend.
            let weekday = day % 7;
            let weekend = if weekday == 3 || weekday == 4 {
                -self.weekend_dip
            } else {
                0.0
            };
            let noise = self.noise * (rand_normal_like(day as u64, h as u64, seed));
            (self.mean + diurnal + weekend + event[day.min(days - 1)] + noise).clamp(0.0, 1.0)
        })
    }
}

/// Cheap deterministic noise in roughly [-1, 1] derived from hashing the
/// indices — avoids carrying the RNG into the `from_fn` closure.
fn rand_normal_like(a: u64, b: u64, seed: u64) -> f64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(seed);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    // Sum of two uniforms, centered: triangular-ish in [-1, 1].
    let u1 = (x & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    let u2 = (x >> 32) as f64 / u32::MAX as f64;
    u1 + u2 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::resample::average_day_profile;

    #[test]
    fn meta_profile_swings_about_twenty_percent() {
        let util = UtilizationModel::meta().generate(2020, 1);
        let profile = average_day_profile(&util);
        let max = profile.iter().copied().fold(f64::MIN, f64::max);
        let min = profile.iter().copied().fold(f64::MAX, f64::min);
        let swing = max - min;
        assert!(
            (0.15..0.26).contains(&swing),
            "meta diurnal swing {swing:.3}"
        );
    }

    #[test]
    fn google_profile_swings_about_fifteen_percent() {
        let util = UtilizationModel::google().generate(2020, 1);
        let profile = average_day_profile(&util);
        let max = profile.iter().copied().fold(f64::MIN, f64::max);
        let min = profile.iter().copied().fold(f64::MAX, f64::min);
        let swing = max - min;
        assert!(
            (0.10..0.20).contains(&swing),
            "google diurnal swing {swing:.3}"
        );
        // And it is smaller than Meta's, as the paper reports.
        let meta = UtilizationModel::meta().generate(2020, 1);
        let meta_profile = average_day_profile(&meta);
        let meta_swing = meta_profile.iter().copied().fold(f64::MIN, f64::max)
            - meta_profile.iter().copied().fold(f64::MAX, f64::min);
        assert!(meta_swing > swing);
    }

    #[test]
    fn utilization_stays_in_unit_interval() {
        let util = UtilizationModel::meta().generate(2020, 2);
        assert!(util.min().unwrap() >= 0.0);
        assert!(util.max().unwrap() <= 1.0);
    }

    #[test]
    fn peak_lands_near_configured_hour() {
        let util = UtilizationModel::meta().generate(2020, 3);
        let profile = average_day_profile(&util);
        let peak_hour = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (18..=22).contains(&peak_hour),
            "peak at hour {peak_hour}, expected evening"
        );
    }

    #[test]
    fn weekends_dip() {
        let model = UtilizationModel {
            noise: 0.0,
            event_days: 0,
            ..UtilizationModel::meta()
        };
        let util = model.generate(2021, 4);
        // Compare the same hour on a weekday (day 0) vs weekend (day 3).
        assert!(util[3 * 24 + 12] < util[12]);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = UtilizationModel::meta().generate(2020, 42);
        let b = UtilizationModel::meta().generate(2020, 42);
        assert_eq!(a, b);
        assert_ne!(a, UtilizationModel::meta().generate(2020, 43));
    }

    #[test]
    fn event_days_create_peaks() {
        let calm = UtilizationModel {
            event_days: 0,
            noise: 0.0,
            ..UtilizationModel::meta()
        };
        let busy = UtilizationModel {
            event_days: 20,
            noise: 0.0,
            ..UtilizationModel::meta()
        };
        let calm_max = calm.generate(2020, 9).max().unwrap();
        let busy_max = busy.generate(2020, 9).max().unwrap();
        assert!(busy_max > calm_max);
    }
}
