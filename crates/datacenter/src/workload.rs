//! Workload SLO tiers and flexibility (paper Figure 10 and §3.1/§4.3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Completion-time SLO tiers for data-processing workloads (paper Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloTier {
    /// SLO: completion within ±1 hour of the requested time.
    Tier1,
    /// SLO: ±2 hours.
    Tier2,
    /// SLO: ±4 hours.
    Tier3,
    /// SLO: completion within the day (24-hour window).
    Tier4,
    /// No SLO at all — fully deferrable.
    Tier5,
}

impl SloTier {
    /// All tiers in order.
    pub const ALL: [SloTier; 5] = [
        SloTier::Tier1,
        SloTier::Tier2,
        SloTier::Tier3,
        SloTier::Tier4,
        SloTier::Tier5,
    ];

    /// The scheduling window in hours a job of this tier may shift by
    /// (`None` = unbounded).
    pub fn shift_window_hours(&self) -> Option<u32> {
        match self {
            SloTier::Tier1 => Some(1),
            SloTier::Tier2 => Some(2),
            SloTier::Tier3 => Some(4),
            SloTier::Tier4 => Some(24),
            SloTier::Tier5 => None,
        }
    }

    /// Fraction of Meta's data-processing workloads in this tier
    /// (paper Figure 10).
    pub fn meta_fraction(&self) -> f64 {
        match self {
            SloTier::Tier1 => 0.088,
            SloTier::Tier2 => 0.038,
            SloTier::Tier3 => 0.105,
            SloTier::Tier4 => 0.712,
            SloTier::Tier5 => 0.057,
        }
    }
}

impl fmt::Display for SloTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, slo) = match self {
            SloTier::Tier1 => ("Tier 1", "SLO: +/- 1 hour"),
            SloTier::Tier2 => ("Tier 2", "SLO: +/- 2 hours"),
            SloTier::Tier3 => ("Tier 3", "SLO: +/- 4 hours"),
            SloTier::Tier4 => ("Tier 4", "SLO: Daily"),
            SloTier::Tier5 => ("Tier 5", "No SLO"),
        };
        write!(f, "{name} ({slo})")
    }
}

/// The flexibility composition of a datacenter's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Fraction of total fleet compute that is data-processing /
    /// delay-tolerant work at all (paper: ~7.5% at Meta is offline data
    /// processing; Borg: ~40% of jobs have 24-hour SLOs).
    flexible_fraction: f64,
    /// Distribution over SLO tiers *within* the flexible fraction.
    tier_fractions: [f64; 5],
}

impl WorkloadMix {
    /// The paper's headline evaluation assumption: 40% of workloads are
    /// delay-tolerant with daily SLOs (from the Borg analysis, §5.2).
    pub fn borg_default() -> Self {
        Self::with_flexible_fraction(0.40)
    }

    /// Meta's data-processing tier mix (Figure 10) over a given flexible
    /// fraction of the fleet.
    pub fn with_flexible_fraction(flexible_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flexible_fraction),
            "flexible fraction must be in [0, 1]"
        );
        Self {
            flexible_fraction,
            tier_fractions: [0.088, 0.038, 0.105, 0.712, 0.057],
        }
    }

    /// A fully inflexible workload (no carbon-aware scheduling possible).
    pub fn inflexible() -> Self {
        Self::with_flexible_fraction(0.0)
    }

    /// A fully flexible workload (the paper's Figure 12 assumption).
    pub fn fully_flexible() -> Self {
        Self::with_flexible_fraction(1.0)
    }

    /// Fraction of total compute that can shift at all.
    pub fn flexible_fraction(&self) -> f64 {
        self.flexible_fraction
    }

    /// Fraction of total compute in `tier`.
    pub fn fraction_of_total(&self, tier: SloTier) -> f64 {
        // `ALL` lists the variants in declaration order, so the
        // discriminant *is* the index — no fallible lookup needed.
        let idx = tier as usize;
        self.flexible_fraction * self.tier_fractions[idx]
    }

    /// Fraction of total compute that may shift by at least `hours`.
    ///
    /// ```
    /// use ce_datacenter::WorkloadMix;
    /// let mix = ce_datacenter::WorkloadMix::borg_default();
    /// // Everything flexible can shift by >= 1 hour.
    /// assert!(mix.shiftable_by(1) <= 0.40 + 1e-12);
    /// // Less can shift by a full day.
    /// assert!(mix.shiftable_by(24) < mix.shiftable_by(1));
    /// ```
    pub fn shiftable_by(&self, hours: u32) -> f64 {
        SloTier::ALL
            .iter()
            .filter(|t| match t.shift_window_hours() {
                None => true,
                Some(w) => w >= hours,
            })
            .map(|t| self.fraction_of_total(*t))
            .sum()
    }
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self::borg_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_10_fractions_sum_to_one() {
        let total: f64 = SloTier::ALL.iter().map(|t| t.meta_fraction()).sum();
        assert!((total - 1.0).abs() < 1e-9, "tier fractions sum to {total}");
    }

    #[test]
    fn tier4_dominates_as_in_figure_10() {
        assert!(SloTier::Tier4.meta_fraction() > 0.7);
        for t in SloTier::ALL {
            if t != SloTier::Tier4 {
                assert!(t.meta_fraction() < SloTier::Tier4.meta_fraction());
            }
        }
    }

    #[test]
    fn majority_of_flexible_work_has_slos_over_four_hours() {
        // Paper §4.3: ~87.4% of data-processing workloads have SLOs > 4h.
        let over_4h: f64 = [SloTier::Tier4, SloTier::Tier5]
            .iter()
            .map(|t| t.meta_fraction())
            .sum();
        assert!((0.70..0.90).contains(&over_4h), "{over_4h}");
    }

    #[test]
    fn shift_windows_are_ordered() {
        assert_eq!(SloTier::Tier1.shift_window_hours(), Some(1));
        assert_eq!(SloTier::Tier4.shift_window_hours(), Some(24));
        assert_eq!(SloTier::Tier5.shift_window_hours(), None);
    }

    #[test]
    fn mix_fraction_accounting() {
        let mix = WorkloadMix::borg_default();
        assert_eq!(mix.flexible_fraction(), 0.40);
        let t4 = mix.fraction_of_total(SloTier::Tier4);
        assert!((t4 - 0.4 * 0.712).abs() < 1e-12);
        assert_eq!(WorkloadMix::inflexible().shiftable_by(1), 0.0);
        assert!((WorkloadMix::fully_flexible().shiftable_by(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shiftable_by_is_monotone_decreasing() {
        let mix = WorkloadMix::borg_default();
        let mut prev = f64::INFINITY;
        for hours in [1, 2, 4, 24, 48] {
            let s = mix.shiftable_by(hours);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
        // Only Tier 5 (no SLO) can shift beyond a day.
        assert!((mix.shiftable_by(48) - 0.4 * 0.057).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "flexible fraction")]
    fn rejects_out_of_range_fraction() {
        WorkloadMix::with_flexible_fraction(1.5);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(SloTier::Tier4.to_string(), "Tier 4 (SLO: Daily)");
        assert_eq!(SloTier::Tier5.to_string(), "Tier 5 (No SLO)");
    }
}
