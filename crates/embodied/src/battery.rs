//! Embodied carbon of lithium-ion batteries (paper §5.1).
//!
//! The manufacturing footprint of 74-134 kgCO2 per kWh of capacity splits
//! into three steps the paper enumerates: upstream battery materials
//! (59 kg/kWh, 44-80% of total), cell production and assembly (0-60 kg/kWh
//! depending on renewable energy use during production), and end-of-life
//! processing/recycling (15 kg/kWh).

use serde::{Deserialize, Serialize};

/// Battery manufacturing-carbon coefficients, kgCO2 per kWh of capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryEmbodied {
    /// Upstream materials production (paper: 59 kg/kWh).
    pub materials_kg_per_kwh: f64,
    /// Cell production and assembly (paper: 0-60 kg/kWh).
    pub assembly_kg_per_kwh: f64,
    /// End-of-life processing and recycling (paper: 15 kg/kWh).
    pub end_of_life_kg_per_kwh: f64,
    /// Calendar-aging cap on lifetime, years, applied on top of the
    /// cycle-life model (see `ce_battery::lifetime`).
    pub calendar_life_cap_years: f64,
}

impl BatteryEmbodied {
    /// Paper defaults: 59 + 30 + 15 = 104 kg/kWh (assembly at the midpoint
    /// of its 0-60 range). The calendar cap is 20 years: the paper
    /// computes lifetime from discharge cycles (up to 27 years at 60%
    /// DoD) but notes "other degradation factors would come in to play"
    /// first.
    pub fn paper_defaults() -> Self {
        Self {
            materials_kg_per_kwh: 59.0,
            assembly_kg_per_kwh: 30.0,
            end_of_life_kg_per_kwh: 15.0,
            calendar_life_cap_years: 20.0,
        }
    }

    /// Best case: assembly powered entirely by renewables (74 kg/kWh).
    pub fn green_assembly() -> Self {
        Self {
            assembly_kg_per_kwh: 0.0,
            ..Self::paper_defaults()
        }
    }

    /// Worst case: fully carbon-intensive assembly (134 kg/kWh).
    pub fn brown_assembly() -> Self {
        Self {
            assembly_kg_per_kwh: 60.0,
            ..Self::paper_defaults()
        }
    }

    /// Total manufacturing footprint, kgCO2 per kWh of capacity.
    pub fn total_kg_per_kwh(&self) -> f64 {
        self.materials_kg_per_kwh + self.assembly_kg_per_kwh + self.end_of_life_kg_per_kwh
    }

    /// Full (unamortized) manufacturing footprint of a battery, tons CO2.
    pub fn manufacturing_tons(&self, capacity_mwh: f64) -> f64 {
        // capacity MWh → kWh (×1000), kg → tons (÷1000): they cancel.
        capacity_mwh * self.total_kg_per_kwh()
    }

    /// Embodied carbon attributable to one year of operating a battery of
    /// `capacity_mwh` at depth-of-discharge `dod`, performing
    /// `cycles_per_year` equivalent full cycles: the manufacturing
    /// footprint divided by the (cycle-limited, calendar-capped) lifetime.
    ///
    /// # Panics
    ///
    /// Panics if `dod` is outside `(0, 1]` or `cycles_per_year` is
    /// negative (propagated from `ce_battery::lifetime`).
    pub fn amortized_tons_per_year(
        &self,
        capacity_mwh: f64,
        dod: f64,
        cycles_per_year: f64,
    ) -> f64 {
        if capacity_mwh <= 0.0 {
            return 0.0;
        }
        let years =
            ce_battery::lifetime_years_capped(dod, cycles_per_year, self.calendar_life_cap_years);
        self.manufacturing_tons(capacity_mwh) / years
    }
}

impl Default for BatteryEmbodied {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_within_published_range() {
        assert_eq!(BatteryEmbodied::green_assembly().total_kg_per_kwh(), 74.0);
        assert_eq!(BatteryEmbodied::brown_assembly().total_kg_per_kwh(), 134.0);
        let default = BatteryEmbodied::paper_defaults().total_kg_per_kwh();
        assert!((74.0..=134.0).contains(&default));
    }

    #[test]
    fn materials_share_is_within_range() {
        // Paper: materials are 44-80% of total.
        for params in [
            BatteryEmbodied::paper_defaults(),
            BatteryEmbodied::green_assembly(),
            BatteryEmbodied::brown_assembly(),
        ] {
            let share = params.materials_kg_per_kwh / params.total_kg_per_kwh();
            assert!((0.44..=0.80).contains(&share), "materials share {share}");
        }
    }

    #[test]
    fn manufacturing_tons_scale() {
        let b = BatteryEmbodied::paper_defaults();
        // 1 MWh = 1000 kWh at 104 kg/kWh = 104 tons.
        assert!((b.manufacturing_tons(1.0) - 104.0).abs() < 1e-9);
        // A 1200 MWh Moss Landing-scale battery ≈ 125 kt.
        let moss = b.manufacturing_tons(1200.0);
        assert!((100_000.0..150_000.0).contains(&moss));
    }

    #[test]
    fn amortization_divides_by_lifetime() {
        let b = BatteryEmbodied::paper_defaults();
        // Daily full cycles at 100% DoD → ~8.2-year life.
        let yearly = b.amortized_tons_per_year(100.0, 1.0, 365.0);
        let expected = b.manufacturing_tons(100.0) / (3000.0 / 365.0);
        assert!((yearly - expected).abs() < 1e-9);
    }

    #[test]
    fn idle_battery_amortizes_over_calendar_cap() {
        let b = BatteryEmbodied::paper_defaults();
        let yearly = b.amortized_tons_per_year(100.0, 1.0, 0.0);
        assert!((yearly - b.manufacturing_tons(100.0) / 20.0).abs() < 1e-9);
    }

    #[test]
    fn lower_dod_spreads_carbon_over_more_cycles() {
        let b = BatteryEmbodied::paper_defaults();
        let deep = b.amortized_tons_per_year(100.0, 1.0, 365.0);
        let shallow = b.amortized_tons_per_year(100.0, 0.8, 365.0);
        assert!(shallow < deep);
    }

    #[test]
    fn zero_capacity_is_free() {
        let b = BatteryEmbodied::paper_defaults();
        assert_eq!(b.amortized_tons_per_year(0.0, 1.0, 100.0), 0.0);
    }
}
