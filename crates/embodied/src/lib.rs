//! Embodied (manufacturing) carbon models for renewables, batteries, and
//! servers — the paper's §5.1.
//!
//! Every 24/7 solution buys operational-carbon reductions with embodied
//! carbon: wind/solar farms, utility-scale batteries, and extra servers all
//! have manufacturing footprints. This crate turns the paper's published
//! coefficients into per-year amortized figures so the optimizer can add
//! them to operational carbon on equal terms:
//!
//! | Asset | Coefficient | Lifetime |
//! |---|---|---|
//! | Wind farm | 10-15 gCO2/kWh generated (lifecycle) | 20 years |
//! | Solar farm | 40-70 gCO2/kWh generated (lifecycle) | 25-30 years |
//! | LFP battery | 74-134 kgCO2/kWh capacity | cycle-limited (see `ce-battery`) |
//! | Server | 744.5 kgCO2 × 1.16 infrastructure multiplier | 5 years |
//!
//! All public quantities are metric tons of CO2-equivalent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod renewables;
pub mod server;

pub use battery::BatteryEmbodied;
pub use renewables::RenewableEmbodied;
pub use server::ServerEmbodied;

use serde::{Deserialize, Serialize};

/// The complete embodied-carbon parameter set used by the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedParams {
    /// Wind/solar lifecycle coefficients.
    pub renewables: RenewableEmbodied,
    /// Battery manufacturing coefficients.
    pub battery: BatteryEmbodied,
    /// Server manufacturing coefficients.
    pub server: ServerEmbodied,
}

impl EmbodiedParams {
    /// The paper's default coefficients (midpoints of published ranges,
    /// consistent with Table 2 for renewables).
    pub fn paper_defaults() -> Self {
        Self {
            renewables: RenewableEmbodied::paper_defaults(),
            battery: BatteryEmbodied::paper_defaults(),
            server: ServerEmbodied::paper_defaults(),
        }
    }
}

impl Default for EmbodiedParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let p = EmbodiedParams::default();
        assert_eq!(p, EmbodiedParams::paper_defaults());
        assert!(p.renewables.wind_g_per_kwh > 0.0);
        assert!(p.battery.total_kg_per_kwh() > 0.0);
        assert!(p.server.per_server_kg() > 0.0);
    }
}
