//! Embodied carbon of wind and solar farms.
//!
//! The NREL lifecycle-assessment figures the paper cites already amortize
//! manufacturing over the asset's lifetime generation, so embodied carbon
//! attributable to a year of operation is simply *energy generated that
//! year × lifecycle intensity*.

use serde::{Deserialize, Serialize};

/// Lifecycle (manufacturing-amortized) carbon coefficients for renewables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenewableEmbodied {
    /// Wind lifecycle intensity, gCO2 per kWh generated (paper: 10-15).
    pub wind_g_per_kwh: f64,
    /// Solar lifecycle intensity, gCO2 per kWh generated (paper: 40-70).
    pub solar_g_per_kwh: f64,
    /// Wind-turbine lifetime, years (paper: 20).
    pub wind_lifetime_years: f64,
    /// Solar-panel lifetime, years (paper: 25-30).
    pub solar_lifetime_years: f64,
}

impl RenewableEmbodied {
    /// Defaults aligned with Table 2 (wind 11, solar 41 g/kWh — inside the
    /// §5.1 ranges, and consistent with the operational intensities used
    /// for grid energy).
    pub fn paper_defaults() -> Self {
        Self {
            wind_g_per_kwh: 11.0,
            solar_g_per_kwh: 41.0,
            wind_lifetime_years: 20.0,
            solar_lifetime_years: 27.5,
        }
    }

    /// Embodied carbon (tons CO2) attributable to generating
    /// `energy_mwh` of wind energy.
    ///
    /// ```
    /// use ce_embodied::RenewableEmbodied;
    /// let r = RenewableEmbodied::paper_defaults();
    /// // 1000 MWh of wind at 11 g/kWh = 11 tons.
    /// assert!((r.wind_tons(1000.0) - 11.0).abs() < 1e-9);
    /// ```
    pub fn wind_tons(&self, energy_mwh: f64) -> f64 {
        // g/kWh == kg/MWh; /1000 → tons.
        energy_mwh * self.wind_g_per_kwh / 1000.0
    }

    /// Embodied carbon (tons CO2) attributable to generating
    /// `energy_mwh` of solar energy.
    pub fn solar_tons(&self, energy_mwh: f64) -> f64 {
        energy_mwh * self.solar_g_per_kwh / 1000.0
    }

    /// Combined embodied carbon for a year with the given generated
    /// energies.
    pub fn total_tons(&self, solar_mwh: f64, wind_mwh: f64) -> f64 {
        self.solar_tons(solar_mwh) + self.wind_tons(wind_mwh)
    }
}

impl Default for RenewableEmbodied {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_within_published_ranges() {
        let r = RenewableEmbodied::paper_defaults();
        assert!((10.0..=15.0).contains(&r.wind_g_per_kwh));
        assert!((40.0..=70.0).contains(&r.solar_g_per_kwh));
        assert_eq!(r.wind_lifetime_years, 20.0);
        assert!((25.0..=30.0).contains(&r.solar_lifetime_years));
    }

    #[test]
    fn solar_is_dirtier_than_wind_per_kwh() {
        let r = RenewableEmbodied::paper_defaults();
        assert!(r.solar_tons(100.0) > 3.0 * r.wind_tons(100.0));
    }

    #[test]
    fn totals_add_components() {
        let r = RenewableEmbodied::paper_defaults();
        let total = r.total_tons(500.0, 800.0);
        assert!((total - (r.solar_tons(500.0) + r.wind_tons(800.0))).abs() < 1e-12);
    }

    #[test]
    fn zero_generation_is_zero_carbon() {
        let r = RenewableEmbodied::paper_defaults();
        assert_eq!(r.total_tons(0.0, 0.0), 0.0);
    }
}
