//! Embodied carbon of servers and supporting infrastructure (paper §5.1).
//!
//! The paper proxies server manufacturing with the HPE ProLiant DL360
//! Gen10 product carbon footprint: 744.5 kgCO2eq per server (mainboard,
//! SSD, daughterboard, enclosure, fans, transport, assembly), a five-year
//! lifetime, and a 1.16× multiplier capturing floor-space and other
//! infrastructure (construction is ~16% of hardware's footprint in Meta's
//! 2019 Scope 3 accounting).

use serde::{Deserialize, Serialize};

/// Server manufacturing-carbon coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerEmbodied {
    /// Manufacturing footprint per server, kgCO2eq (paper: 744.5).
    pub embodied_kg_per_server: f64,
    /// Multiplier for floor-space/construction surcharge (paper: 1.16).
    pub infrastructure_multiplier: f64,
    /// Server lifetime, years (paper: 5).
    pub lifetime_years: f64,
    /// Facility power per server at typical load, kW. The paper's proxy
    /// has an 85 W TDP CPU; with memory, storage, fans, conversion losses
    /// and cooling overhead the facility-level figure is ~0.30 kW.
    pub facility_kw_per_server: f64,
}

impl ServerEmbodied {
    /// The paper's defaults.
    pub fn paper_defaults() -> Self {
        Self {
            embodied_kg_per_server: 744.5,
            infrastructure_multiplier: 1.16,
            lifetime_years: 5.0,
            facility_kw_per_server: 0.30,
        }
    }

    /// Effective per-server footprint including infrastructure, kg.
    pub fn per_server_kg(&self) -> f64 {
        self.embodied_kg_per_server * self.infrastructure_multiplier
    }

    /// Number of servers behind `capacity_mw` of facility power capacity.
    pub fn servers_for_capacity(&self, capacity_mw: f64) -> f64 {
        if self.facility_kw_per_server <= 0.0 {
            return 0.0;
        }
        capacity_mw * 1000.0 / self.facility_kw_per_server
    }

    /// Embodied carbon (tons CO2) attributable to one year of owning
    /// `capacity_mw` worth of servers: manufacturing + infrastructure,
    /// amortized over the server lifetime.
    ///
    /// ```
    /// use ce_embodied::ServerEmbodied;
    /// let s = ServerEmbodied::paper_defaults();
    /// // More capacity, more embodied carbon.
    /// assert!(s.amortized_tons_per_year(10.0) > s.amortized_tons_per_year(5.0));
    /// ```
    pub fn amortized_tons_per_year(&self, capacity_mw: f64) -> f64 {
        let servers = self.servers_for_capacity(capacity_mw.max(0.0));
        servers * self.per_server_kg() / 1000.0 / self.lifetime_years
    }
}

impl Default for ServerEmbodied {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients() {
        let s = ServerEmbodied::paper_defaults();
        assert_eq!(s.embodied_kg_per_server, 744.5);
        assert_eq!(s.infrastructure_multiplier, 1.16);
        assert_eq!(s.lifetime_years, 5.0);
        assert!((s.per_server_kg() - 863.62).abs() < 1e-9);
    }

    #[test]
    fn server_count_for_capacity() {
        let s = ServerEmbodied::paper_defaults();
        // 19 MW at 0.3 kW/server ≈ 63,333 servers.
        let n = s.servers_for_capacity(19.0);
        assert!((63_000.0..64_000.0).contains(&n), "{n}");
    }

    #[test]
    fn amortized_carbon_is_linear_in_capacity() {
        let s = ServerEmbodied::paper_defaults();
        let one = s.amortized_tons_per_year(1.0);
        let ten = s.amortized_tons_per_year(10.0);
        assert!((ten - 10.0 * one).abs() < 1e-9);
        // 1 MW → 3333 servers × 863.62 kg / 5 y ≈ 576 t/y.
        assert!((500.0..700.0).contains(&one), "{one}");
    }

    #[test]
    fn negative_capacity_clamps_to_zero() {
        let s = ServerEmbodied::paper_defaults();
        assert_eq!(s.amortized_tons_per_year(-3.0), 0.0);
    }

    #[test]
    fn degenerate_power_per_server() {
        let s = ServerEmbodied {
            facility_kw_per_server: 0.0,
            ..ServerEmbodied::paper_defaults()
        };
        assert_eq!(s.servers_for_capacity(10.0), 0.0);
    }
}
