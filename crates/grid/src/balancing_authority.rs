//! The balancing authorities (BAs) serving Meta's US datacenters, plus
//! CISO (California) which the paper uses for Figures 1 and 4.
//!
//! Each BA carries a [`BaProfile`] — the parameter set that drives the
//! synthetic generation models so that every BA lands in the renewable
//! regime the paper reports for it (Section 3.2: "three offer primarily
//! wind energy (BPAT, MISO, SWPP), three offer primarily solar energy
//! (DUK, SOCO, TVA), and four offer a mix (ERCO, PACE, PJM, PNM)").

use serde::{Deserialize, Serialize};
use std::fmt;

/// The renewable-mix regime of a balancing authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RenewableRegime {
    /// Wind provides the large majority of variable renewable generation.
    MajorlyWind,
    /// Solar provides essentially all variable renewable generation.
    MajorlySolar,
    /// A complementary mix of wind and solar.
    Hybrid,
}

impl fmt::Display for RenewableRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RenewableRegime::MajorlyWind => "majorly wind",
            RenewableRegime::MajorlySolar => "majorly solar",
            RenewableRegime::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

/// A US balancing authority used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
#[non_exhaustive]
pub enum BalancingAuthority {
    /// Southwest Power Pool (Nebraska) — majorly wind.
    SWPP,
    /// Bonneville Power Administration (Oregon) — majorly wind, deep valleys.
    BPAT,
    /// PacifiCorp East (Utah) — hybrid.
    PACE,
    /// Public Service Company of New Mexico — hybrid.
    PNM,
    /// ERCOT (Texas) — hybrid.
    ERCO,
    /// PJM Interconnection (Illinois, Virginia, Ohio) — hybrid.
    PJM,
    /// Duke Energy (North Carolina) — majorly solar.
    DUK,
    /// Midcontinent ISO (Iowa) — majorly wind.
    MISO,
    /// Southern Company (Georgia) — majorly solar.
    SOCO,
    /// Tennessee Valley Authority (Tennessee, Alabama) — majorly solar.
    TVA,
    /// California ISO — hybrid; used for Figures 1 and 4.
    CISO,
}

/// Synthesis parameters for one balancing authority.
///
/// Capacities are the *installed grid* capacities (MW) of each source on the
/// BA's grid; coverage analysis rescales generation to arbitrary investment
/// levels, so only the ratios and the stochastic character matter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaProfile {
    /// Which regime this BA belongs to (drives reporting, not synthesis).
    pub regime: RenewableRegime,
    /// Site latitude in degrees (drives solar geometry and seasonality).
    pub latitude_deg: f64,
    /// Installed wind capacity on the grid, MW.
    pub wind_capacity_mw: f64,
    /// Installed solar capacity on the grid, MW.
    pub solar_capacity_mw: f64,
    /// Mean wind speed at hub height, m/s (sets the wind capacity factor).
    pub mean_wind_speed: f64,
    /// Amplitude of multi-day synoptic wind variation (0..1 of mean speed).
    /// High values create the near-zero "supply valley" days of BPAT.
    pub synoptic_amplitude: f64,
    /// Mean cloud attenuation (0 = always clear, 1 = always dark).
    pub cloudiness: f64,
    /// Flat baseload (hydro + nuclear) as a fraction of grid demand.
    pub baseload_fraction: f64,
    /// Of the non-renewable, non-baseload residual, the fraction served by
    /// coal (the rest is natural gas).
    pub coal_share: f64,
    /// Average total grid demand, MW (sets the scale of the fuel stack).
    pub grid_demand_mw: f64,
}

impl BalancingAuthority {
    /// All BAs used in the paper (including CISO).
    pub const ALL: [BalancingAuthority; 11] = [
        BalancingAuthority::SWPP,
        BalancingAuthority::BPAT,
        BalancingAuthority::PACE,
        BalancingAuthority::PNM,
        BalancingAuthority::ERCO,
        BalancingAuthority::PJM,
        BalancingAuthority::DUK,
        BalancingAuthority::MISO,
        BalancingAuthority::SOCO,
        BalancingAuthority::TVA,
        BalancingAuthority::CISO,
    ];

    /// The BA's ticker-style code as used by the EIA grid monitor.
    pub fn code(&self) -> &'static str {
        match self {
            BalancingAuthority::SWPP => "SWPP",
            BalancingAuthority::BPAT => "BPAT",
            BalancingAuthority::PACE => "PACE",
            BalancingAuthority::PNM => "PNM",
            BalancingAuthority::ERCO => "ERCO",
            BalancingAuthority::PJM => "PJM",
            BalancingAuthority::DUK => "DUK",
            BalancingAuthority::MISO => "MISO",
            BalancingAuthority::SOCO => "SOCO",
            BalancingAuthority::TVA => "TVA",
            BalancingAuthority::CISO => "CISO",
        }
    }

    /// The synthesis profile for this BA.
    ///
    /// Wind/solar capacity ratios and volatility parameters are chosen so
    /// the synthesized year reproduces the paper's Figure 5 regimes; see
    /// `DESIGN.md` for the calibration rationale.
    pub fn profile(&self) -> BaProfile {
        use RenewableRegime::*;
        match self {
            // --- Majorly wind ---------------------------------------------
            BalancingAuthority::BPAT => BaProfile {
                regime: MajorlyWind,
                latitude_deg: 45.6, // Columbia River basin
                wind_capacity_mw: 2700.0,
                solar_capacity_mw: 40.0,
                mean_wind_speed: 7.0,
                synoptic_amplitude: 0.58, // extreme day-to-day swings
                cloudiness: 0.45,         // Pacific Northwest overcast
                baseload_fraction: 0.55,  // hydro-heavy BA
                coal_share: 0.10,
                grid_demand_mw: 7000.0,
            },
            BalancingAuthority::MISO => BaProfile {
                regime: MajorlyWind,
                latitude_deg: 41.7, // Iowa
                wind_capacity_mw: 3200.0,
                solar_capacity_mw: 150.0,
                mean_wind_speed: 8.2,     // great-plains wind resource
                synoptic_amplitude: 0.48, // shallower valleys than BPAT
                cloudiness: 0.35,
                baseload_fraction: 0.25,
                coal_share: 0.45,
                grid_demand_mw: 9000.0,
            },
            BalancingAuthority::SWPP => BaProfile {
                regime: MajorlyWind,
                latitude_deg: 41.1, // Nebraska
                wind_capacity_mw: 3500.0,
                solar_capacity_mw: 80.0,
                mean_wind_speed: 8.5,     // best wind resource of the set
                synoptic_amplitude: 0.42, // shallow valleys ("best for siting")
                cloudiness: 0.32,
                baseload_fraction: 0.20,
                coal_share: 0.45,
                grid_demand_mw: 8000.0,
            },
            // --- Majorly solar --------------------------------------------
            BalancingAuthority::DUK => BaProfile {
                regime: MajorlySolar,
                latitude_deg: 35.3, // North Carolina
                wind_capacity_mw: 0.0,
                solar_capacity_mw: 2300.0,
                mean_wind_speed: 4.5,
                synoptic_amplitude: 0.5,
                cloudiness: 0.30,
                baseload_fraction: 0.45, // nuclear-heavy
                coal_share: 0.30,
                grid_demand_mw: 9000.0,
            },
            BalancingAuthority::SOCO => BaProfile {
                regime: MajorlySolar,
                latitude_deg: 33.6, // Georgia
                wind_capacity_mw: 0.0,
                solar_capacity_mw: 2000.0,
                mean_wind_speed: 4.0,
                synoptic_amplitude: 0.5,
                cloudiness: 0.33,
                baseload_fraction: 0.35,
                coal_share: 0.35,
                grid_demand_mw: 9500.0,
            },
            BalancingAuthority::TVA => BaProfile {
                regime: MajorlySolar,
                latitude_deg: 35.5, // Tennessee
                wind_capacity_mw: 0.0,
                solar_capacity_mw: 1500.0,
                mean_wind_speed: 4.0,
                synoptic_amplitude: 0.5,
                cloudiness: 0.36,
                baseload_fraction: 0.50, // hydro + nuclear
                coal_share: 0.35,
                grid_demand_mw: 9000.0,
            },
            // --- Hybrid ----------------------------------------------------
            BalancingAuthority::PACE => BaProfile {
                regime: Hybrid,
                latitude_deg: 40.4, // Utah
                wind_capacity_mw: 1500.0,
                solar_capacity_mw: 1700.0,
                mean_wind_speed: 7.6,
                synoptic_amplitude: 0.35,
                cloudiness: 0.18, // high-desert sun
                baseload_fraction: 0.15,
                coal_share: 0.60,
                grid_demand_mw: 7000.0,
            },
            BalancingAuthority::PNM => BaProfile {
                regime: Hybrid,
                latitude_deg: 34.8, // New Mexico
                wind_capacity_mw: 1200.0,
                solar_capacity_mw: 1400.0,
                mean_wind_speed: 7.0,
                synoptic_amplitude: 0.45,
                cloudiness: 0.15, // best solar resource of the set
                baseload_fraction: 0.20,
                coal_share: 0.40,
                grid_demand_mw: 2500.0,
            },
            BalancingAuthority::ERCO => BaProfile {
                regime: Hybrid,
                latitude_deg: 32.8, // Texas
                wind_capacity_mw: 3300.0,
                solar_capacity_mw: 2200.0,
                mean_wind_speed: 8.0,
                synoptic_amplitude: 0.40, // shallow valleys → good siting
                cloudiness: 0.25,
                baseload_fraction: 0.15,
                coal_share: 0.30,
                grid_demand_mw: 45000.0,
            },
            BalancingAuthority::PJM => BaProfile {
                regime: Hybrid,
                latitude_deg: 40.0, // mid-Atlantic
                wind_capacity_mw: 1700.0,
                solar_capacity_mw: 1700.0,
                mean_wind_speed: 6.5,
                synoptic_amplitude: 0.50,
                cloudiness: 0.38,
                baseload_fraction: 0.35,
                coal_share: 0.40,
                grid_demand_mw: 90000.0,
            },
            BalancingAuthority::CISO => BaProfile {
                regime: Hybrid,
                latitude_deg: 36.5, // central California
                wind_capacity_mw: 1800.0,
                solar_capacity_mw: 4500.0, // solar-rich duck-curve grid
                mean_wind_speed: 6.8,
                synoptic_amplitude: 0.45,
                cloudiness: 0.18,
                baseload_fraction: 0.25,
                coal_share: 0.02,
                grid_demand_mw: 26000.0,
            },
        }
    }

    /// The regime this BA belongs to.
    pub fn regime(&self) -> RenewableRegime {
        self.profile().regime
    }
}

impl fmt::Display for BalancingAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_match_paper_section_3_2() {
        use BalancingAuthority::*;
        use RenewableRegime::*;
        for ba in [BPAT, MISO, SWPP] {
            assert_eq!(ba.regime(), MajorlyWind, "{ba}");
        }
        for ba in [DUK, SOCO, TVA] {
            assert_eq!(ba.regime(), MajorlySolar, "{ba}");
        }
        for ba in [ERCO, PACE, PJM, PNM, CISO] {
            assert_eq!(ba.regime(), Hybrid, "{ba}");
        }
    }

    #[test]
    fn solar_only_regions_have_no_wind_capacity() {
        for ba in BalancingAuthority::ALL {
            let p = ba.profile();
            if p.regime == RenewableRegime::MajorlySolar {
                assert_eq!(p.wind_capacity_mw, 0.0, "{ba}");
            }
        }
    }

    #[test]
    fn wind_regions_dwarf_their_solar() {
        for ba in BalancingAuthority::ALL {
            let p = ba.profile();
            if p.regime == RenewableRegime::MajorlyWind {
                assert!(p.wind_capacity_mw > 10.0 * p.solar_capacity_mw, "{ba}");
            }
        }
    }

    #[test]
    fn bpat_has_the_deepest_valleys() {
        let bpat = BalancingAuthority::BPAT.profile();
        for ba in BalancingAuthority::ALL {
            if ba != BalancingAuthority::BPAT {
                assert!(bpat.synoptic_amplitude >= ba.profile().synoptic_amplitude);
            }
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = BalancingAuthority::ALL.iter().map(|b| b.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), BalancingAuthority::ALL.len());
    }

    #[test]
    fn profiles_are_physically_sane() {
        for ba in BalancingAuthority::ALL {
            let p = ba.profile();
            assert!((20.0..=60.0).contains(&p.latitude_deg), "{ba} latitude");
            assert!(p.mean_wind_speed >= 0.0 && p.mean_wind_speed < 15.0);
            assert!((0.0..=1.0).contains(&p.cloudiness));
            assert!((0.0..=1.0).contains(&p.synoptic_amplitude));
            assert!((0.0..=1.0).contains(&p.baseload_fraction));
            assert!((0.0..=1.0).contains(&p.coal_share));
            assert!(p.grid_demand_mw > 0.0);
        }
    }
}
