//! Hourly carbon intensity of a grid's generation mix.

use crate::fuel::FuelType;
use ce_timeseries::HourlySeries;

/// Computes the hourly carbon intensity (tons CO2eq per MWh) of a
/// generation mix: the generation-weighted average of each fuel's
/// lifecycle intensity (paper Table 2).
///
/// Hours with zero total generation report zero intensity.
///
/// # Panics
///
/// Panics if the fuel series are misaligned (they always are aligned when
/// produced by [`GridDataset`](crate::GridDataset)).
pub fn carbon_intensity_series(fuels: &[(FuelType, HourlySeries)]) -> HourlySeries {
    let (_, first) = fuels.first().expect("at least one fuel series");
    let len = first.len();
    let start = first.start();
    for (_, s) in fuels {
        first.check_aligned(s).expect("fuel series aligned");
    }
    HourlySeries::from_fn(start, len, |h| {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for (fuel, series) in fuels {
            let gen = series[h];
            weighted += gen * fuel.carbon_intensity_t_per_mwh();
            total += gen;
        }
        if total > 0.0 {
            weighted / total
        } else {
            0.0
        }
    })
}

/// Total operational carbon (tons CO2eq) of consuming `consumption` (MW,
/// hourly) from a grid whose intensity is `intensity` (t/MWh, hourly).
///
/// # Panics
///
/// Panics if the series are misaligned.
pub fn operational_carbon(consumption: &HourlySeries, intensity: &HourlySeries) -> f64 {
    consumption
        .zip_with(intensity, |c, i| c * i)
        .expect("consumption and intensity aligned")
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn pure_coal_hour_has_coal_intensity() {
        let fuels = vec![
            (
                FuelType::Coal,
                HourlySeries::from_values(start(), vec![10.0, 0.0]),
            ),
            (
                FuelType::Wind,
                HourlySeries::from_values(start(), vec![0.0, 10.0]),
            ),
        ];
        let intensity = carbon_intensity_series(&fuels);
        assert!((intensity[0] - 0.820).abs() < 1e-12);
        assert!((intensity[1] - 0.011).abs() < 1e-12);
    }

    #[test]
    fn mixed_hour_is_weighted_average() {
        let fuels = vec![
            (
                FuelType::Coal,
                HourlySeries::from_values(start(), vec![5.0]),
            ),
            (
                FuelType::Wind,
                HourlySeries::from_values(start(), vec![5.0]),
            ),
        ];
        let intensity = carbon_intensity_series(&fuels);
        assert!((intensity[0] - (0.820 + 0.011) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_generation_hour_is_zero() {
        let fuels = vec![(
            FuelType::NaturalGas,
            HourlySeries::from_values(start(), vec![0.0]),
        )];
        assert_eq!(carbon_intensity_series(&fuels)[0], 0.0);
    }

    #[test]
    fn operational_carbon_integrates() {
        let consumption = HourlySeries::from_values(start(), vec![10.0, 20.0]);
        let intensity = HourlySeries::from_values(start(), vec![0.5, 0.1]);
        // 10*0.5 + 20*0.1 = 7 tons.
        assert!((operational_carbon(&consumption, &intensity) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn operational_carbon_panics_on_misalignment() {
        let a = HourlySeries::zeros(start(), 2);
        let b = HourlySeries::zeros(start(), 3);
        operational_carbon(&a, &b);
    }
}
