//! Hourly carbon intensity of a grid's generation mix.

use crate::fuel::FuelType;
use ce_timeseries::{HourlySeries, TimeSeriesError};

/// Computes the hourly carbon intensity (tons CO2eq per MWh) of a
/// generation mix: the generation-weighted average of each fuel's
/// lifecycle intensity (paper Table 2).
///
/// Hours with zero total generation report zero intensity.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] for an empty fuel list and an
/// alignment error if the fuel series are misaligned (they always are
/// aligned when produced by [`GridDataset`](crate::GridDataset)).
pub fn carbon_intensity_series(
    fuels: &[(FuelType, HourlySeries)],
) -> Result<HourlySeries, TimeSeriesError> {
    let Some((_, first)) = fuels.first() else {
        return Err(TimeSeriesError::Empty);
    };
    let len = first.len();
    let start = first.start();
    for (_, s) in fuels {
        first.check_aligned(s)?;
    }
    Ok(HourlySeries::from_fn(start, len, |h| {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for (fuel, series) in fuels {
            let gen = series[h];
            weighted += gen * fuel.carbon_intensity_t_per_mwh();
            total += gen;
        }
        if total > 0.0 {
            weighted / total
        } else {
            0.0
        }
    }))
}

/// Total operational carbon (tons CO2eq) of consuming `consumption` (MW,
/// hourly) from a grid whose intensity is `intensity` (t/MWh, hourly).
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn operational_carbon(
    consumption: &HourlySeries,
    intensity: &HourlySeries,
) -> Result<f64, TimeSeriesError> {
    Ok(consumption.zip_with(intensity, |c, i| c * i)?.sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn pure_coal_hour_has_coal_intensity() {
        let fuels = vec![
            (
                FuelType::Coal,
                HourlySeries::from_values(start(), vec![10.0, 0.0]),
            ),
            (
                FuelType::Wind,
                HourlySeries::from_values(start(), vec![0.0, 10.0]),
            ),
        ];
        let intensity = carbon_intensity_series(&fuels).unwrap();
        assert!((intensity[0] - 0.820).abs() < 1e-12);
        assert!((intensity[1] - 0.011).abs() < 1e-12);
    }

    #[test]
    fn mixed_hour_is_weighted_average() {
        let fuels = vec![
            (
                FuelType::Coal,
                HourlySeries::from_values(start(), vec![5.0]),
            ),
            (
                FuelType::Wind,
                HourlySeries::from_values(start(), vec![5.0]),
            ),
        ];
        let intensity = carbon_intensity_series(&fuels).unwrap();
        assert!((intensity[0] - (0.820 + 0.011) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_generation_hour_is_zero() {
        let fuels = vec![(
            FuelType::NaturalGas,
            HourlySeries::from_values(start(), vec![0.0]),
        )];
        assert_eq!(carbon_intensity_series(&fuels).unwrap()[0], 0.0);
    }

    #[test]
    fn operational_carbon_integrates() {
        let consumption = HourlySeries::from_values(start(), vec![10.0, 20.0]);
        let intensity = HourlySeries::from_values(start(), vec![0.5, 0.1]);
        // 10*0.5 + 20*0.1 = 7 tons.
        let tons = operational_carbon(&consumption, &intensity).unwrap();
        assert!((tons - 7.0).abs() < 1e-12);
    }

    #[test]
    fn operational_carbon_rejects_misalignment() {
        let a = HourlySeries::zeros(start(), 2);
        let b = HourlySeries::zeros(start(), 3);
        assert!(operational_carbon(&a, &b).is_err());
    }

    #[test]
    fn empty_fuel_list_is_an_error() {
        assert!(carbon_intensity_series(&[]).is_err());
    }
}
