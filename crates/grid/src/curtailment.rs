//! Renewable curtailment: computing curtailed energy from supply/demand
//! series, and the historical California trend behind the paper's Figure 4.

use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// Hourly energy (MWh) that would be curtailed: renewable supply in excess
/// of demand.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn curtailed_energy(
    supply: &HourlySeries,
    demand: &HourlySeries,
) -> Result<HourlySeries, TimeSeriesError> {
    supply.zip_with(demand, |s, d| (s - d).max(0.0))
}

/// Fraction of renewable energy curtailed over the whole series (0 if there
/// is no supply).
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn curtailment_fraction(
    supply: &HourlySeries,
    demand: &HourlySeries,
) -> Result<f64, TimeSeriesError> {
    let total = supply.sum();
    if total <= 0.0 {
        return Ok(0.0);
    }
    Ok(curtailed_energy(supply, demand)?.sum() / total)
}

/// One year of the historical California curtailment record (Figure 4):
/// curtailed energy as a fraction of total renewable generation, split by
/// source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurtailmentRecord {
    /// Calendar year.
    pub year: i32,
    /// Solar curtailment / total renewable generation.
    pub solar_fraction: f64,
    /// Wind curtailment / total renewable generation.
    pub wind_fraction: f64,
}

impl CurtailmentRecord {
    /// Combined curtailment fraction.
    pub fn total_fraction(&self) -> f64 {
        self.solar_fraction + self.wind_fraction
    }
}

/// The modeled historical California curtailment trend for 2015–2021
/// (paper Figure 4): curtailment grows superlinearly with deployed
/// renewables, reaching ~6% of renewable generation by 2021, dominated by
/// solar (midday oversupply — the duck curve).
pub fn historical_ca_curtailment() -> Vec<CurtailmentRecord> {
    (2015..=2021)
        .map(|year| {
            let t = (year - 2014) as f64;
            // Calibrated so 2015 ≈ 0.6% and 2021 ≈ 6%, growth accelerating
            // with installed capacity, as the CAISO record shows.
            let total = 0.006 * t.powf(1.18);
            CurtailmentRecord {
                year,
                solar_fraction: total * 0.87,
                wind_fraction: total * 0.13,
            }
        })
        .collect()
}

/// Mechanistic counterpart to [`historical_ca_curtailment`]: simulates a
/// growing renewable buildout on a synthetic CISO-like grid and computes
/// curtailment directly from hourly supply vs demand, one record per
/// buildout level. `scales` are multipliers on the grid's installed
/// wind/solar capacity (e.g. `[0.5, 1.0, 1.5, 2.0]`).
///
/// This reproduces Figure 4's *mechanism* — curtailment grows
/// superlinearly with deployment because midday solar increasingly
/// overshoots demand — rather than its fitted trend line.
///
/// # Errors
///
/// Returns an alignment error if the grid's series are misaligned (they
/// never are when synthesized).
pub fn simulate_curtailment_growth(
    grid: &crate::synthesis::GridDataset,
    scales: &[f64],
) -> Result<Vec<(f64, f64)>, TimeSeriesError> {
    // Non-renewable baseload cannot back down below this fraction of
    // demand, so renewables above the remainder are curtailed.
    const MUST_RUN_FRACTION: f64 = 0.25;
    let absorable = grid.demand().scale(1.0 - MUST_RUN_FRACTION);
    scales
        .iter()
        .map(|&scale| {
            let supply = grid.wind().try_add(grid.solar())?.scale(scale);
            Ok((scale, curtailment_fraction(&supply, &absorable)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn curtailed_energy_clamps_at_zero() {
        let supply = HourlySeries::from_values(start(), vec![10.0, 5.0, 0.0]);
        let demand = HourlySeries::from_values(start(), vec![7.0, 8.0, 4.0]);
        let curtailed = curtailed_energy(&supply, &demand).unwrap();
        assert_eq!(curtailed.values(), &[3.0, 0.0, 0.0]);
    }

    #[test]
    fn curtailment_fraction_basics() {
        let supply = HourlySeries::from_values(start(), vec![10.0, 10.0]);
        let demand = HourlySeries::from_values(start(), vec![5.0, 15.0]);
        assert!((curtailment_fraction(&supply, &demand).unwrap() - 0.25).abs() < 1e-12);
        let none = HourlySeries::zeros(start(), 2);
        assert_eq!(curtailment_fraction(&none, &demand).unwrap(), 0.0);
    }

    #[test]
    fn historical_trend_is_monotonic_and_reaches_six_percent() {
        let records = historical_ca_curtailment();
        assert_eq!(records.len(), 7);
        assert_eq!(records[0].year, 2015);
        assert_eq!(records[6].year, 2021);
        for pair in records.windows(2) {
            assert!(pair[1].total_fraction() > pair[0].total_fraction());
        }
        let final_total = records[6].total_fraction();
        assert!(
            (0.05..0.07).contains(&final_total),
            "2021 curtailment {final_total}"
        );
        // Fig 4: solar dominates the curtailment record.
        for r in &records {
            assert!(r.solar_fraction > 3.0 * r.wind_fraction);
        }
    }

    #[test]
    fn early_years_are_under_one_percent() {
        let records = historical_ca_curtailment();
        assert!(records[0].total_fraction() < 0.01);
    }

    #[test]
    fn simulated_curtailment_grows_superlinearly_with_buildout() {
        let grid = crate::synthesis::GridDataset::synthesize(
            crate::balancing_authority::BalancingAuthority::CISO,
            2020,
            7,
        );
        let points = simulate_curtailment_growth(&grid, &[2.0, 4.0, 8.0, 16.0]).unwrap();
        assert_eq!(points.len(), 4);
        // Monotone growth...
        for pair in points.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-12);
        }
        // ...and accelerating: each doubling adds more curtailment share
        // than the previous one (the Figure 4 mechanism).
        let d1 = points[1].1 - points[0].1;
        let d2 = points[2].1 - points[1].1;
        assert!(d2 >= d1, "growth should accelerate: {points:?}");
        // Deep buildout curtails a large share of renewable generation.
        assert!(
            points[3].1 > 0.2,
            "16x buildout curtails {:.3}",
            points[3].1
        );
        // At today's deployment the grid absorbs essentially everything.
        assert!(points[0].1 < 0.01);
    }
}
