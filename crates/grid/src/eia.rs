//! EIA Hourly Grid Monitor interchange format.
//!
//! The paper's supply data comes from the EIA Hourly Grid Monitor. This
//! module reads and writes a CSV layout compatible with the monitor's
//! bulk download (one row per hour, one column per fuel), so users with
//! access to the real feeds can drop them in place of the synthetic
//! datasets — and synthetic datasets can be exported for inspection in
//! the same shape.
//!
//! ```text
//! period,Wind,Solar,Water,Nuclear,Natural Gas,Coal,Oil,Other
//! 2020-01-01 00:00,1432.0,0.0,2100.0,2100.0,801.5,170.2,0.0,64.1
//! ```

use crate::fuel::FuelType;
use crate::synthesis::GridDataset;
use ce_timeseries::{HourlySeries, TimeSeriesError, Timestamp};
use std::io::{BufRead, BufReader, Read, Write};

/// Writes a dataset's per-fuel generation in grid-monitor CSV layout.
///
/// # Errors
///
/// Returns an I/O error from the writer.
pub fn write_grid_csv<W: Write>(mut w: W, grid: &GridDataset) -> Result<(), TimeSeriesError> {
    write!(w, "period")?;
    for (fuel, _) in grid.fuels() {
        write!(w, ",{}", fuel.name())?;
    }
    writeln!(w)?;
    let hours = grid.demand().len();
    for h in 0..hours {
        write!(w, "{}", grid.demand().timestamp(h))?;
        for (_, series) in grid.fuels() {
            write!(w, ",{:.3}", series[h])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// A per-fuel generation table read back from grid-monitor CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCsv {
    /// The per-fuel hourly generation series, in file column order.
    pub fuels: Vec<(FuelType, HourlySeries)>,
}

impl GridCsv {
    /// Generation series for one fuel, if the file contained it.
    pub fn generation(&self, fuel: FuelType) -> Option<&HourlySeries> {
        self.fuels.iter().find(|(f, _)| *f == fuel).map(|(_, s)| s)
    }
}

/// Parses grid-monitor CSV. Column headers must be fuel display names
/// (as produced by [`FuelType::name`]); unknown columns are an error so
/// silently dropped data cannot skew an analysis. The `period` column is
/// not parsed — rows are assumed hourly from `start`.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Csv`] for malformed headers, unknown fuel
/// columns, ragged rows, or unparseable numbers.
pub fn read_grid_csv<R: Read>(r: R, start: Timestamp) -> Result<GridCsv, TimeSeriesError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines.next().ok_or(TimeSeriesError::Empty)??;
    let mut columns = header.split(',');
    let first = columns.next().unwrap_or_default();
    if first != "period" {
        return Err(TimeSeriesError::Csv {
            line: 1,
            message: format!("expected leading 'period' column, found {first:?}"),
        });
    }
    let mut fuels: Vec<FuelType> = Vec::new();
    for name in columns {
        let fuel = FuelType::ALL
            .iter()
            .find(|f| f.name() == name.trim())
            .copied()
            .ok_or_else(|| TimeSeriesError::Csv {
                line: 1,
                message: format!("unknown fuel column {name:?}"),
            })?;
        fuels.push(fuel);
    }
    if fuels.is_empty() {
        return Err(TimeSeriesError::Csv {
            line: 1,
            message: "no fuel columns".into(),
        });
    }

    let mut data: Vec<Vec<f64>> = vec![Vec::new(); fuels.len()];
    for (idx, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != fuels.len() + 1 {
            return Err(TimeSeriesError::Csv {
                line: idx + 2,
                message: format!(
                    "expected {} fields, found {}",
                    fuels.len() + 1,
                    fields.len()
                ),
            });
        }
        for (col, field) in fields[1..].iter().enumerate() {
            let value: f64 = field.trim().parse().map_err(|_| TimeSeriesError::Csv {
                line: idx + 2,
                message: format!("cannot parse {field:?} as a number"),
            })?;
            data[col].push(value);
        }
    }

    Ok(GridCsv {
        fuels: fuels
            .into_iter()
            .zip(data)
            .map(|(fuel, values)| (fuel, HourlySeries::from_values(start, values)))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancing_authority::BalancingAuthority;

    #[test]
    fn roundtrip_preserves_generation() {
        let grid = GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7);
        let mut buf = Vec::new();
        write_grid_csv(&mut buf, &grid).unwrap();
        let parsed = read_grid_csv(buf.as_slice(), Timestamp::start_of_year(2020)).unwrap();
        // Values roundtrip at the 1e-3 precision we wrote.
        let wind = parsed.generation(FuelType::Wind).expect("wind column");
        assert_eq!(wind.len(), grid.wind().len());
        for h in (0..wind.len()).step_by(977) {
            assert!((wind[h] - grid.wind()[h]).abs() < 5e-4);
        }
        let solar = parsed.generation(FuelType::Solar).expect("solar column");
        assert!((solar.sum() - grid.solar().sum()).abs() / grid.solar().sum().max(1.0) < 1e-3);
    }

    #[test]
    fn header_must_start_with_period() {
        let bad = "time,Wind\n2020-01-01 00:00,1.0\n";
        let err = read_grid_csv(bad.as_bytes(), Timestamp::start_of_year(2020)).unwrap_err();
        assert!(matches!(err, TimeSeriesError::Csv { line: 1, .. }));
    }

    #[test]
    fn unknown_fuel_columns_are_rejected() {
        let bad = "period,Wind,Fusion\n2020-01-01 00:00,1.0,2.0\n";
        let err = read_grid_csv(bad.as_bytes(), Timestamp::start_of_year(2020)).unwrap_err();
        assert!(err.to_string().contains("Fusion"));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let bad = "period,Wind,Solar\n2020-01-01 00:00,1.0\n";
        let err = read_grid_csv(bad.as_bytes(), Timestamp::start_of_year(2020)).unwrap_err();
        assert!(matches!(err, TimeSeriesError::Csv { line: 2, .. }));
    }

    #[test]
    fn missing_fuels_report_none() {
        let csv = "period,Wind\n2020-01-01 00:00,5.0\n";
        let parsed = read_grid_csv(csv.as_bytes(), Timestamp::start_of_year(2020)).unwrap();
        assert!(parsed.generation(FuelType::Wind).is_some());
        assert!(parsed.generation(FuelType::Coal).is_none());
    }

    #[test]
    fn no_fuel_columns_is_an_error() {
        let bad = "period\n2020-01-01 00:00\n";
        assert!(read_grid_csv(bad.as_bytes(), Timestamp::start_of_year(2020)).is_err());
    }
}
