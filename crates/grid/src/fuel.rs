//! Energy sources and their lifecycle carbon intensities (paper Table 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An electricity-generating fuel/source type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FuelType {
    /// Onshore wind turbines.
    Wind,
    /// Photovoltaic solar.
    Solar,
    /// Hydroelectric ("Water" in the paper's Table 2).
    Water,
    /// Nuclear fission.
    Nuclear,
    /// Natural-gas turbines.
    NaturalGas,
    /// Coal-fired steam plants.
    Coal,
    /// Petroleum.
    Oil,
    /// Biofuels and other miscellaneous sources.
    Other,
}

impl FuelType {
    /// All fuel types, in Table 2 order.
    pub const ALL: [FuelType; 8] = [
        FuelType::Wind,
        FuelType::Solar,
        FuelType::Water,
        FuelType::Nuclear,
        FuelType::NaturalGas,
        FuelType::Coal,
        FuelType::Oil,
        FuelType::Other,
    ];

    /// Lifecycle carbon intensity in gCO2eq/kWh (paper Table 2).
    ///
    /// ```
    /// use ce_grid::FuelType;
    /// assert_eq!(FuelType::Wind.carbon_intensity_g_per_kwh(), 11.0);
    /// assert_eq!(FuelType::Coal.carbon_intensity_g_per_kwh(), 820.0);
    /// ```
    pub fn carbon_intensity_g_per_kwh(&self) -> f64 {
        match self {
            FuelType::Wind => 11.0,
            FuelType::Solar => 41.0,
            FuelType::Water => 24.0,
            FuelType::Nuclear => 12.0,
            FuelType::NaturalGas => 490.0,
            FuelType::Coal => 820.0,
            FuelType::Oil => 650.0,
            FuelType::Other => 230.0,
        }
    }

    /// Same intensity expressed in metric tons of CO2eq per MWh.
    pub fn carbon_intensity_t_per_mwh(&self) -> f64 {
        // g/kWh == kg/MWh; divide by 1000 for tons/MWh.
        self.carbon_intensity_g_per_kwh() / 1000.0
    }

    /// `true` for the variable renewables datacenter operators invest in
    /// (wind and solar).
    pub fn is_variable_renewable(&self) -> bool {
        matches!(self, FuelType::Wind | FuelType::Solar)
    }

    /// `true` for sources the 24/7 Carbon-Free Energy Compact counts as
    /// carbon-free (wind, solar, hydro, nuclear).
    pub fn is_carbon_free(&self) -> bool {
        matches!(
            self,
            FuelType::Wind | FuelType::Solar | FuelType::Water | FuelType::Nuclear
        )
    }

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            FuelType::Wind => "Wind",
            FuelType::Solar => "Solar",
            FuelType::Water => "Water",
            FuelType::Nuclear => "Nuclear",
            FuelType::NaturalGas => "Natural Gas",
            FuelType::Coal => "Coal",
            FuelType::Oil => "Oil",
            FuelType::Other => "Other (Biofuels etc.)",
        }
    }
}

impl fmt::Display for FuelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let expected = [
            (FuelType::Wind, 11.0),
            (FuelType::Solar, 41.0),
            (FuelType::Water, 24.0),
            (FuelType::Nuclear, 12.0),
            (FuelType::NaturalGas, 490.0),
            (FuelType::Coal, 820.0),
            (FuelType::Oil, 650.0),
            (FuelType::Other, 230.0),
        ];
        for (fuel, intensity) in expected {
            assert_eq!(fuel.carbon_intensity_g_per_kwh(), intensity);
        }
    }

    #[test]
    fn unit_conversion() {
        assert!((FuelType::Coal.carbon_intensity_t_per_mwh() - 0.82).abs() < 1e-12);
    }

    #[test]
    fn classification() {
        assert!(FuelType::Wind.is_variable_renewable());
        assert!(FuelType::Solar.is_variable_renewable());
        assert!(!FuelType::Water.is_variable_renewable());
        assert!(FuelType::Nuclear.is_carbon_free());
        assert!(FuelType::Water.is_carbon_free());
        assert!(!FuelType::NaturalGas.is_carbon_free());
        assert!(!FuelType::Other.is_carbon_free());
    }

    #[test]
    fn all_covers_every_variant_once() {
        let mut names: Vec<&str> = FuelType::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn carbon_free_sources_are_low_intensity() {
        for fuel in FuelType::ALL {
            if fuel.is_carbon_free() {
                assert!(fuel.carbon_intensity_g_per_kwh() < 50.0);
            } else {
                assert!(fuel.carbon_intensity_g_per_kwh() >= 230.0);
            }
        }
    }
}
