//! Power-grid substrate: synthetic hourly generation data per balancing
//! authority, fuel carbon intensities, investment scaling, and curtailment.
//!
//! The paper drives Carbon Explorer with the EIA Hourly Grid Monitor's 2020
//! data for the ten balancing authorities (BAs) that serve Meta's US
//! datacenters. That data is not shippable, so this crate *synthesizes* it:
//! physically-motivated solar (solar geometry + AR(1) cloud cover) and wind
//! (two-timescale AR(1) wind speed through a turbine power curve) models are
//! parameterized per BA to reproduce the three regimes the paper's analysis
//! depends on:
//!
//! - **majorly wind** (BPAT, MISO, SWPP): large day-to-day swings, including
//!   near-zero days — the deep "supply valleys" that make Oregon hard;
//! - **majorly solar** (DUK, SOCO, TVA): generation only during daylight,
//!   capping 24/7 coverage near 50% no matter the investment;
//! - **hybrid** (ERCO, PACE, PJM, PNM, CISO): complementary wind and solar
//!   with shallower valleys.
//!
//! All synthesis is deterministic given a seed. See `DESIGN.md` at the
//! repository root for the full substitution rationale.
//!
//! # Example
//!
//! ```
//! use ce_grid::{BalancingAuthority, GridDataset};
//!
//! let grid = GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7);
//! // Scale the grid's wind profile to a 200 MW investment, per the paper's
//! // linear-scaling methodology.
//! let wind = grid.scaled_wind(200.0);
//! assert!(wind.max().unwrap() <= 200.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancing_authority;
pub mod carbon_intensity;
pub mod curtailment;
pub mod eia;
pub mod fuel;
pub mod pricing;
pub mod solar;
pub mod synthesis;
pub mod wind;

pub use balancing_authority::{BaProfile, BalancingAuthority};
pub use carbon_intensity::carbon_intensity_series;
pub use curtailment::{curtailed_energy, CurtailmentRecord};
pub use fuel::FuelType;
pub use pricing::PriceModel;
pub use synthesis::GridDataset;
