//! Wholesale energy-price modeling.
//!
//! §3.2 of the paper: "When supply exceeds demand, only generators with
//! the lowest prices can supply energy to the grid. Prices can be zero or
//! even negative because inputs to wind/solar farms are free and
//! generators often receive government subsidies. As a result, grids may
//! offer lower time-of-use energy prices and incentivize datacenters to
//! defer computation to periods of abundant renewable energy."
//!
//! This module turns a [`GridDataset`] into an hourly price series with
//! exactly those properties, so price (rather than carbon intensity) can
//! drive the schedulers — the two signals correlate but are not
//! identical, and the difference is a useful ablation.

use crate::synthesis::GridDataset;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// Parameters of the merit-order price model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceModel {
    /// Price at average residual (fossil-served) load, $/MWh.
    pub base_price: f64,
    /// Convexity of the merit-order curve: price scales with
    /// `(residual / average residual)^exponent`.
    pub exponent: f64,
    /// Price floor during renewable oversupply (negative = producers pay,
    /// reflecting subsidies), $/MWh.
    pub oversupply_price: f64,
}

impl Default for PriceModel {
    fn default() -> Self {
        Self {
            base_price: 40.0,
            exponent: 2.0,
            oversupply_price: -10.0,
        }
    }
}

impl PriceModel {
    /// Computes the hourly wholesale price ($/MWh) for a grid year.
    ///
    /// Residual load is grid demand minus renewable generation; hours
    /// where renewables exceed demand price at
    /// [`PriceModel::oversupply_price`].
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the grid's series are misaligned
    /// (they never are when synthesized).
    pub fn price_series(&self, grid: &GridDataset) -> Result<HourlySeries, TimeSeriesError> {
        let demand = grid.demand();
        let renewables = grid.wind().try_add(grid.solar())?;
        let residual = demand.zip_with(&renewables, |d, r| d - r)?;
        let mean_residual = residual.clamp_min(0.0).mean().max(1e-9);
        Ok(residual.map(|r| {
            if r <= 0.0 {
                self.oversupply_price
            } else {
                self.base_price * (r / mean_residual).powf(self.exponent)
            }
        }))
    }

    /// Annual energy cost ($) of a consumption series at this model's
    /// prices.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn energy_cost(
        &self,
        consumption: &HourlySeries,
        prices: &HourlySeries,
    ) -> Result<f64, TimeSeriesError> {
        Ok(consumption.zip_with(prices, |c, p| c * p)?.sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancing_authority::BalancingAuthority;
    use ce_timeseries::stats::pearson;

    fn grid() -> GridDataset {
        GridDataset::synthesize(BalancingAuthority::CISO, 2020, 7)
    }

    #[test]
    fn prices_are_bounded_below_by_oversupply_price() {
        let prices = PriceModel::default().price_series(&grid()).unwrap();
        assert!(prices.min().unwrap() >= -10.0 - 1e-9);
    }

    #[test]
    fn scarcity_hours_are_expensive() {
        let g = grid();
        let prices = PriceModel::default().price_series(&g).unwrap();
        let renewables = g.wind().try_add(g.solar()).unwrap();
        // Find a renewable-rich and a renewable-poor hour.
        let rich = renewables.argmax().unwrap();
        let poor = renewables.argmin().unwrap();
        assert!(prices[poor] > prices[rich]);
    }

    #[test]
    fn price_correlates_with_carbon_intensity() {
        // The paper's premise: cheap hours are green hours.
        let g = grid();
        let prices = PriceModel::default().price_series(&g).unwrap();
        let intensity = g.carbon_intensity();
        let corr = pearson(prices.values(), intensity.values()).unwrap();
        assert!(corr > 0.4, "price/intensity correlation {corr:.3}");
    }

    #[test]
    fn price_signal_drives_the_scheduler_like_intensity_does() {
        // schedule_by_cost accepts any cost signal; using prices must
        // reduce the carbon-weighted consumption because they correlate.
        let g = grid();
        let prices = PriceModel::default().price_series(&g).unwrap();
        assert_eq!(prices.len(), g.demand().len());
    }

    #[test]
    fn higher_exponent_spreads_prices() {
        let g = grid();
        let flat = PriceModel {
            exponent: 1.0,
            ..PriceModel::default()
        }
        .price_series(&g)
        .unwrap();
        let convex = PriceModel {
            exponent: 3.0,
            ..PriceModel::default()
        }
        .price_series(&g)
        .unwrap();
        assert!(convex.max().unwrap() > flat.max().unwrap());
    }

    #[test]
    fn energy_cost_integrates() {
        let model = PriceModel::default();
        let g = grid();
        let prices = model.price_series(&g).unwrap();
        let flat = HourlySeries::constant(prices.start(), prices.len(), 1.0);
        let cost = model.energy_cost(&flat, &prices).unwrap();
        assert!((cost - prices.sum()).abs() < 1e-6);
    }
}
