//! Physically-motivated synthetic solar generation.
//!
//! Output is driven by solar geometry — declination, hour angle, solar
//! elevation — so the synthesized series has the two properties the paper's
//! analysis needs with no tuning: generation is exactly zero at night
//! (capping solar-only 24/7 coverage near 50%) and summer days out-produce
//! winter days at US latitudes. An AR(1) cloud-attenuation process adds
//! realistic day-to-day variability.

use ce_timeseries::time::{days_in_year, hours_in_year, HOURS_PER_DAY};
use ce_timeseries::{HourlySeries, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic photovoltaic plant model.
#[derive(Debug, Clone, PartialEq)]
pub struct SolarModel {
    /// Nameplate capacity, MW.
    pub capacity_mw: f64,
    /// Site latitude, degrees north.
    pub latitude_deg: f64,
    /// Mean cloud attenuation in `[0, 1)`: 0 is permanently clear sky.
    pub cloudiness: f64,
}

/// Solar declination (radians) for a 1-based day of year (Cooper's formula).
pub fn declination_rad(day_of_year: u32) -> f64 {
    (23.45f64).to_radians()
        * (360.0 / 365.0 * (284.0 + day_of_year as f64))
            .to_radians()
            .sin()
}

/// Sine of the solar elevation angle at `hour` (0-23, solar time) on
/// `day_of_year` at `latitude_deg`. Negative values mean the sun is below
/// the horizon.
pub fn sin_elevation(latitude_deg: f64, day_of_year: u32, hour: f64) -> f64 {
    let lat = latitude_deg.to_radians();
    let decl = declination_rad(day_of_year);
    let hour_angle = (15.0 * (hour - 12.0)).to_radians();
    lat.sin() * decl.sin() + lat.cos() * decl.cos() * hour_angle.cos()
}

/// Clear-sky output fraction of nameplate capacity (0..1) given the sine of
/// the solar elevation. Includes a simple air-mass attenuation so output
/// rises steeply after sunrise, as real PV does.
pub fn clear_sky_fraction(sin_elev: f64) -> f64 {
    if sin_elev <= 0.0 {
        return 0.0;
    }
    // Kasten-Young-flavoured attenuation: transmission ~ 0.7^(AM^0.678).
    let air_mass = 1.0 / (sin_elev + 0.05);
    sin_elev * 0.7f64.powf(air_mass.powf(0.678)) / 0.7
}

impl SolarModel {
    /// Synthesizes a full year of hourly generation (MW), deterministically
    /// for a given `seed`.
    pub fn generate(&self, year: i32, seed: u64) -> HourlySeries {
        let hours = hours_in_year(year);
        let mut rng = StdRng::seed_from_u64(seed);
        let days = days_in_year(year);

        // Daily cloud state: AR(1) across days, so overcast spells span
        // consecutive days the way weather fronts do.
        let phi_day: f64 = 0.6;
        let norm = (1.0 - phi_day * phi_day).sqrt();
        let mut cloud_state = 0.0f64;
        let mut daily_cloud = Vec::with_capacity(days as usize);
        for _ in 0..days {
            let eps: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0); // ~triangular
            cloud_state = phi_day * cloud_state + norm * eps * 0.5;
            // Map state to attenuation centered on `cloudiness`. The
            // worst-case attenuation scales with the climate: a
            // high-desert site (low cloudiness) never loses a whole day
            // to overcast the way the Pacific Northwest does — this is
            // what lets sunny hybrid regions reach 100% coverage with a
            // night-sized battery, as the paper finds for NM/TX.
            let worst = (0.25 + 2.2 * self.cloudiness).min(0.95);
            let atten = (self.cloudiness + 0.5 * cloud_state).clamp(0.0, worst);
            daily_cloud.push(atten);
        }

        HourlySeries::from_fn(Timestamp::start_of_year(year), hours, |h| {
            let doy = (h / HOURS_PER_DAY) as u32 + 1;
            let hour = (h % HOURS_PER_DAY) as f64 + 0.5; // mid-hour sun position
            let clear = clear_sky_fraction(sin_elevation(self.latitude_deg, doy, hour));
            let atten = daily_cloud[(doy - 1) as usize];
            self.capacity_mw * clear * (1.0 - atten)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::resample::{average_day_profile, daily_totals};

    fn model() -> SolarModel {
        SolarModel {
            capacity_mw: 100.0,
            latitude_deg: 40.0,
            cloudiness: 0.2,
        }
    }

    #[test]
    fn declination_extremes_at_solstices() {
        // Summer solstice (~day 172) near +23.45°, winter (~day 355) near -23.45°.
        let summer = declination_rad(172).to_degrees();
        let winter = declination_rad(355).to_degrees();
        assert!((summer - 23.45).abs() < 0.5, "summer {summer}");
        assert!((winter + 23.45).abs() < 0.5, "winter {winter}");
    }

    #[test]
    fn sun_below_horizon_at_night() {
        assert!(sin_elevation(40.0, 172, 0.0) < 0.0);
        assert!(sin_elevation(40.0, 172, 12.0) > 0.8);
        assert_eq!(clear_sky_fraction(-0.5), 0.0);
    }

    #[test]
    fn generation_is_zero_at_night_and_positive_at_noon() {
        let series = model().generate(2020, 1);
        assert_eq!(series.len(), 8784);
        // Midnight on day 10 (hour 216) must be dark; noon (228) bright.
        assert_eq!(series[216], 0.0);
        let summer_noon = 171 * 24 + 12;
        assert!(series[summer_noon] > 20.0);
        // Never exceeds nameplate.
        assert!(series.max().unwrap() <= 100.0 + 1e-9);
        assert!(series.min().unwrap() >= 0.0);
    }

    #[test]
    fn summer_outproduces_winter() {
        let series = model().generate(2020, 1);
        let daily = daily_totals(&series);
        let june: f64 = daily[152..182].iter().sum();
        let december: f64 = daily[335..365].iter().sum();
        assert!(
            june > 1.5 * december,
            "june {june:.0} should far exceed december {december:.0}"
        );
    }

    #[test]
    fn average_day_is_bell_shaped_around_noon() {
        let series = model().generate(2020, 2);
        let profile = average_day_profile(&series);
        let noon = profile[12];
        assert!(noon > profile[8]);
        assert!(noon > profile[16]);
        assert_eq!(profile[0], 0.0);
        assert_eq!(profile[23], 0.0);
    }

    #[test]
    fn capacity_factor_is_realistic() {
        let series = model().generate(2020, 3);
        let cf = series.mean() / 100.0;
        assert!((0.08..0.35).contains(&cf), "capacity factor {cf}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = model().generate(2020, 42);
        let b = model().generate(2020, 42);
        assert_eq!(a, b);
        let c = model().generate(2020, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn cloudier_sites_produce_less() {
        let clear = SolarModel {
            cloudiness: 0.05,
            ..model()
        }
        .generate(2020, 7);
        let cloudy = SolarModel {
            cloudiness: 0.6,
            ..model()
        }
        .generate(2020, 7);
        assert!(clear.sum() > cloudy.sum());
    }

    #[test]
    fn day_to_day_totals_vary_with_clouds() {
        let series = model().generate(2020, 5);
        let daily = daily_totals(&series);
        let max = daily.iter().copied().fold(f64::MIN, f64::max);
        let min = daily.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 1.3 * min.max(1.0), "daily variation too small");
    }
}
