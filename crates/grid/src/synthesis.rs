//! Assembling a full synthetic grid year: renewables plus the conventional
//! fuel stack, per balancing authority.

use crate::balancing_authority::BalancingAuthority;
use crate::carbon_intensity::carbon_intensity_series;
use crate::fuel::FuelType;
use crate::solar::SolarModel;
use crate::wind::WindModel;
use ce_timeseries::time::hours_in_year;
use ce_timeseries::{kernels, HourlySeries, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One year of synthetic hourly grid operating data for a balancing
/// authority — the stand-in for the EIA Hourly Grid Monitor feed.
///
/// Holds per-fuel generation series; renewables can be rescaled to
/// arbitrary investment levels with [`GridDataset::scaled_wind`] /
/// [`GridDataset::scaled_solar`], implementing the paper's methodology:
/// "It takes the maximum generated solar and wind power throughout the year
/// as the maximum capacity of the local grid. Then, the hourly generation
/// data is linearly scaled to the desired renewable investment capacity."
#[derive(Debug, Clone, PartialEq)]
pub struct GridDataset {
    ba: BalancingAuthority,
    year: i32,
    seed: u64,
    fuels: Vec<(FuelType, HourlySeries)>,
    demand: HourlySeries,
}

impl GridDataset {
    /// Synthesizes a year of grid data for `ba`, deterministically in
    /// `seed`.
    pub fn synthesize(ba: BalancingAuthority, year: i32, seed: u64) -> Self {
        let profile = ba.profile();
        let hours = hours_in_year(year);
        let start = Timestamp::start_of_year(year);

        // Derive independent streams per component so changing one model
        // does not perturb the others.
        let base = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(ba.code().bytes().map(u64::from).sum::<u64>());

        let solar = SolarModel {
            capacity_mw: profile.solar_capacity_mw,
            latitude_deg: profile.latitude_deg,
            cloudiness: profile.cloudiness,
        }
        .generate(year, base ^ SOLAR_STREAM);

        let wind = WindModel {
            capacity_mw: profile.wind_capacity_mw,
            mean_speed: profile.mean_wind_speed,
            synoptic_amplitude: profile.synoptic_amplitude,
        }
        .generate(year, base ^ WIND_STREAM);

        // Grid demand: diurnal double-peak plus noise.
        let mut rng = StdRng::seed_from_u64(base ^ 0xDE44);
        let demand = HourlySeries::from_fn(start, hours, |h| {
            let hod = (h % 24) as f64;
            let diurnal = 0.08 * ((hod - 18.0) / 24.0 * std::f64::consts::TAU).cos()
                + 0.04 * ((hod - 8.0) / 12.0 * std::f64::consts::TAU).cos();
            let noise: f64 = rng.gen_range(-0.02..0.02);
            profile.grid_demand_mw * (1.0 + diurnal + noise)
        });

        // Conventional stack fills demand net of renewables.
        let baseload_total = &demand * profile.baseload_fraction;
        let water = &baseload_total * 0.5;
        let nuclear = &baseload_total * 0.5;
        let renewables = (&wind + &solar).clamp_min(0.0);
        // All three series share the demand clock, so zip the raw values
        // directly instead of round-tripping through fallible alignment.
        let residual = HourlySeries::from_values(
            demand.start(),
            demand
                .values()
                .iter()
                .zip(baseload_total.values())
                .zip(renewables.values())
                .map(|((d, b), g)| (d - b - g).max(0.0))
                .collect(),
        );
        let coal = &residual * profile.coal_share;
        let gas = &residual * ((1.0 - profile.coal_share) * 0.92);
        let other = &residual * ((1.0 - profile.coal_share) * 0.08);

        let fuels = vec![
            (FuelType::Wind, wind),
            (FuelType::Solar, solar),
            (FuelType::Water, water),
            (FuelType::Nuclear, nuclear),
            (FuelType::NaturalGas, gas),
            (FuelType::Coal, coal),
            (FuelType::Other, other),
        ];
        Self {
            ba,
            year,
            seed,
            fuels,
            demand,
        }
    }

    /// The balancing authority this dataset describes.
    pub fn ba(&self) -> BalancingAuthority {
        self.ba
    }

    /// The calendar year synthesized.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The seed of the synthetic weather streams. Together with
    /// [`GridDataset::ba`] and [`GridDataset::year`] it reconstructs this
    /// dataset exactly — one seed is one synthetic weather year.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The dataset's canonical lineage spelling,
    /// `ba=<code>;year=<year>;seed=<seed>;` — the input-key fragment
    /// provenance manifests hash to identify the grid a result came from.
    pub fn lineage_key(&self) -> String {
        format!(
            "ba={};year={};seed={};",
            self.ba.code(),
            self.year,
            self.seed
        )
    }

    /// Hourly generation for one fuel, if present on this grid.
    pub fn generation(&self, fuel: FuelType) -> Option<&HourlySeries> {
        self.fuels.iter().find(|(f, _)| *f == fuel).map(|(_, s)| s)
    }

    /// Hourly grid wind generation at installed capacity.
    ///
    /// # Panics
    ///
    /// Never panics: every synthesized dataset contains a wind series
    /// (possibly all-zero).
    pub fn wind(&self) -> &HourlySeries {
        self.generation(FuelType::Wind)
            .expect("wind always present")
    }

    /// Hourly grid solar generation at installed capacity.
    pub fn solar(&self) -> &HourlySeries {
        self.generation(FuelType::Solar)
            .expect("solar always present")
    }

    /// Hourly grid demand, MW.
    pub fn demand(&self) -> &HourlySeries {
        &self.demand
    }

    /// All per-fuel generation series.
    pub fn fuels(&self) -> &[(FuelType, HourlySeries)] {
        &self.fuels
    }

    /// Total hourly generation across all fuels.
    pub fn total_generation(&self) -> HourlySeries {
        let mut total = HourlySeries::zeros(self.demand.start(), self.demand.len());
        for (_, series) in &self.fuels {
            total = total.try_add(series).expect("fuel series aligned");
        }
        total
    }

    /// Hourly carbon intensity of the grid mix, tons CO2eq per MWh.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's fuel series are misaligned — impossible
    /// for synthesized datasets, which build every fuel on one clock.
    pub fn carbon_intensity(&self) -> HourlySeries {
        carbon_intensity_series(&self.fuels).expect("fuel series aligned by construction")
    }

    /// Wind generation linearly rescaled to an investment of
    /// `investment_mw`, per the paper's methodology (max observed grid
    /// generation ≙ installed grid capacity). Returns zeros if this grid
    /// has no wind.
    pub fn scaled_wind(&self, investment_mw: f64) -> HourlySeries {
        scale_to_investment(self.wind(), investment_mw)
    }

    /// Solar generation linearly rescaled to an investment of
    /// `investment_mw`. Returns zeros if this grid has no solar.
    pub fn scaled_solar(&self, investment_mw: f64) -> HourlySeries {
        scale_to_investment(self.solar(), investment_mw)
    }

    /// Combined renewable supply for a (solar, wind) investment pair.
    pub fn scaled_renewables(&self, solar_mw: f64, wind_mw: f64) -> HourlySeries {
        let mut out = HourlySeries::zeros(self.solar().start(), self.solar().len());
        self.scaled_renewables_into(solar_mw, wind_mw, &mut out);
        out
    }

    /// The per-series multipliers a (solar, wind) investment pair implies:
    /// `investment / max_observed_generation`, or `0.0` when the
    /// investment is non-positive or the grid lacks that source. Scaling
    /// by these factors is exactly [`GridDataset::scaled_renewables`].
    pub fn renewable_scale_factors(&self, solar_mw: f64, wind_mw: f64) -> (f64, f64) {
        (
            scale_factor(self.solar(), solar_mw),
            scale_factor(self.wind(), wind_mw),
        )
    }

    /// Writes the combined renewable supply for a (solar, wind) investment
    /// pair into `out`, reusing its allocation. `out` is re-created only
    /// if it is misaligned with this grid's series (e.g. freshly
    /// constructed), so sweep loops that reuse one buffer per thread pay
    /// zero allocations per design point.
    pub fn scaled_renewables_into(&self, solar_mw: f64, wind_mw: f64, out: &mut HourlySeries) {
        let solar = self.solar();
        if out.check_aligned(solar).is_err() {
            // ce:allow(hot-path-transitive-alloc, reason = "scratch realignment: allocates only when the caller's buffer is misshapen, never in steady state")
            *out = HourlySeries::zeros(solar.start(), solar.len());
        }
        let (fs, fw) = self.renewable_scale_factors(solar_mw, wind_mw);
        kernels::scaled_sum_into(
            solar.values(),
            fs,
            self.wind().values(),
            fw,
            out.values_mut(),
        );
    }
}

/// The multiplier [`scale_to_investment`] applies: `investment / max`, or
/// `0.0` for a non-positive investment or an all-zero series.
fn scale_factor(series: &HourlySeries, investment_mw: f64) -> f64 {
    let max = series.max().unwrap_or(0.0);
    if max <= 0.0 || investment_mw <= 0.0 {
        0.0
    } else {
        investment_mw / max
    }
}

/// Linearly rescales a generation series so its observed maximum equals
/// `investment_mw` (zero investment or an all-zero series yields zeros).
pub fn scale_to_investment(series: &HourlySeries, investment_mw: f64) -> HourlySeries {
    let max = series.max().unwrap_or(0.0);
    if max <= 0.0 || investment_mw <= 0.0 {
        return HourlySeries::zeros(series.start(), series.len());
    }
    series.scale(investment_mw / max)
}

/// Seed-stream tag for the solar component.
const SOLAR_STREAM: u64 = 0x501A;
/// Seed-stream tag for the wind component.
const WIND_STREAM: u64 = 0x714D;

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::resample::average_day_profile;

    fn pace() -> GridDataset {
        GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = GridDataset::synthesize(BalancingAuthority::BPAT, 2020, 7);
        let b = GridDataset::synthesize(BalancingAuthority::BPAT, 2020, 7);
        assert_eq!(a, b);
        let c = GridDataset::synthesize(BalancingAuthority::BPAT, 2020, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn solar_only_regions_have_zero_wind() {
        let duk = GridDataset::synthesize(BalancingAuthority::DUK, 2020, 7);
        assert_eq!(duk.wind().sum(), 0.0);
        assert!(duk.solar().sum() > 0.0);
    }

    #[test]
    fn wind_regions_are_wind_dominated() {
        let bpat = GridDataset::synthesize(BalancingAuthority::BPAT, 2020, 7);
        assert!(bpat.wind().sum() > 10.0 * bpat.solar().sum());
    }

    #[test]
    fn hybrid_regions_have_both() {
        let g = pace();
        assert!(g.wind().sum() > 0.0);
        assert!(g.solar().sum() > 0.0);
        let ratio = g.wind().sum() / g.solar().sum();
        assert!((0.2..5.0).contains(&ratio), "hybrid ratio {ratio}");
    }

    #[test]
    fn total_generation_serves_demand_net_of_surplus() {
        let g = pace();
        let total = g.total_generation();
        // Generation ≈ demand except in surplus-renewable hours where it
        // can exceed demand (curtailment handled downstream).
        for i in (0..total.len()).step_by(97) {
            assert!(
                total[i] >= g.demand()[i] * 0.9 - 1e-6,
                "hour {i}: generation {} far below demand {}",
                total[i],
                g.demand()[i]
            );
        }
    }

    #[test]
    fn scaling_hits_requested_investment() {
        let g = pace();
        let scaled = g.scaled_wind(250.0);
        let max = scaled.max().unwrap();
        assert!((max - 250.0).abs() < 1e-9, "max {max}");
        // Zero investment yields a zero series.
        assert_eq!(g.scaled_wind(0.0).sum(), 0.0);
        // Scaling preserves shape: correlation with the original is 1.
        let corr = ce_timeseries::stats::pearson(g.wind().values(), scaled.values()).unwrap();
        assert!((corr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_a_zero_series_is_zero() {
        let duk = GridDataset::synthesize(BalancingAuthority::DUK, 2020, 7);
        assert_eq!(duk.scaled_wind(500.0).sum(), 0.0);
    }

    #[test]
    fn carbon_intensity_is_bounded_by_fuel_extremes() {
        let g = pace();
        let intensity = g.carbon_intensity();
        assert!(intensity.min().unwrap() >= 0.0);
        assert!(intensity.max().unwrap() <= FuelType::Coal.carbon_intensity_t_per_mwh() + 1e-9);
        assert!(intensity.mean() > 0.0);
    }

    #[test]
    fn carbon_intensity_drops_when_renewables_peak() {
        let g = GridDataset::synthesize(BalancingAuthority::CISO, 2020, 7);
        let intensity_profile = average_day_profile(&g.carbon_intensity());
        // Solar-rich CISO: midday intensity below midnight intensity.
        assert!(intensity_profile[13] < intensity_profile[0]);
    }

    #[test]
    fn demand_has_diurnal_structure() {
        let g = pace();
        let profile = average_day_profile(g.demand());
        let max = profile.iter().copied().fold(f64::MIN, f64::max);
        let min = profile.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > min);
        assert!((max - min) / max < 0.35, "grid demand swing plausible");
    }

    #[test]
    fn scaled_renewables_combines_sources() {
        let g = pace();
        let combined = g.scaled_renewables(100.0, 100.0);
        let apart = &g.scaled_solar(100.0) + &g.scaled_wind(100.0);
        assert_eq!(combined, apart);
    }
}
