//! Synthetic wind generation: a two-timescale AR(1) wind-speed process
//! through a standard turbine power curve.
//!
//! The slow (synoptic, ~3-day) component models weather fronts and is what
//! produces the multi-day near-zero "supply valleys" the paper highlights
//! for Oregon/BPAT; the fast (~6-hour) component adds hourly texture. The
//! cubic region of the power curve amplifies speed variance into the heavy
//! day-to-day generation variance visible in Figure 5's histograms.

use ce_timeseries::time::hours_in_year;
use ce_timeseries::{HourlySeries, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Geographic-diversity floor: a balancing authority aggregates farms
/// spread over hundreds of kilometres, so BA-level generation almost never
/// reaches exactly zero even when the regional average speed is becalmed —
/// somewhere, some turbines are spinning. This floor (0.2% of nameplate)
/// is what makes very high coverage targets *expensively finite* rather
/// than impossible, matching the long-but-finite tail of the paper's
/// Figure 8.
pub const DIVERSITY_FLOOR: f64 = 0.002;

/// Turbine cut-in speed, m/s: below this the rotor does not turn.
pub const CUT_IN_SPEED: f64 = 3.0;
/// Rated speed, m/s: output saturates at nameplate above this.
pub const RATED_SPEED: f64 = 12.0;
/// Cut-out speed, m/s: turbines feather and stop to protect themselves.
pub const CUT_OUT_SPEED: f64 = 25.0;

/// Synthetic wind-farm model.
#[derive(Debug, Clone, PartialEq)]
pub struct WindModel {
    /// Nameplate capacity, MW.
    pub capacity_mw: f64,
    /// Long-run mean wind speed at hub height, m/s.
    pub mean_speed: f64,
    /// Relative amplitude of the synoptic (multi-day) speed component.
    /// At 0.85 (BPAT) the speed regularly collapses below cut-in for whole
    /// days; at 0.45 (ERCO) valleys are shallow.
    pub synoptic_amplitude: f64,
}

/// Fraction of nameplate output at wind speed `v` (standard power curve).
///
/// ```
/// use ce_grid::wind::power_curve_fraction;
/// assert_eq!(power_curve_fraction(2.0), 0.0);   // below cut-in
/// assert_eq!(power_curve_fraction(12.0), 1.0);  // rated
/// assert_eq!(power_curve_fraction(30.0), 0.0);  // cut-out
/// ```
pub fn power_curve_fraction(v: f64) -> f64 {
    if !(CUT_IN_SPEED..CUT_OUT_SPEED).contains(&v) {
        0.0
    } else if v >= RATED_SPEED {
        1.0
    } else {
        let num = v.powi(3) - CUT_IN_SPEED.powi(3);
        let den = RATED_SPEED.powi(3) - CUT_IN_SPEED.powi(3);
        num / den
    }
}

impl WindModel {
    /// Synthesizes a full year of hourly generation (MW), deterministically
    /// for a given `seed`.
    pub fn generate(&self, year: i32, seed: u64) -> HourlySeries {
        let hours = hours_in_year(year);
        let mut rng = StdRng::seed_from_u64(seed);

        // Two AR(1) components with unit stationary variance.
        let phi_slow = (-1.0f64 / 48.0).exp(); // ~2-day correlation time
        let phi_fast = (-1.0f64 / 6.0).exp(); // ~6-hour correlation time
        let norm_slow = (1.0 - phi_slow * phi_slow).sqrt();
        let norm_fast = (1.0 - phi_fast * phi_fast).sqrt();
        let mut slow = 0.0f64;
        let mut fast = 0.0f64;

        let mut speeds = Vec::with_capacity(hours);
        for h in 0..hours {
            let eps_s: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            let eps_f: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            slow = phi_slow * slow + norm_slow * eps_s * 1.2;
            fast = phi_fast * fast + norm_fast * eps_f * 1.2;
            // Mild seasonal boost (winter windier than summer in the US).
            let season = 0.12 * (2.0 * std::f64::consts::PI * h as f64 / hours as f64).cos();
            // The synoptic component is multiplicative (lognormal-like):
            // regional wind speed distributions are right-skewed, with a
            // compressed low tail — whole becalmed days are rare events,
            // not a fat fraction of the year.
            let speed = self.mean_speed
                * (self.synoptic_amplitude * 0.7 * slow).exp()
                * (1.0 + 0.15 * fast + season);
            speeds.push(speed.max(0.0));
        }

        HourlySeries::from_fn(Timestamp::start_of_year(year), hours, |h| {
            let frac = DIVERSITY_FLOOR + (1.0 - DIVERSITY_FLOOR) * power_curve_fraction(speeds[h]);
            self.capacity_mw * frac
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::resample::daily_means;
    use ce_timeseries::stats::coefficient_of_variation;

    fn bpat_like() -> WindModel {
        WindModel {
            capacity_mw: 100.0,
            mean_speed: 7.0,
            synoptic_amplitude: 0.85,
        }
    }

    fn swpp_like() -> WindModel {
        WindModel {
            capacity_mw: 100.0,
            mean_speed: 8.5,
            synoptic_amplitude: 0.50,
        }
    }

    #[test]
    fn power_curve_shape() {
        assert_eq!(power_curve_fraction(0.0), 0.0);
        assert_eq!(power_curve_fraction(2.9), 0.0);
        assert!(power_curve_fraction(6.0) > 0.0);
        assert!(power_curve_fraction(6.0) < power_curve_fraction(9.0));
        assert_eq!(power_curve_fraction(15.0), 1.0);
        assert_eq!(power_curve_fraction(24.9), 1.0);
        assert_eq!(power_curve_fraction(25.0), 0.0);
    }

    #[test]
    fn power_curve_is_monotone_below_rated() {
        let mut prev = 0.0;
        let mut v = CUT_IN_SPEED;
        while v <= RATED_SPEED {
            let p = power_curve_fraction(v);
            assert!(p >= prev);
            prev = p;
            v += 0.1;
        }
    }

    #[test]
    fn generation_respects_nameplate() {
        let series = bpat_like().generate(2020, 1);
        assert_eq!(series.len(), 8784);
        assert!(series.min().unwrap() >= 0.0);
        assert!(series.max().unwrap() <= 100.0 + 1e-9);
    }

    #[test]
    fn capacity_factor_is_realistic() {
        let cf = swpp_like().generate(2020, 2).mean() / 100.0;
        assert!((0.25..0.60).contains(&cf), "capacity factor {cf}");
    }

    #[test]
    fn high_synoptic_amplitude_creates_near_zero_days() {
        let series = bpat_like().generate(2020, 3);
        let daily = daily_means(&series);
        let calm_days = daily.iter().filter(|&&d| d < 2.0).count();
        assert!(
            calm_days >= 5,
            "expected whole near-zero days in a BPAT-like year, found {calm_days}"
        );
    }

    #[test]
    fn valleys_are_shallower_in_steady_wind_regions() {
        // Compare day-to-day variability of BPAT-like vs SWPP-like regions.
        let volatile = daily_means(&bpat_like().generate(2020, 4));
        let steady = daily_means(&swpp_like().generate(2020, 4));
        let cv_volatile = coefficient_of_variation(&volatile);
        let cv_steady = coefficient_of_variation(&steady);
        assert!(
            cv_volatile > cv_steady,
            "volatile {cv_volatile:.3} should exceed steady {cv_steady:.3}"
        );
    }

    #[test]
    fn wind_blows_at_night() {
        // Unlike solar, a meaningful share of wind energy arrives at night —
        // this is what lets wind regions exceed ~50% coverage.
        let series = swpp_like().generate(2020, 5);
        let night_energy: f64 = series
            .values()
            .iter()
            .enumerate()
            .filter(|(h, _)| matches!(h % 24, 0..=5 | 22..=23))
            .map(|(_, &v)| v)
            .sum();
        assert!(night_energy > 0.2 * series.sum());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = bpat_like().generate(2020, 42);
        let b = bpat_like().generate(2020, 42);
        assert_eq!(a, b);
        assert_ne!(a, bpat_like().generate(2020, 43));
    }
}
