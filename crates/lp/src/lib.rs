//! A dense two-phase primal simplex solver.
//!
//! Carbon Explorer's reference implementation leans on off-the-shelf LP
//! tooling for optimal-dispatch baselines; the Rust ecosystem's equivalent
//! is thin, so this crate implements a small, dependency-free solver that is
//! more than adequate for the day-scale scheduling and battery-dispatch
//! problems the framework poses (tens of variables, tens of constraints).
//!
//! The solver handles:
//!
//! - minimization and maximization objectives,
//! - `<=`, `>=`, and `=` constraints with arbitrary-sign right-hand sides,
//! - per-variable upper bounds (variables are non-negative by convention),
//! - infeasibility and unboundedness detection,
//! - Bland's anti-cycling pivot rule.
//!
//! # Example
//!
//! ```
//! use ce_lp::{LinearProgram, Relation};
//!
//! // maximize 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18
//! let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
//! lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
//! lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
//! lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
//! let solution = lp.solve().expect("bounded and feasible");
//! assert!((solution.objective() - 36.0).abs() < 1e-9);
//! assert!((solution.value(0) - 2.0).abs() < 1e-9);
//! assert!((solution.value(1) - 6.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;
mod solution;

pub use problem::{LinearProgram, LpError, Relation};
pub use solution::Solution;
