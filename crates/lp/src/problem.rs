//! Problem construction: objective, constraints, bounds.

use crate::simplex;
use crate::solution::Solution;
use std::fmt;

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a · x <= b`
    Le,
    /// `a · x >= b`
    Ge,
    /// `a · x == b`
    Eq,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sense {
    Minimize,
    Maximize,
}

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// A constraint's coefficient vector did not match the variable count.
    DimensionMismatch {
        /// Expected number of coefficients (the variable count).
        expected: usize,
        /// Number of coefficients supplied.
        found: usize,
    },
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The pivot-count safety limit was exceeded (numerical trouble).
    IterationLimit,
    /// A variable index was out of range.
    BadVariable {
        /// The offending index.
        index: usize,
        /// The variable count.
        n_vars: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "constraint has {found} coefficients, expected {expected}"
                )
            }
            Self::Infeasible => write!(f, "problem is infeasible"),
            Self::Unbounded => write!(f, "objective is unbounded"),
            Self::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            Self::BadVariable { index, n_vars } => {
                write!(
                    f,
                    "variable index {index} out of range for {n_vars} variables"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}

/// A linear program over non-negative variables.
///
/// Variables are indexed `0..n_vars` and constrained to `x_i >= 0`; optional
/// per-variable upper bounds can be added with
/// [`LinearProgram::set_upper_bound`]. See the [crate docs](crate) for a
/// worked example.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) sense: Sense,
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Vec<f64>>,
    pub(crate) relations: Vec<Relation>,
    pub(crate) rhs: Vec<f64>,
    pub(crate) upper_bounds: Vec<Option<f64>>,
}

impl LinearProgram {
    fn new(sense: Sense, objective: Vec<f64>) -> Self {
        let n = objective.len();
        Self {
            sense,
            objective,
            rows: Vec::new(),
            relations: Vec::new(),
            rhs: Vec::new(),
            upper_bounds: vec![None; n],
        }
    }

    /// Creates a minimization problem with the given objective coefficients
    /// (one per variable).
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self::new(Sense::Minimize, objective)
    }

    /// Creates a maximization problem with the given objective coefficients.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self::new(Sense::Maximize, objective)
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of explicit constraints (not counting upper bounds).
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `coefficients · x  <relation>  rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len() != self.n_vars()`; use
    /// [`LinearProgram::try_add_constraint`] for a checked version.
    pub fn add_constraint(&mut self, coefficients: Vec<f64>, relation: Relation, rhs: f64) {
        self.try_add_constraint(coefficients, relation, rhs)
            .expect("constraint dimension matches variable count");
    }

    /// Checked form of [`LinearProgram::add_constraint`].
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] if the coefficient count is
    /// wrong.
    pub fn try_add_constraint(
        &mut self,
        coefficients: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        if coefficients.len() != self.n_vars() {
            return Err(LpError::DimensionMismatch {
                expected: self.n_vars(),
                found: coefficients.len(),
            });
        }
        self.rows.push(coefficients);
        self.relations.push(relation);
        self.rhs.push(rhs);
        Ok(())
    }

    /// Constrains variable `var` to `x_var <= bound`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::BadVariable`] if `var` is out of range.
    pub fn set_upper_bound(&mut self, var: usize, bound: f64) -> Result<(), LpError> {
        if var >= self.n_vars() {
            return Err(LpError::BadVariable {
                index: var,
                n_vars: self.n_vars(),
            });
        }
        self.upper_bounds[var] = Some(bound);
        Ok(())
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// - [`LpError::Infeasible`] if no point satisfies the constraints,
    /// - [`LpError::Unbounded`] if the objective improves without bound,
    /// - [`LpError::IterationLimit`] on pathological numerical behaviour.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_dimensions() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
        assert_eq!(lp.n_vars(), 3);
        lp.add_constraint(vec![1.0, 0.0, 0.0], Relation::Ge, 1.0);
        assert_eq!(lp.n_constraints(), 1);
        assert!(lp.try_add_constraint(vec![1.0], Relation::Le, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "constraint dimension")]
    fn add_constraint_panics_on_bad_dimension() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn upper_bound_validates_index() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        assert!(lp.set_upper_bound(0, 5.0).is_ok());
        assert_eq!(
            lp.set_upper_bound(3, 5.0),
            Err(LpError::BadVariable {
                index: 3,
                n_vars: 1
            })
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(LpError::Infeasible.to_string(), "problem is infeasible");
        assert!(LpError::DimensionMismatch {
            expected: 2,
            found: 1
        }
        .to_string()
        .contains("expected 2"));
    }
}
