//! Two-phase dense tableau simplex with Bland's rule.

use crate::problem::{LinearProgram, LpError, Relation, Sense};
use crate::solution::Solution;

const EPS: f64 = 1e-9;

/// One row per constraint plus a working objective row, stored dense.
struct Tableau {
    /// `rows[i]` holds the constraint coefficients over all columns.
    rows: Vec<Vec<f64>>,
    /// Current right-hand side per row (always kept >= -EPS).
    rhs: Vec<f64>,
    /// Reduced-cost row for the phase currently being solved.
    cost: Vec<f64>,
    /// Objective-row constant (negated objective value).
    cost_rhs: f64,
    /// Column index of the basic variable for each row.
    basis: Vec<usize>,
    /// Columns that are artificial variables (never re-enter in phase 2).
    artificial: Vec<bool>,
}

impl Tableau {
    fn n_cols(&self) -> usize {
        self.cost.len()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let scale = self.rows[row][col];
        debug_assert!(scale.abs() > EPS, "pivot on a (near-)zero element");
        for v in &mut self.rows[row] {
            *v /= scale;
        }
        self.rhs[row] /= scale;
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor.abs() > EPS {
                for c in 0..self.n_cols() {
                    let delta = factor * self.rows[row][c];
                    self.rows[r][c] -= delta;
                }
                self.rhs[r] -= factor * self.rhs[row];
            }
        }
        let factor = self.cost[col];
        if factor.abs() > EPS {
            for c in 0..self.n_cols() {
                let delta = factor * self.rows[row][c];
                self.cost[c] -= delta;
            }
            self.cost_rhs -= factor * self.rhs[row];
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality for a minimization problem.
    ///
    /// `allow` filters which columns may enter the basis.
    fn optimize(&mut self, allow: impl Fn(usize) -> bool) -> Result<(), LpError> {
        // Generous anti-runaway bound; Bland's rule already prevents cycling.
        let limit = 200 * (self.rows.len() + self.n_cols() + 10);
        for _ in 0..limit {
            // Bland: entering column = lowest index with negative reduced cost.
            let entering = (0..self.n_cols()).find(|&j| allow(j) && self.cost[j] < -EPS);
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on lowest basis column index.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][col];
                if a > EPS {
                    let ratio = self.rhs[r] / a;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || (ratio < bratio + EPS && self.basis[r] < self.basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }

    /// Installs a fresh cost row (for phase 2) and prices out basic columns.
    fn set_costs(&mut self, costs: &[f64]) {
        self.cost = costs.to_vec();
        self.cost_rhs = 0.0;
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            let factor = self.cost[b];
            if factor.abs() > EPS {
                for c in 0..self.n_cols() {
                    let delta = factor * self.rows[r][c];
                    self.cost[c] -= delta;
                }
                self.cost_rhs -= factor * self.rhs[r];
            }
        }
    }
}

#[allow(clippy::needless_range_loop)] // several parallel arrays are indexed together
pub(crate) fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let n = lp.n_vars();

    // Fold upper bounds in as ordinary Le rows.
    let mut rows: Vec<Vec<f64>> = lp.rows.clone();
    let mut relations = lp.relations.clone();
    let mut rhs = lp.rhs.clone();
    for (var, bound) in lp.upper_bounds.iter().enumerate() {
        if let Some(b) = bound {
            let mut coeffs = vec![0.0; n];
            coeffs[var] = 1.0;
            rows.push(coeffs);
            relations.push(Relation::Le);
            rhs.push(*b);
        }
    }

    // Normalize to rhs >= 0.
    for i in 0..rows.len() {
        if rhs[i] < 0.0 {
            for v in &mut rows[i] {
                *v = -*v;
            }
            rhs[i] = -rhs[i];
            relations[i] = match relations[i] {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [0..n) structural, then one slack/surplus per row that
    // needs one, then one artificial per row that needs one.
    let n_slack = relations
        .iter()
        .filter(|r| matches!(r, Relation::Le | Relation::Ge))
        .count();
    let n_art = relations
        .iter()
        .filter(|r| matches!(r, Relation::Ge | Relation::Eq))
        .count();
    let total = n + n_slack + n_art;

    let mut t = Tableau {
        rows: vec![vec![0.0; total]; m],
        rhs: rhs.clone(),
        cost: vec![0.0; total],
        cost_rhs: 0.0,
        basis: vec![usize::MAX; m],
        artificial: vec![false; total],
    };
    for (i, row) in rows.iter().enumerate() {
        t.rows[i][..n].copy_from_slice(row);
    }
    let mut slack_col = n;
    let mut art_col = n + n_slack;
    for i in 0..m {
        match relations[i] {
            Relation::Le => {
                t.rows[i][slack_col] = 1.0;
                t.basis[i] = slack_col;
                slack_col += 1;
            }
            Relation::Ge => {
                t.rows[i][slack_col] = -1.0;
                slack_col += 1;
                t.rows[i][art_col] = 1.0;
                t.artificial[art_col] = true;
                t.basis[i] = art_col;
                art_col += 1;
            }
            Relation::Eq => {
                t.rows[i][art_col] = 1.0;
                t.artificial[art_col] = true;
                t.basis[i] = art_col;
                art_col += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        let phase1: Vec<f64> = (0..total)
            .map(|j| if t.artificial[j] { 1.0 } else { 0.0 })
            .collect();
        t.set_costs(&phase1);
        t.optimize(|_| true)?;
        let phase1_value = -t.cost_rhs;
        if phase1_value > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive any residual basic artificials out of the basis.
        for r in 0..m {
            if t.artificial[t.basis[r]] {
                if let Some(col) =
                    (0..total).find(|&j| !t.artificial[j] && t.rows[r][j].abs() > EPS)
                {
                    t.pivot(r, col);
                }
                // Otherwise the row is redundant: the artificial stays basic
                // at value zero and, being excluded from entering columns,
                // never becomes positive again.
            }
        }
    }

    // Phase 2: the real objective, as minimization.
    let sign = match lp.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut phase2 = vec![0.0; total];
    for j in 0..n {
        phase2[j] = sign * lp.objective[j];
    }
    t.set_costs(&phase2);
    let artificial = t.artificial.clone();
    t.optimize(|j| !artificial[j])?;

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rhs[r].max(0.0);
        }
    }
    let objective: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok(Solution::new(x, objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 36.0);
        assert_close(s.value(0), 2.0);
        assert_close(s.value(1), 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // minimize 0.12x + 0.15y s.t. 60x+60y >= 300, 12x+6y >= 36, 10x+30y >= 90
        let mut lp = LinearProgram::minimize(vec![0.12, 0.15]);
        lp.add_constraint(vec![60.0, 60.0], Relation::Ge, 300.0);
        lp.add_constraint(vec![12.0, 6.0], Relation::Ge, 36.0);
        lp.add_constraint(vec![10.0, 30.0], Relation::Ge, 90.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 0.66);
        assert_close(s.value(0), 3.0);
        assert_close(s.value(1), 2.0);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y s.t. x + y = 10, x - y = 2  → x=6, y=4.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 10.0);
        lp.add_constraint(vec![1.0, -1.0], Relation::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 10.0);
        assert_close(s.value(0), 6.0);
        assert_close(s.value(1), 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Ge, 5.0);
        lp.add_constraint(vec![1.0], Relation::Le, 3.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x >= 0, -x <= -2  ⇔  x >= 2; minimize x → 2.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.add_constraint(vec![-1.0], Relation::Le, -2.0);
        let s = lp.solve().unwrap();
        assert_close(s.value(0), 2.0);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.set_upper_bound(0, 3.0).unwrap();
        lp.set_upper_bound(1, 4.5).unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 7.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex: multiple constraints meet at the optimum.
        let mut lp = LinearProgram::maximize(vec![2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
        lp.add_constraint(vec![1.0, 2.0], Relation::Le, 6.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 10.0);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 4.0);
        lp.add_constraint(vec![2.0, 2.0], Relation::Eq, 8.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 4.0);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Ge, 2.0);
        let s = lp.solve().unwrap();
        assert!(s.value(0) + s.value(1) >= 2.0 - 1e-7);
        assert_close(s.objective(), 0.0);
    }

    #[test]
    fn battery_dispatch_shape() {
        // A miniature of the dispatch LP the scheduler crate builds:
        // 3 hours, deficit d = [2, 0, 3], battery can discharge b_h <= soc
        // carried; minimize unmet = sum(d_h - b_h), b_h <= d_h,
        // sum(b) <= 4 (energy), b_h <= 2.5 (power).
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Le, 4.0);
        lp.set_upper_bound(0, 2.0).unwrap();
        lp.set_upper_bound(1, 0.0).unwrap();
        lp.set_upper_bound(2, 2.5).unwrap();
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 4.0);
        assert!(s.value(1).abs() < 1e-9);
    }
}
