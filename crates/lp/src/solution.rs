//! Solver output.

use std::fmt;

/// An optimal solution to a [`LinearProgram`](crate::LinearProgram).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    x: Vec<f64>,
    objective: f64,
}

impl Solution {
    pub(crate) fn new(x: Vec<f64>, objective: f64) -> Self {
        Self { x, objective }
    }

    /// The optimal objective value (in the original sense — maximization
    /// problems report the maximum, not its negation).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `i` at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn value(&self, i: usize) -> f64 {
        self.x[i]
    }

    /// All variable values at the optimum.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Consumes the solution, returning the variable vector.
    pub fn into_values(self) -> Vec<f64> {
        self.x
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "objective {:.6} at x = {:?}", self.objective, self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution::new(vec![1.0, 2.0], 3.5);
        assert_eq!(s.objective(), 3.5);
        assert_eq!(s.value(1), 2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.clone().into_values(), vec![1.0, 2.0]);
        assert!(s.to_string().contains("3.5"));
    }
}
