//! Property-based tests for the simplex solver.

use ce_lp::{LinearProgram, Relation};
use proptest::prelude::*;

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
}

proptest! {
    /// maximize Σ c_i x_i subject to x_i <= u_i with c, u >= 0 has the
    /// closed-form optimum Σ c_i u_i.
    #[test]
    fn box_constrained_max_has_closed_form(
        params in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..6)
    ) {
        let c: Vec<f64> = params.iter().map(|(c, _)| *c).collect();
        let u: Vec<f64> = params.iter().map(|(_, u)| *u).collect();
        let mut lp = LinearProgram::maximize(c.clone());
        for (i, &b) in u.iter().enumerate() {
            lp.set_upper_bound(i, b).unwrap();
        }
        let s = lp.solve().unwrap();
        let expected: f64 = c.iter().zip(&u).map(|(a, b)| a * b).sum();
        assert_close(s.objective(), expected, 1e-6 * (1.0 + expected.abs()));
    }

    /// minimize Σ c_i x_i with c >= 0 and only Le constraints is 0 at x = 0.
    #[test]
    fn nonnegative_min_over_le_constraints_is_zero(
        c in prop::collection::vec(0.0f64..5.0, 1..5),
        rows in prop::collection::vec(
            (prop::collection::vec(-3.0f64..3.0, 4), 0.1f64..10.0), 0..4)
    ) {
        let n = c.len();
        let mut lp = LinearProgram::minimize(c);
        for (coeffs, rhs) in rows {
            lp.add_constraint(coeffs[..n].to_vec(), Relation::Le, rhs);
        }
        let s = lp.solve().unwrap();
        assert_close(s.objective(), 0.0, 1e-7);
        for &v in s.values() {
            assert!(v >= -1e-9);
        }
    }

    /// Whatever the solver returns satisfies every constraint it was given.
    #[test]
    fn solutions_are_feasible(
        n in 1usize..4,
        raw_rows in prop::collection::vec(
            (prop::collection::vec(0.0f64..4.0, 4), 1.0f64..20.0), 1..5),
        obj in prop::collection::vec(-3.0f64..3.0, 4)
    ) {
        // Nonnegative coefficients + positive rhs guarantees feasibility
        // (x = 0 works) and upper bounds keep the problem bounded.
        let mut lp = LinearProgram::maximize(obj[..n].to_vec());
        let mut stored = Vec::new();
        for (coeffs, rhs) in &raw_rows {
            let row = coeffs[..n].to_vec();
            lp.add_constraint(row.clone(), Relation::Le, *rhs);
            stored.push((row, *rhs));
        }
        for i in 0..n {
            lp.set_upper_bound(i, 50.0).unwrap();
        }
        let s = lp.solve().unwrap();
        for (row, rhs) in stored {
            let lhs: f64 = row.iter().zip(s.values()).map(|(a, x)| a * x).sum();
            assert!(lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
        }
        for &v in s.values() {
            assert!((-1e-9..=50.0 + 1e-6).contains(&v));
        }
    }

    /// Adding a constraint can never improve a maximization objective.
    #[test]
    fn extra_constraint_never_improves_objective(
        c in prop::collection::vec(0.1f64..5.0, 2..4),
        cut in 0.5f64..5.0
    ) {
        let n = c.len();
        let mut lp = LinearProgram::maximize(c.clone());
        for i in 0..n {
            lp.set_upper_bound(i, 10.0).unwrap();
        }
        let base = lp.solve().unwrap().objective();
        lp.add_constraint(vec![1.0; n], Relation::Le, cut);
        let constrained = lp.solve().unwrap().objective();
        assert!(constrained <= base + 1e-6);
    }
}
