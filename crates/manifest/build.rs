//! Computes the workspace code fingerprint at build time.
//!
//! Every manifest records which code produced its numbers. The
//! fingerprint is a SHA-256 over every Rust source file in the workspace
//! (`crates/*/src/**/*.rs` plus the facade's `src/`), each absorbed as
//! `path NUL contents NUL` in sorted path order with `/` separators — a
//! pure function of the checkout, never of wall-clock time or build
//! environment, so rebuilding the same sources always stamps the same
//! fingerprint.
//!
//! The hasher is the crate's own `src/sha256.rs`, `include!`d below: that
//! file is self-contained precisely so it can run here, before the crate
//! itself exists.

include!("src/sha256.rs");

use std::env;
use std::fs;
use std::path::{Path, PathBuf};

/// Collects workspace-relative (`/`-separated) paths of `.rs` files under
/// `dir`, recursively.
fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => panic!("cannot read {}: {e}", dir.display()),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under the workspace root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

fn main() {
    let manifest_dir = PathBuf::from(env::var("CARGO_MANIFEST_DIR").expect("cargo sets this"));
    let root = manifest_dir
        .parent()
        .and_then(Path::parent)
        .expect("crates/manifest sits two levels below the workspace root")
        .to_path_buf();

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .expect("workspace crates/ directory exists")
        .flatten()
        .map(|e| e.path())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_rs(&root, &src, &mut files);
            // Directory-level triggers catch files added or removed;
            // file-level ones below catch edits.
            println!("cargo:rerun-if-changed={}", src.display());
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk_rs(&root, &facade_src, &mut files);
        println!("cargo:rerun-if-changed={}", facade_src.display());
    }
    files.sort();

    let mut hasher = Sha256::new();
    hasher.update(b"ce-code-fingerprint/v1\n");
    for rel in &files {
        let contents = fs::read(root.join(rel))
            .unwrap_or_else(|e| panic!("cannot read source file {rel}: {e}"));
        hasher.update(rel.as_bytes());
        hasher.update(b"\0");
        hasher.update(&contents);
        hasher.update(b"\0");
        println!("cargo:rerun-if-changed={}", root.join(rel).display());
    }
    let hex = hasher.finalize().to_hex();

    let out_dir = PathBuf::from(env::var("OUT_DIR").expect("cargo sets OUT_DIR"));
    let generated = format!(
        "/// SHA-256 over every workspace source file (sorted `path NUL \
         contents NUL` runs), computed by `build.rs` — a pure function of \
         the checkout, never of build time or environment.\n\
         pub const CODE_FINGERPRINT: &str = \"{hex}\";\n"
    );
    fs::write(out_dir.join("fingerprint.rs"), generated).expect("OUT_DIR is writable");
}
