//! Canonical byte-serialization: the identity under every provenance
//! hash.
//!
//! The discipline mirrors `ce-serve`'s canonical request keys: fields are
//! emitted in a pinned order as `name=value;` runs, floats are rendered
//! as the 16 lowercase hex digits of their IEEE-754 bit pattern (so two
//! values hash equal exactly when they are bit-identical — `0.1 + 0.2`
//! and `0.3` do *not* collide), and integers are rendered as the hex of
//! their fixed-width big-endian bytes. Because every value has one
//! spelling and fields carry explicit names and terminators, the
//! serialization is prefix-free enough that no two distinct field
//! sequences produce the same byte stream.
//!
//! Every hash additionally starts with a *domain tag*, so an input hash
//! and a result hash over coincidentally equal field bytes can never
//! collide.

use crate::sha256::{Digest, Sha256};

/// One nibble (low 4 bits) as its lowercase hex ASCII byte. Branch
/// arithmetic instead of a table lookup keeps the canonical-byte path
/// free of indexing — it runs on the serving hot path, where the
/// panic-reachability ratchet holds every slice index against it.
fn hex_byte(nibble: u8) -> u8 {
    let low = nibble & 0x0f;
    if low < 10 {
        b'0' + low
    } else {
        b'a' + (low - 10)
    }
}

/// Streaming canonical hasher: a [`Sha256`] that absorbs named fields in
/// the canonical spelling. Allocation-free — numeric renderings go
/// through fixed stack buffers.
///
/// ```
/// use ce_manifest::CanonicalHasher;
///
/// let mut h = CanonicalHasher::new("example/v1");
/// h.field_str("site", "UT");
/// h.field_f64("solar_mw", 150.0);
/// let digest = h.finish();
/// assert_eq!(digest.to_hex().len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    inner: Sha256,
}

impl CanonicalHasher {
    /// A fresh hasher for the given domain (e.g. `"ce-manifest/v1/input"`).
    /// The tag is absorbed first, separating hash domains.
    pub fn new(domain: &str) -> Self {
        let mut inner = Sha256::new();
        inner.update(domain.as_bytes());
        inner.update(b"\n");
        CanonicalHasher { inner }
    }

    /// Absorbs a string field as `name=value;`.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.inner.update(name.as_bytes());
        self.inner.update(b"=");
        self.inner.update(value.as_bytes());
        self.inner.update(b";");
    }

    /// Absorbs a float field as `name=<16 hex digits of to_bits>;` —
    /// identical to `format!("{:016x}", value.to_bits())`, the spelling
    /// `ce-serve` pins for canonical request keys.
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.field_bytes_hex(name, &value.to_bits().to_be_bytes());
    }

    /// Absorbs an unsigned integer field as 16 big-endian hex digits.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.field_bytes_hex(name, &value.to_be_bytes());
    }

    /// Absorbs a signed 32-bit field (years) as 8 big-endian hex digits
    /// of its two's-complement bytes.
    pub fn field_i32(&mut self, name: &str, value: i32) {
        self.field_bytes_hex(name, &value.to_be_bytes());
    }

    /// Absorbs `name=<hex of bytes>;` without allocating.
    fn field_bytes_hex(&mut self, name: &str, bytes: &[u8]) {
        self.inner.update(name.as_bytes());
        self.inner.update(b"=");
        for &byte in bytes {
            let pair = [hex_byte(byte >> 4), hex_byte(byte)];
            self.inner.update(&pair);
        }
        self.inner.update(b";");
    }

    /// Finishes the stream and returns the digest.
    #[must_use = "the digest is the whole point of hashing"]
    pub fn finish(self) -> Digest {
        self.inner.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_spelling_matches_the_serve_canonical_key_discipline() {
        // The hasher's f64 rendering must be byte-identical to the
        // `{:016x}` spelling ce-serve uses in request keys.
        for v in [0.0, -0.0, 1.5, 150.0, f64::MAX, f64::MIN_POSITIVE] {
            let mut via_fields = CanonicalHasher::new("t");
            via_fields.field_f64("x", v);
            let mut via_text = CanonicalHasher::new("t");
            via_text.field_str("x", &format!("{:016x}", v.to_bits()));
            assert_eq!(via_fields.finish(), via_text.finish(), "{v}");
        }
    }

    #[test]
    fn integer_spellings_are_fixed_width_hex() {
        let mut h = CanonicalHasher::new("t");
        h.field_u64("seed", 7);
        h.field_i32("year", 2020);
        let mut t = CanonicalHasher::new("t");
        t.field_str("seed", "0000000000000007");
        t.field_str("year", "000007e4");
        assert_eq!(h.finish(), t.finish());
    }

    #[test]
    fn negative_years_round_trip_in_twos_complement() {
        let mut a = CanonicalHasher::new("t");
        a.field_i32("year", -1);
        let mut b = CanonicalHasher::new("t");
        b.field_str("year", "ffffffff");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn field_order_is_significant() {
        let mut ab = CanonicalHasher::new("t");
        ab.field_u64("a", 1);
        ab.field_u64("b", 2);
        let mut ba = CanonicalHasher::new("t");
        ba.field_u64("b", 2);
        ba.field_u64("a", 1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn domains_separate() {
        let mut x = CanonicalHasher::new("ce-manifest/v1/input");
        x.field_u64("seed", 7);
        let mut y = CanonicalHasher::new("ce-manifest/v1/result");
        y.field_u64("seed", 7);
        assert_ne!(x.finish(), y.finish());
    }

    #[test]
    fn bit_identity_not_numeric_equality() {
        let mut pos = CanonicalHasher::new("t");
        pos.field_f64("x", 0.0);
        let mut neg = CanonicalHasher::new("t");
        neg.field_f64("x", -0.0);
        // 0.0 == -0.0 numerically, but their bit patterns differ, so the
        // canonical hashes must too.
        assert_ne!(pos.finish(), neg.finish());
    }
}
