//! Provenance manifests for Carbon Explorer: content-addressed,
//! verifiable lineage for every published number.
//!
//! Everything this workspace computes is bitwise deterministic; this
//! crate turns that invariant into a portable artifact. A [`Manifest`]
//! records *what* was computed (seed, year, balancing authority,
//! strategy), *by which code* (a build-time fingerprint of every
//! workspace source), and *what came out* (canonical hashes of the
//! inputs and results). [`verify`] is the oracle: re-run the
//! computation, re-derive the hashes, and demand bit-identity.
//!
//! The crate is dependency-free and `forbid(unsafe_code)`: the trust
//! anchor must be auditable in isolation. Hashing is a hand-rolled,
//! FIPS 180-4 test-vector-pinned [`sha256`] with an allocation-free
//! streaming API; serialization is the canonical-byte discipline of
//! [`canonical`] (floats by IEEE-754 bit pattern, pinned field order,
//! domain-separated hashes).
//!
//! # Example
//!
//! ```
//! use ce_manifest::{verify, CanonicalHasher, Manifest, Recomputed};
//!
//! let mut inputs = CanonicalHasher::new(ce_manifest::INPUT_DOMAIN);
//! inputs.field_str("site", "UT");
//! inputs.field_u64("seed", 7);
//! let mut results = CanonicalHasher::new(ce_manifest::RESULT_DOMAIN);
//! results.field_f64("coverage_fraction", 0.83);
//!
//! let manifest = Manifest {
//!     schema: ce_manifest::SCHEMA_VERSION,
//!     kind: "evaluate".to_string(),
//!     ba: "PACE".to_string(),
//!     strategy: "renewables_battery".to_string(),
//!     years: vec![2020],
//!     seeds: vec![7],
//!     code_fingerprint: ce_manifest::CODE_FINGERPRINT.to_string(),
//!     input_hash: inputs.finish().to_hex(),
//!     result_hash: results.finish().to_hex(),
//! };
//!
//! // A faithful re-computation reproduces both hashes bit-for-bit.
//! let ok = verify(&manifest, |m| {
//!     let mut inputs = CanonicalHasher::new(ce_manifest::INPUT_DOMAIN);
//!     inputs.field_str("site", "UT");
//!     inputs.field_u64("seed", m.seeds[0]);
//!     let mut results = CanonicalHasher::new(ce_manifest::RESULT_DOMAIN);
//!     results.field_f64("coverage_fraction", 0.83);
//!     Recomputed {
//!         input_hash: inputs.finish().to_hex(),
//!         result_hash: results.finish().to_hex(),
//!     }
//! });
//! assert!(ok.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod manifest;
/// SHA-256 (FIPS 180-4): a hand-rolled streaming hasher, pinned against
/// the NIST test vectors in `tests/sha256_vectors.rs`. Self-contained so
/// `build.rs` can `include!` it to compute the code fingerprint.
pub mod sha256;

pub use canonical::CanonicalHasher;
pub use manifest::{
    verify, Manifest, ManifestError, Recomputed, VerifyError, INPUT_DOMAIN, RESULT_DOMAIN,
    SCHEMA_VERSION,
};
pub use sha256::{digest, Digest, Sha256};

include!(concat!(env!("OUT_DIR"), "/fingerprint.rs"));

#[cfg(test)]
mod tests {
    #[test]
    fn code_fingerprint_is_a_digest() {
        assert_eq!(crate::CODE_FINGERPRINT.len(), 64);
        assert!(crate::CODE_FINGERPRINT
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
    }
}
