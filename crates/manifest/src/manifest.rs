//! The [`Manifest`] lineage record and the [`verify`] oracle.
//!
//! A manifest attests one deterministic computation: *these inputs*
//! (seed, year, balancing authority, strategy — hashed canonically into
//! `input_hash`) *under this code* (`code_fingerprint`, the build-time
//! digest of every workspace source file) *produced exactly these
//! numbers* (`result_hash`, over the canonical bytes of the results).
//! Because every evaluation in this workspace is bitwise deterministic,
//! anyone holding the manifest can re-run the computation and check the
//! result hash bit-for-bit — [`verify`] is that check.

use crate::canonical::CanonicalHasher;
use std::fmt;
use std::fmt::Write as _;

/// The manifest schema version; bumped only when the canonical
/// serialization or the field set changes meaning.
pub const SCHEMA_VERSION: u32 = 1;

/// Domain tag for hashes over scenario inputs.
pub const INPUT_DOMAIN: &str = "ce-manifest/v1/input";
/// Domain tag for hashes over canonical result bytes.
pub const RESULT_DOMAIN: &str = "ce-manifest/v1/result";

/// A provenance record for one deterministic computation.
///
/// `years` and `seeds` are parallel in spirit but not in shape: a single
/// evaluation carries one of each, while an ensemble carries one year and
/// N seeds (each seed synthesizes an independent weather year).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Schema version — [`SCHEMA_VERSION`] for records written by this
    /// code.
    pub schema: u32,
    /// What was computed: `"evaluate"`, `"explore"`, `"ensemble"`,
    /// `"sweep"`, or `"serve"`.
    pub kind: String,
    /// Balancing-authority code of the grid (e.g. `"PACE"`).
    pub ba: String,
    /// Strategy canonical key (e.g. `"renewables_battery"`), or `"all"`
    /// for artifacts spanning every strategy.
    pub strategy: String,
    /// Calendar year(s) the demand/weather synthesis targeted.
    pub years: Vec<i32>,
    /// Seed(s) of the synthetic weather stream(s).
    pub seeds: Vec<u64>,
    /// Build-time digest of every workspace source file (see
    /// `ce_manifest::CODE_FINGERPRINT`). Informational in [`verify`]: a
    /// checkout that changed any source legitimately re-fingerprints.
    pub code_fingerprint: String,
    /// Canonical hash of the scenario inputs, under [`INPUT_DOMAIN`].
    pub input_hash: String,
    /// Canonical hash of the results, under [`RESULT_DOMAIN`]. This is
    /// the record's content address.
    pub result_hash: String,
}

/// A structurally invalid manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The schema version is not one this code understands.
    SchemaVersion(u32),
    /// A required field is empty.
    EmptyField(&'static str),
    /// A hash field is not 64 lowercase hex digits.
    MalformedHash(&'static str),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::SchemaVersion(found) => {
                write!(f, "unsupported manifest schema version {found}")
            }
            ManifestError::EmptyField(field) => write!(f, "manifest field `{field}` is empty"),
            ManifestError::MalformedHash(field) => {
                write!(f, "manifest field `{field}` is not 64 lowercase hex digits")
            }
        }
    }
}

/// Why [`verify`] rejected a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The record itself is malformed.
    Invalid(ManifestError),
    /// Recomputing the inputs' canonical hash gave a different digest —
    /// the manifest does not describe the computation it claims to.
    InputHashMismatch {
        /// Hash recorded in the manifest.
        recorded: String,
        /// Hash the recomputation produced.
        recomputed: String,
    },
    /// Recomputing the results gave different bytes — the attested
    /// numbers are not reproducible from the recorded inputs.
    ResultHashMismatch {
        /// Hash recorded in the manifest.
        recorded: String,
        /// Hash the recomputation produced.
        recomputed: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Invalid(e) => write!(f, "invalid manifest: {e}"),
            VerifyError::InputHashMismatch {
                recorded,
                recomputed,
            } => write!(
                f,
                "input hash mismatch: manifest records {recorded}, recomputation gives {recomputed}"
            ),
            VerifyError::ResultHashMismatch {
                recorded,
                recomputed,
            } => write!(
                f,
                "result hash mismatch: manifest records {recorded}, recomputation gives \
                 {recomputed} — the committed numbers are stale"
            ),
        }
    }
}

/// The hashes a verifier re-derived by re-running the computation a
/// manifest describes. Produced by the `recompute` callback of [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recomputed {
    /// Canonical input hash, recomputed under [`INPUT_DOMAIN`].
    pub input_hash: String,
    /// Canonical result hash, recomputed under [`RESULT_DOMAIN`].
    pub result_hash: String,
}

/// The core provenance oracle: structurally validates `manifest`, asks
/// `recompute` to re-derive both hashes from the manifest's recorded
/// scenario parameters, and demands bit-identity.
///
/// The code fingerprint is deliberately *not* compared: a verifier on a
/// different (or newer) checkout legitimately carries a different
/// fingerprint, and the result hash already catches any code change that
/// altered the numbers. What cannot drift silently is the data.
///
/// # Errors
///
/// [`VerifyError::Invalid`] for a malformed record, otherwise the first
/// hash mismatch (inputs before results).
pub fn verify<F>(manifest: &Manifest, recompute: F) -> Result<(), VerifyError>
where
    F: FnOnce(&Manifest) -> Recomputed,
{
    manifest.validate().map_err(VerifyError::Invalid)?;
    let got = recompute(manifest);
    if got.input_hash != manifest.input_hash {
        return Err(VerifyError::InputHashMismatch {
            recorded: manifest.input_hash.clone(),
            recomputed: got.input_hash,
        });
    }
    if got.result_hash != manifest.result_hash {
        return Err(VerifyError::ResultHashMismatch {
            recorded: manifest.result_hash.clone(),
            recomputed: got.result_hash,
        });
    }
    Ok(())
}

/// Is `s` exactly 64 lowercase hex digits (the wire form of a digest)?
fn is_hex64(s: &str) -> bool {
    s.len() == 64
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

impl Manifest {
    /// The record's content address: its result hash. `GET
    /// /manifest/<hash>` and the bench `--check` modes look records up by
    /// this string.
    pub fn address(&self) -> &str {
        &self.result_hash
    }

    /// Structural validation: schema version, non-empty identity fields,
    /// and well-formed hex digests.
    ///
    /// # Errors
    ///
    /// The first failed check, in field order.
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.schema != SCHEMA_VERSION {
            return Err(ManifestError::SchemaVersion(self.schema));
        }
        for (field, value) in [
            ("kind", &self.kind),
            ("ba", &self.ba),
            ("strategy", &self.strategy),
        ] {
            if value.is_empty() {
                return Err(ManifestError::EmptyField(field));
            }
        }
        if self.years.is_empty() {
            return Err(ManifestError::EmptyField("years"));
        }
        if self.seeds.is_empty() {
            return Err(ManifestError::EmptyField("seeds"));
        }
        for (field, value) in [
            ("code_fingerprint", &self.code_fingerprint),
            ("input_hash", &self.input_hash),
            ("result_hash", &self.result_hash),
        ] {
            if !is_hex64(value) {
                return Err(ManifestError::MalformedHash(field));
            }
        }
        Ok(())
    }

    /// Canonical digest of the record itself (all fields, pinned order) —
    /// a fingerprint of the *manifest*, distinct from the hashes it
    /// carries.
    pub fn digest_hex(&self) -> String {
        let mut h = CanonicalHasher::new("ce-manifest/v1/record");
        h.field_u64("schema", u64::from(self.schema));
        h.field_str("kind", &self.kind);
        h.field_str("ba", &self.ba);
        h.field_str("strategy", &self.strategy);
        for &year in &self.years {
            h.field_i32("year", year);
        }
        for &seed in &self.seeds {
            h.field_u64("seed", seed);
        }
        h.field_str("code_fingerprint", &self.code_fingerprint);
        h.field_str("input_hash", &self.input_hash);
        h.field_str("result_hash", &self.result_hash);
        h.finish().to_hex()
    }

    /// Deterministic JSON rendering: fixed field order, no whitespace,
    /// minimal string escaping. Embedded verbatim in served responses and
    /// committed BENCH_*.json artifacts, so the spelling is part of the
    /// byte-determinism contract.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(384);
        out.push('{');
        let _ = write!(out, "\"schema\":{}", self.schema);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, &self.kind);
        out.push_str(",\"ba\":");
        push_json_str(&mut out, &self.ba);
        out.push_str(",\"strategy\":");
        push_json_str(&mut out, &self.strategy);
        out.push_str(",\"years\":[");
        for (i, year) in self.years.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{year}");
        }
        out.push_str("],\"seeds\":[");
        for (i, seed) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{seed}");
        }
        out.push_str("],\"code_fingerprint\":");
        push_json_str(&mut out, &self.code_fingerprint);
        out.push_str(",\"input_hash\":");
        push_json_str(&mut out, &self.input_hash);
        out.push_str(",\"result_hash\":");
        push_json_str(&mut out, &self.result_hash);
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes,
/// and control characters.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex64(fill: char) -> String {
        std::iter::repeat_n(fill, 64).collect()
    }

    fn sample() -> Manifest {
        Manifest {
            schema: SCHEMA_VERSION,
            kind: "evaluate".to_string(),
            ba: "PACE".to_string(),
            strategy: "renewables_battery".to_string(),
            years: vec![2020],
            seeds: vec![7],
            code_fingerprint: hex64('0'),
            input_hash: hex64('a'),
            result_hash: hex64('b'),
        }
    }

    fn echo(m: &Manifest) -> Recomputed {
        Recomputed {
            input_hash: m.input_hash.clone(),
            result_hash: m.result_hash.clone(),
        }
    }

    #[test]
    fn verify_accepts_a_faithful_recomputation() {
        assert_eq!(verify(&sample(), echo), Ok(()));
    }

    #[test]
    fn verify_rejects_input_drift_first() {
        let m = sample();
        let err = verify(&m, |m| Recomputed {
            input_hash: hex64('c'),
            result_hash: m.result_hash.clone(),
        })
        .unwrap_err();
        assert!(
            matches!(err, VerifyError::InputHashMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn verify_rejects_result_drift() {
        let m = sample();
        let err = verify(&m, |m| Recomputed {
            input_hash: m.input_hash.clone(),
            result_hash: hex64('c'),
        })
        .unwrap_err();
        assert!(
            matches!(err, VerifyError::ResultHashMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("stale"));
    }

    #[test]
    fn verify_ignores_code_fingerprint_drift() {
        // A verifier on a newer checkout has a different fingerprint;
        // only the data hashes are load-bearing.
        let mut m = sample();
        m.code_fingerprint = hex64('f');
        assert_eq!(verify(&m, echo), Ok(()));
    }

    #[test]
    fn validation_catches_each_defect() {
        let mut m = sample();
        m.schema = 2;
        assert_eq!(m.validate(), Err(ManifestError::SchemaVersion(2)));

        let mut m = sample();
        m.kind.clear();
        assert_eq!(m.validate(), Err(ManifestError::EmptyField("kind")));

        let mut m = sample();
        m.seeds.clear();
        assert_eq!(m.validate(), Err(ManifestError::EmptyField("seeds")));

        let mut m = sample();
        m.result_hash = "ABC".to_string();
        assert_eq!(
            m.validate(),
            Err(ManifestError::MalformedHash("result_hash"))
        );

        let mut m = sample();
        m.input_hash = hex64('A'); // uppercase is not canonical
        assert_eq!(
            m.validate(),
            Err(ManifestError::MalformedHash("input_hash"))
        );
    }

    #[test]
    fn json_spelling_is_pinned() {
        let m = sample();
        let json = m.to_json();
        assert_eq!(
            json,
            format!(
                "{{\"schema\":1,\"kind\":\"evaluate\",\"ba\":\"PACE\",\
                 \"strategy\":\"renewables_battery\",\"years\":[2020],\"seeds\":[7],\
                 \"code_fingerprint\":\"{}\",\"input_hash\":\"{}\",\"result_hash\":\"{}\"}}",
                hex64('0'),
                hex64('a'),
                hex64('b'),
            )
        );
    }

    #[test]
    fn json_escapes_hostile_strings() {
        let mut m = sample();
        m.kind = "a\"b\\c\nd\u{1}".to_string();
        assert!(m.to_json().contains("\"kind\":\"a\\\"b\\\\c\\nd\\u0001\""));
    }

    #[test]
    fn address_is_the_result_hash() {
        let m = sample();
        assert_eq!(m.address(), m.result_hash);
    }

    #[test]
    fn record_digest_covers_every_field() {
        let base = sample().digest_hex();
        let mut m = sample();
        m.seeds.push(8);
        assert_ne!(m.digest_hex(), base);
        let mut m = sample();
        m.strategy = "renewables_only".to_string();
        assert_ne!(m.digest_hex(), base);
    }
}
