// SHA-256 (FIPS 180-4), hand-rolled so the provenance subsystem carries
// no dependencies. This file is deliberately self-contained — no `use`
// of anything outside itself — because `build.rs` `include!`s it to
// fingerprint workspace sources before this crate is even compiled.
// Module-level docs live on the `pub mod sha256` declaration in lib.rs
// for the same reason (an inner `//!` would not parse under `include!`).

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A finished SHA-256 digest: 32 bytes, rendered as 64 lowercase hex
/// characters by [`Digest::to_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

/// One nibble (low 4 bits) as its lowercase hex character. Branch
/// arithmetic instead of a table lookup keeps the digest path free of
/// indexing — this code runs on the serving hot path, where the
/// panic-reachability ratchet holds every slice index against it.
fn hex_char(nibble: u8) -> char {
    let low = nibble & 0x0f;
    if low < 10 {
        char::from(b'0' + low)
    } else {
        char::from(b'a' + (low - 10))
    }
}

impl Digest {
    /// Lowercase hexadecimal rendering, the wire form used in manifests.
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for &byte in &self.0 {
            out.push(hex_char(byte >> 4));
            out.push(hex_char(byte));
        }
        out
    }
}

/// Streaming SHA-256 hasher with an allocation-free update path: bytes
/// are folded into a fixed 64-byte block buffer and compressed in place,
/// so hashing any amount of input allocates nothing.
///
/// ```
/// use ce_manifest::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    block: [u8; 64],
    block_len: usize,
    /// Total message bytes absorbed, for the final length suffix.
    message_len: u64,
}

impl Sha256 {
    /// A fresh hasher in the FIPS 180-4 initial state.
    pub const fn new() -> Self {
        Sha256 {
            state: H0,
            block: [0; 64],
            block_len: 0,
            message_len: 0,
        }
    }

    /// Absorbs `data`. Allocation-free; may be called any number of times
    /// with arbitrarily sized slices. The copy loops below pair iterators
    /// with `zip` instead of slicing by range: this routine is reachable
    /// from the serving hot path, where the panic-reachability ratchet
    /// holds every slice index against it.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        self.message_len = self
            .message_len
            .wrapping_add(u64::try_from(rest.len()).unwrap_or(u64::MAX));
        if self.block_len > 0 {
            let take = (64 - self.block_len).min(rest.len());
            for (slot, &byte) in self.block.iter_mut().skip(self.block_len).zip(rest) {
                *slot = byte;
            }
            self.block_len += take;
            rest = rest.get(take..).unwrap_or(&[]);
            if self.block_len < 64 {
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.block_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk);
        }
        let tail = chunks.remainder();
        for (slot, &byte) in self.block.iter_mut().zip(tail) {
            *slot = byte;
        }
        self.block_len = tail.len();
    }

    /// Pads, appends the message length, and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.message_len.wrapping_mul(8);
        // One 0x80 byte, zeros to 56 mod 64, then the 64-bit length: the
        // padding always ends exactly on a block boundary.
        let pad_len = if self.block_len < 56 {
            56 - self.block_len
        } else {
            120 - self.block_len
        };
        self.update(&[0x80]);
        let zeros = [0u8; 63];
        self.update(zeros.get(..pad_len - 1).unwrap_or(&[]));
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// The FIPS 180-4 compression function over one 64-byte block. Like
    /// `update`, this is written without a single slice index — schedule
    /// expansion reads through a bounds-checked `at` accessor and the
    /// round loop zips constants with schedule words — so the serving hot
    /// path that reaches it stays off the panic-reachability ratchet.
    fn compress(&mut self, block: &[u8]) {
        let mut w = [0u32; 64];
        for (word, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            if let [b0, b1, b2, b3] = *chunk {
                *word = u32::from_be_bytes([b0, b1, b2, b3]);
            }
        }
        for i in 16..64 {
            let at = |j: usize| w.get(j).copied().unwrap_or(0);
            let s0 = at(i - 15).rotate_right(7) ^ at(i - 15).rotate_right(18) ^ (at(i - 15) >> 3);
            let s1 = at(i - 2).rotate_right(17) ^ at(i - 2).rotate_right(19) ^ (at(i - 2) >> 10);
            let next = at(i - 16)
                .wrapping_add(s0)
                .wrapping_add(at(i - 7))
                .wrapping_add(s1);
            if let Some(slot) = w.get_mut(i) {
                *slot = next;
            }
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for (&k, &word) in K.iter().zip(w.iter()) {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k)
                .wrapping_add(word);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (state, add) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *state = state.wrapping_add(add);
        }
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// One-shot convenience over the streaming API.
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}
