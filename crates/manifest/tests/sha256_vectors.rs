//! Pins the hand-rolled SHA-256 against the NIST FIPS 180-4 test
//! vectors (and the derived ones NIST publishes alongside the standard),
//! plus incremental-vs-one-shot equality across adversarial split sizes.
//! Everything downstream — input hashes, result hashes, the code
//! fingerprint — inherits its correctness from these pins.

use ce_manifest::sha256::{digest, Sha256};

/// FIPS 180-4 §5.3.3 appendix vector: the empty message.
#[test]
fn empty_message() {
    assert_eq!(
        digest(b"").to_hex(),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
}

/// FIPS 180-4 "abc", the one-block example worked in the standard.
#[test]
fn one_block_abc() {
    assert_eq!(
        digest(b"abc").to_hex(),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

/// The standard's two-block message (56 bytes, so the padding spills
/// into a second block).
#[test]
fn two_block_message() {
    assert_eq!(
        digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

/// The long-message vector: one million repetitions of 'a', streamed in
/// deliberately awkward chunk sizes so the block-buffer carry logic is
/// exercised, never just whole blocks.
#[test]
fn one_million_a_streaming() {
    const EXPECTED: &str = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
    let chunk_sizes = [1usize, 3, 55, 56, 63, 64, 65, 127, 991];
    let mut hasher = Sha256::new();
    let mut remaining = 1_000_000usize;
    let buf = [b'a'; 991];
    let mut turn = 0usize;
    while remaining > 0 {
        let take = chunk_sizes[turn % chunk_sizes.len()].min(remaining);
        hasher.update(&buf[..take]);
        remaining -= take;
        turn += 1;
    }
    assert_eq!(hasher.finalize().to_hex(), EXPECTED);
    // And as a single update call.
    let mut oneshot = Sha256::new();
    let million = vec![b'a'; 1_000_000];
    oneshot.update(&million);
    assert_eq!(oneshot.finalize().to_hex(), EXPECTED);
}

/// Incremental hashing must equal one-shot hashing for every split point
/// of a message spanning the block boundary.
#[test]
fn incremental_equals_one_shot_at_every_split() {
    let message: Vec<u8> = (0u32..150).map(|i| (i % 251) as u8).collect();
    let reference = digest(&message);
    for split in 0..=message.len() {
        let (head, tail) = message.split_at(split);
        let mut h = Sha256::new();
        h.update(head);
        h.update(tail);
        assert_eq!(h.finalize(), reference, "split at {split}");
    }
}

/// Exact block-boundary lengths (55/56/64 bytes) hit the three padding
/// regimes; pin them against digests cross-checked with coreutils
/// `sha256sum`.
#[test]
fn padding_boundary_lengths() {
    let cases: [(usize, &str); 3] = [
        (
            55,
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
        ),
        (
            56,
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
        ),
        (
            64,
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
        ),
    ];
    for (len, expected) in cases {
        let msg = vec![b'a'; len];
        assert_eq!(digest(&msg).to_hex(), expected, "length {len}");
    }
}

/// The digest type itself: hex spelling is 64 lowercase chars and
/// round-trips the raw bytes faithfully.
#[test]
fn hex_rendering() {
    let d = digest(b"abc");
    let hex = d.to_hex();
    assert_eq!(hex.len(), 64);
    assert!(hex
        .bytes()
        .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
    assert_eq!(&hex[..8], "ba7816bf");
    assert_eq!(d.0[0], 0xba);
}
