//! Deterministic data-parallel primitives for Carbon Explorer.
//!
//! The design-space sweeps behind the paper's Figures 13–15 are
//! embarrassingly parallel: thousands of independent `evaluate` calls per
//! balancing authority. This crate provides the small parallel-map core
//! those sweeps run on, built on `std::thread::scope` (the container this
//! workspace builds in has no crates.io access, so rayon itself cannot be
//! fetched; this is the same contiguous-chunk + indexed-collect shape a
//! rayon `par_iter().map().collect()` would compile to for these
//! workloads).
//!
//! Guarantees:
//!
//! - **Deterministic output order**: results are returned in input order,
//!   assembled from per-thread contiguous chunks — never in completion
//!   order. For a pure `f`, output is bitwise-identical to the serial map.
//! - **No nested oversubscription**: a `par_map` issued from inside a
//!   worker thread runs serially, so outer parallelism (e.g. per-site
//!   experiment loops) composes with inner parallelism (per-design sweeps)
//!   without spawning `threads²` workers.
//! - **Per-thread scratch**: [`par_map_with`] hands each worker one
//!   scratch value for its whole chunk, the std-thread equivalent of
//!   rayon's thread-local `map_init` — allocation-free inner loops reuse
//!   buffers across a chunk.
//!
//! The worker count comes from `std::thread::available_parallelism`,
//! overridable with the `CE_THREADS` environment variable (`CE_THREADS=1`
//! forces every sweep serial, which is how the determinism tests compare
//! paths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::thread;

thread_local! {
    /// Set while the current thread is a parallel-region worker; nested
    /// regions fall back to serial execution.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads parallel regions may use.
///
/// Reads `CE_THREADS` if set (clamped to at least 1), otherwise
/// `std::thread::available_parallelism`.
// ce:nonblocking
pub fn max_threads() -> usize {
    if let Ok(value) = std::env::var("CE_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// `true` if the calling thread is already inside a parallel region (its
/// `par_map` calls will run serially).
// ce:nonblocking
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// Runs `f` with this thread marked as a parallel-region worker, so every
/// `par_map`/`par_fold` issued inside executes serially on the calling
/// thread.
///
/// This is the explicit form of the nested-region guard, for callers that
/// manage their own thread pool — e.g. `ce-serve`'s request workers, where
/// the pool itself is the parallelism and a nested sweep fanning out to
/// `threads²` workers would wreck tail latency. Because parallel and
/// serial sweeps are bitwise-identical by construction, wrapping a
/// computation in `run_serial` never changes its result, only its
/// scheduling.
///
/// The flag is restored on exit even if `f` panics, so a worker thread
/// that catches the panic is not left permanently serialized (or
/// permanently marked if it was not a worker to begin with).
// ce:nonblocking
pub fn run_serial<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|flag| flag.set(self.0));
        }
    }
    let _restore = Restore(IN_PARALLEL_REGION.with(Cell::get));
    IN_PARALLEL_REGION.with(|flag| flag.set(true));
    f()
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Falls back to a serial map when the input is tiny, only one thread is
/// available, or the caller is itself a parallel-region worker.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, || (), move |(), item| f(item))
}

/// [`par_map`] with a per-worker scratch value: each worker calls `init`
/// once and reuses the scratch across every item of its chunk.
///
/// Results are returned in input order regardless of thread scheduling.
pub fn par_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 || items.len() <= 1 || in_parallel_region() {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }

    let chunk_size = items.len().div_ceil(threads);
    let mut results = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(|| {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    let mut scratch = init();
                    let out: Vec<R> = chunk.iter().map(|item| f(&mut scratch, item)).collect();
                    IN_PARALLEL_REGION.with(|flag| flag.set(false));
                    out
                })
            })
            .collect();
        // Joining in spawn order reassembles input order: chunks are
        // contiguous, and each worker preserves order within its chunk.
        for handle in handles {
            match handle.join() {
                Ok(out) => results.extend(out),
                // Re-raise the worker's own panic payload on the caller —
                // same observable behavior as a serial map that panicked.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
}

/// Parallel fold-then-combine: each worker folds its contiguous chunk of
/// `items` into a single accumulator with `fold_chunk`, and the chunk
/// accumulators are combined **in input order** with `combine` on the
/// joining thread. Returns `None` for empty input.
///
/// This is the reduction counterpart of [`par_map_with`] — the whole
/// point is that nothing proportional to `items.len()` is materialized:
/// a sweep looking for a minimum carries one candidate per worker instead
/// of a full result vector. Because chunks are contiguous and combined in
/// input order, any `combine` that is associative over ordered
/// concatenation (min-with-first-winner, sum-reordering-insensitive
/// folds, …) produces results identical to the serial
/// `fold_chunk(&mut init(), items)` — for first-winner minima this holds
/// even with floating-point keys, since no comparison is reordered, only
/// regrouped.
///
/// Falls back to a single serial fold for tiny inputs, one available
/// thread, or when called from inside a parallel region.
pub fn par_fold_chunks_with<T, S, A, I, F, C>(
    items: &[T],
    init: I,
    fold_chunk: F,
    mut combine: C,
) -> Option<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[T]) -> A + Sync,
    C: FnMut(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let threads = max_threads().min(items.len());
    if threads <= 1 || items.len() <= 1 || in_parallel_region() {
        return Some(fold_chunk(&mut init(), items));
    }

    let chunk_size = items.len().div_ceil(threads);
    let mut result: Option<A> = None;
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(|| {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    let acc = fold_chunk(&mut init(), chunk);
                    IN_PARALLEL_REGION.with(|flag| flag.set(false));
                    acc
                })
            })
            .collect();
        // Joining in spawn order keeps the combine sequence identical to
        // the chunk order, hence deterministic.
        for handle in handles {
            let acc = match handle.join() {
                Ok(acc) => acc,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            result = Some(match result.take() {
                Some(prev) => combine(prev, acc),
                None => acc,
            });
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        let expected: Vec<usize> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn matches_serial_map_bitwise_for_floats() {
        let items: Vec<f64> = (0..5_000).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e9).mul_add(*x, 1.0 / (x + 0.5));
        let parallel = par_map(&items, f);
        let serial: Vec<f64> = items.iter().map(f).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn scratch_is_reused_within_a_chunk() {
        let items: Vec<usize> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let results = par_map_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new()
            },
            |scratch, &item| {
                scratch.push(item);
                scratch.len()
            },
        );
        // Scratch init count is bounded by the worker count, far below the
        // item count, proving reuse across items.
        assert!(inits.load(Ordering::SeqCst) <= max_threads());
        assert_eq!(results.len(), items.len());
    }

    #[test]
    fn nested_regions_run_serially_not_exponentially() {
        let outer: Vec<usize> = (0..8).collect();
        let results = par_map(&outer, |&i| {
            assert!(in_parallel_region() || max_threads() == 1);
            let inner: Vec<usize> = (0..100).collect();
            par_map(&inner, |&j| i * 1000 + j).len()
        });
        assert_eq!(results, vec![100; 8]);
        assert!(!in_parallel_region());
    }

    #[test]
    fn fold_chunks_matches_serial_fold() {
        let items: Vec<f64> = (0..10_000)
            .map(|i| ((i * 7919) % 1000) as f64 * 0.5)
            .collect();
        // First-winner minimum: the parallel regrouping must pick the same
        // (value, index) as a serial left fold.
        let fold = |_: &mut (), chunk: &[f64]| {
            chunk
                .iter()
                .enumerate()
                .fold(None::<(f64, usize)>, |best, (i, &v)| match best {
                    Some((bv, bi)) if bv <= v => Some((bv, bi)),
                    _ => Some((v, i)),
                })
        };
        let combine = |a: Option<(f64, usize)>, b: Option<(f64, usize)>| match (a, b) {
            (Some((av, ai)), Some((bv, _))) if av <= bv => Some((av, ai)),
            (a, None) => a,
            (_, b) => b,
        };
        // Indices are chunk-local, so compare values only (the value of
        // the first minimum is position-independent).
        let parallel = par_fold_chunks_with(&items, || (), fold, combine)
            .flatten()
            .map(|(v, _)| v);
        let serial = fold(&mut (), &items).map(|(v, _)| v);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn fold_chunks_combines_in_input_order() {
        let items: Vec<usize> = (0..5_000).collect();
        // Concatenating per-chunk (first, last) pairs in combine order
        // must reconstruct the full input range.
        let folded = par_fold_chunks_with(
            &items,
            || (),
            |_, chunk| vec![(chunk[0], *chunk.last().unwrap())],
            |mut a, b| {
                a.extend(b);
                a
            },
        )
        .unwrap();
        assert_eq!(folded.first().unwrap().0, 0);
        assert_eq!(folded.last().unwrap().1, 4_999);
        for pair in folded.windows(2) {
            assert_eq!(pair[0].1 + 1, pair[1].0, "chunks out of order: {folded:?}");
        }
    }

    #[test]
    fn fold_chunks_empty_input_is_none() {
        let empty: Vec<u32> = Vec::new();
        let result = par_fold_chunks_with(&empty, || (), |_, c| c.len(), |a, b| a + b);
        assert_eq!(result, None);
    }

    #[test]
    fn fold_chunks_scratch_is_per_worker() {
        let items: Vec<usize> = (0..1_000).collect();
        let inits = AtomicUsize::new(0);
        let total = par_fold_chunks_with(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |scratch, chunk| {
                *scratch += chunk.len();
                *scratch
            },
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(total, items.len());
        assert!(inits.load(Ordering::SeqCst) <= max_threads());
    }

    #[test]
    fn run_serial_forces_serial_and_restores() {
        assert!(!in_parallel_region());
        let items: Vec<usize> = (0..64).collect();
        let result = run_serial(|| {
            assert!(in_parallel_region());
            par_map(&items, |&x| x + 1)
        });
        assert_eq!(result[63], 64);
        assert!(!in_parallel_region());
        // Restored even when the closure panics.
        let caught = std::panic::catch_unwind(|| run_serial(|| panic!("boom")));
        assert!(caught.is_err());
        assert!(!in_parallel_region());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                assert!(x != 13, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
