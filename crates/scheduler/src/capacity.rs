//! Additional server capacity required by demand response (paper Fig. 12).
//!
//! Deferring work to renewable-rich hours piles computation into those
//! hours, raising the peak power the facility must support. The paper
//! measures this as extra capacity relative to the datacenter's existing
//! capacity and finds 19% to >100% extra is needed to reach 24/7 with CAS
//! alone, and 6-76% at the carbon-optimal points.

use crate::greedy::{CasConfig, GreedyScheduler};
use ce_timeseries::time::HOURS_PER_DAY;
use ce_timeseries::{HourlySeries, TimeSeriesError};

/// Extra capacity implied by a scheduled demand series, as a fraction of
/// the original peak: `(new_peak - original_peak) / original_peak`.
///
/// Returns 0.0 when the schedule fits under the original peak or for empty
/// series.
pub fn additional_capacity_fraction(original: &HourlySeries, scheduled: &HourlySeries) -> f64 {
    let (Some(orig_peak), Some(new_peak)) = (original.max(), scheduled.max()) else {
        return 0.0;
    };
    if orig_peak <= 0.0 {
        return 0.0;
    }
    ((new_peak - orig_peak) / orig_peak).max(0.0)
}

/// Finds the minimum capacity cap (MW) at which greedy scheduling with
/// flexibility `flexible_ratio` eliminates the renewable deficit entirely
/// (24/7 coverage), or `None` if no finite capacity achieves it (for
/// example, a day whose renewable energy is simply insufficient).
///
/// The search is a bisection over the capacity cap, seeded by a feasibility
/// check at an effectively unlimited cap.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
pub fn required_capacity_for_full_coverage(
    demand: &HourlySeries,
    supply: &HourlySeries,
    flexible_ratio: f64,
) -> Result<Option<f64>, TimeSeriesError> {
    demand.check_aligned(supply)?;
    let deficit_at = |cap: f64| -> f64 {
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: cap,
            flexible_ratio,
        });
        let result = sched
            .schedule(demand, supply)
            .expect("alignment already checked");
        result
            .shifted_demand
            .zip_with(supply, |d, s| (d - s).max(0.0))
            .expect("aligned")
            .sum()
    };

    // Quick necessary condition: every full day needs enough renewable
    // energy to cover (a) its inflexible load hour-by-hour and (b) its
    // total load in aggregate. Without it, no capacity suffices.
    let huge = demand.max().unwrap_or(0.0) * 1e3 + supply.max().unwrap_or(0.0) + 1.0;
    if deficit_at(huge) > 1e-6 {
        return Ok(None);
    }

    let mut lo = demand.max().unwrap_or(0.0); // can't go below existing peak
    let mut hi = huge;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if deficit_at(mid) > 1e-6 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(hi))
}

/// Peak daily backlog a deferral policy would accumulate: for each day, the
/// energy that must move out of deficit hours. Useful for sizing deferred
/// work queues.
pub fn peak_daily_deferral_mwh(demand: &HourlySeries, supply: &HourlySeries) -> f64 {
    let full_days = demand.len().min(supply.len()) / HOURS_PER_DAY;
    let mut peak = 0.0f64;
    for day in 0..full_days {
        let mut deferral = 0.0;
        for h in day * HOURS_PER_DAY..(day + 1) * HOURS_PER_DAY {
            deferral += (demand[h] - supply[h]).max(0.0);
        }
        peak = peak.max(deferral);
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn capacity_fraction_basics() {
        let orig = HourlySeries::from_values(start(), vec![10.0, 8.0]);
        let bigger = HourlySeries::from_values(start(), vec![15.0, 3.0]);
        assert!((additional_capacity_fraction(&orig, &bigger) - 0.5).abs() < 1e-12);
        let smaller = HourlySeries::from_values(start(), vec![9.0, 9.0]);
        assert_eq!(additional_capacity_fraction(&orig, &smaller), 0.0);
        let empty = HourlySeries::zeros(start(), 0);
        assert_eq!(additional_capacity_fraction(&empty, &empty), 0.0);
    }

    #[test]
    fn solar_day_with_enough_energy_has_finite_requirement() {
        // 240 MWh/day demand; solar provides 600 MWh across 12 hours.
        let demand = HourlySeries::constant(start(), 48, 10.0);
        let supply = HourlySeries::from_fn(start(), 48, |h| {
            if (6..18).contains(&(h % 24)) {
                50.0
            } else {
                0.0
            }
        });
        let cap = required_capacity_for_full_coverage(&demand, &supply, 1.0)
            .unwrap()
            .expect("feasible with full flexibility");
        // All 240 MWh must run in 12 surplus hours → ≥ 20 MW.
        assert!(cap >= 20.0 - 1e-6, "cap {cap}");
        assert!(cap <= 50.0, "cap {cap}");
    }

    #[test]
    fn infeasible_when_flexibility_is_too_low() {
        // Night hours have inflexible load but zero supply → never 24/7.
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply =
            HourlySeries::from_fn(
                start(),
                24,
                |h| {
                    if (6..18).contains(&h) {
                        100.0
                    } else {
                        0.0
                    }
                },
            );
        let result = required_capacity_for_full_coverage(&demand, &supply, 0.4).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn infeasible_when_energy_is_insufficient() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = HourlySeries::constant(start(), 24, 5.0);
        assert!(required_capacity_for_full_coverage(&demand, &supply, 1.0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn already_covered_requires_no_extra_capacity() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = HourlySeries::constant(start(), 24, 12.0);
        let cap = required_capacity_for_full_coverage(&demand, &supply, 0.1)
            .unwrap()
            .expect("trivially feasible");
        assert!(cap <= 10.0 + 1e-6);
    }

    #[test]
    fn peak_daily_deferral() {
        let demand = HourlySeries::constant(start(), 48, 10.0);
        let supply = HourlySeries::from_fn(start(), 48, |h| if h < 24 { 10.0 } else { 0.0 });
        // Day 1 fully covered; day 2 has 240 MWh of deficit.
        assert_eq!(peak_daily_deferral_mwh(&demand, &supply), 240.0);
    }
}
