//! The combined battery + CAS heuristic (paper §5.2, "Renewables + Battery
//! + CAS").
//!
//! The paper's priority order minimizes runtime delays:
//!
//! - on renewable *deficit*: discharge the battery first; shift workloads
//!   only if the stored energy (at the DoD limit) is insufficient;
//! - on renewable *surplus*: execute all deferred workloads first, then
//!   charge the battery with the remaining supply.
//!
//! Deferred work carries a completion deadline (the Tier-4 daily SLO by
//! default); work that reaches its deadline is force-run on grid energy so
//! SLOs are never violated.

use ce_battery::BatteryModel;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration for the combined battery + CAS dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedConfig {
    /// Hard cap on hourly facility power, MW (existing + extra servers).
    pub max_capacity_mw: f64,
    /// Fraction of each hour's load that may be deferred.
    pub flexible_ratio: f64,
    /// Deferral window, hours (Tier-4 daily SLO = 24).
    pub window_hours: usize,
}

impl Default for CombinedConfig {
    fn default() -> Self {
        Self {
            max_capacity_mw: f64::INFINITY,
            flexible_ratio: 0.4,
            window_hours: 24,
        }
    }
}

/// Result of a combined battery + CAS dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedResult {
    /// Grid energy consumed per hour (unmet by renewables/battery), MW.
    pub unmet: HourlySeries,
    /// The post-scheduling effective load, MW.
    pub effective_demand: HourlySeries,
    /// Power served from the battery per hour, MW.
    pub battery_supplied: HourlySeries,
    /// Curtailed renewable surplus per hour, MW.
    pub curtailed: HourlySeries,
    /// Battery state of charge at the end of each hour, MWh.
    pub soc: HourlySeries,
    /// Total energy deferred across the run, MWh.
    pub deferred_mwh: f64,
    /// Energy force-run on grid power at its SLO deadline, MWh.
    pub forced_mwh: f64,
    /// Largest backlog of deferred work at any instant, MWh.
    pub peak_backlog_mwh: f64,
    /// Equivalent full battery cycles performed.
    pub equivalent_cycles: f64,
}

/// Runs the combined heuristic over aligned `demand` and `supply` series.
///
/// The battery starts full (commissioning charge), as in
/// [`ce_battery::simulate_dispatch`].
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
///
/// # Panics
///
/// Panics if `config.flexible_ratio` is outside `[0, 1]` or
/// `config.window_hours` is zero.
pub fn combined_dispatch(
    battery: &mut dyn BatteryModel,
    demand: &HourlySeries,
    supply: &HourlySeries,
    config: CombinedConfig,
) -> Result<CombinedResult, TimeSeriesError> {
    assert!(
        (0.0..=1.0).contains(&config.flexible_ratio),
        "flexible ratio must be in [0, 1]"
    );
    assert!(config.window_hours > 0, "window must be at least one hour");
    demand.check_aligned(supply)?;
    battery.reset(1.0);

    let len = demand.len();
    let start = demand.start();
    let mut unmet = vec![0.0; len];
    let mut effective = vec![0.0; len];
    let mut supplied = vec![0.0; len];
    let mut curtailed = vec![0.0; len];
    let mut soc = vec![0.0; len];
    let mut deferred_total = 0.0;
    let mut forced_total = 0.0;
    let mut peak_backlog = 0.0f64;
    let mut total_discharged = 0.0;

    // FIFO of (deadline_hour, energy_mwh) deferred jobs.
    let mut backlog: VecDeque<(usize, f64)> = VecDeque::new();

    for h in 0..len {
        let d = demand[h];
        let s = supply[h];
        let mut load = d;

        // SLO enforcement: any deferred work whose deadline is this hour
        // must run now, whatever the energy source.
        while let Some(&(deadline, energy)) = backlog.front() {
            if deadline <= h {
                backlog.pop_front();
                load += energy;
                forced_total += energy;
            } else {
                break;
            }
        }

        if s >= load {
            // Surplus: run deferred work first, newest-deadline last.
            let mut surplus = s - load;
            let mut headroom = (config.max_capacity_mw - load).max(0.0);
            while surplus > 1e-12 && headroom > 1e-12 {
                let Some((deadline, energy)) = backlog.pop_front() else {
                    break;
                };
                let run = energy.min(surplus).min(headroom);
                load += run;
                surplus -= run;
                headroom -= run;
                let remainder = energy - run;
                if remainder > 1e-12 {
                    backlog.push_front((deadline, remainder));
                }
            }
            // Then charge the battery; curtail the rest.
            let accepted = battery.charge(surplus);
            curtailed[h] = surplus - accepted;
        } else {
            // Deficit: battery first.
            let mut deficit = load - s;
            let delivered = battery.discharge(deficit);
            total_discharged += delivered;
            supplied[h] = delivered;
            deficit -= delivered;
            if deficit > 1e-12 {
                // Battery insufficient: defer what flexibility allows.
                // Only this hour's own flexible load can move (forced work
                // has already exhausted its window).
                let deferrable = (d * config.flexible_ratio).min(deficit);
                if deferrable > 1e-12 {
                    backlog.push_back((h + config.window_hours, deferrable));
                    deferred_total += deferrable;
                    load -= deferrable;
                    deficit -= deferrable;
                }
                unmet[h] = deficit;
            }
        }

        effective[h] = load;
        soc[h] = battery.soc_mwh();
        let backlog_now: f64 = backlog.iter().map(|(_, e)| e).sum();
        peak_backlog = peak_backlog.max(backlog_now);
    }

    // Anything still in the backlog at the end of the horizon is forced
    // onto grid energy (conservative accounting).
    let leftover: f64 = backlog.iter().map(|(_, e)| e).sum();
    if let Some(last) = unmet.last_mut() {
        *last += leftover;
        forced_total += leftover;
    }
    if let Some(last) = effective.last_mut() {
        *last += leftover;
    }

    let usable = battery.usable_capacity_mwh();
    Ok(CombinedResult {
        unmet: HourlySeries::from_values(start, unmet),
        effective_demand: HourlySeries::from_values(start, effective),
        battery_supplied: HourlySeries::from_values(start, supplied),
        curtailed: HourlySeries::from_values(start, curtailed),
        soc: HourlySeries::from_values(start, soc),
        deferred_mwh: deferred_total,
        forced_mwh: forced_total,
        peak_backlog_mwh: peak_backlog,
        equivalent_cycles: if usable > 0.0 {
            total_discharged / usable
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_battery::{ClcBattery, IdealBattery};
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn cfg(flexible_ratio: f64) -> CombinedConfig {
        CombinedConfig {
            max_capacity_mw: 100.0,
            flexible_ratio,
            window_hours: 24,
        }
    }

    #[test]
    fn battery_is_used_before_shifting() {
        // Deficit of 5 MW at hour 1; 10 MWh battery covers it entirely, so
        // nothing should be deferred.
        let demand = HourlySeries::from_values(start(), vec![0.0, 5.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 3);
        let mut battery = IdealBattery::new(10.0);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(1.0)).unwrap();
        assert_eq!(r.deferred_mwh, 0.0);
        assert_eq!(r.battery_supplied[1], 5.0);
        assert_eq!(r.unmet.sum(), 0.0);
    }

    #[test]
    fn shifting_kicks_in_when_battery_is_exhausted() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0, 0.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 20.0, 0.0]);
        let mut battery = IdealBattery::new(4.0);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(0.5)).unwrap();
        // Hour 0: battery gives 4, flexible 5 deferred, 1 unmet.
        assert_eq!(r.battery_supplied[0], 4.0);
        assert_eq!(r.deferred_mwh, 5.0);
        assert!((r.unmet[0] - 1.0).abs() < 1e-9);
        // Hour 1: surplus runs the deferred 5 MWh before charging.
        assert!((r.effective_demand[1] - 5.0).abs() < 1e-9);
        assert_eq!(r.forced_mwh, 0.0);
    }

    #[test]
    fn surplus_runs_backlog_before_charging() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 12.0]);
        let mut battery = IdealBattery::new(100.0);
        // Battery starts full → covers hour 0 fully; no deferral. Use a
        // zero-capacity battery to force deferral instead.
        let mut zero = IdealBattery::new(0.0);
        let r = combined_dispatch(&mut zero, &demand, &supply, cfg(1.0)).unwrap();
        assert_eq!(r.deferred_mwh, 10.0);
        // Hour 1: all 10 deferred MWh run inside the 12 MW surplus.
        assert!((r.effective_demand[1] - 10.0).abs() < 1e-9);
        assert!((r.curtailed[1] - 2.0).abs() < 1e-9);
        // And with the big battery the same scenario defers nothing.
        let r2 = combined_dispatch(&mut battery, &demand, &supply, cfg(1.0)).unwrap();
        assert_eq!(r2.deferred_mwh, 0.0);
    }

    #[test]
    fn deadline_forces_execution_on_grid_power() {
        // Deferral at hour 0 with a 2-hour window and no surplus ever:
        // at hour 2 the job must run on grid energy.
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0, 0.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 4);
        let mut battery = IdealBattery::new(0.0);
        let config = CombinedConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 0.5,
            window_hours: 2,
        };
        let r = combined_dispatch(&mut battery, &demand, &supply, config).unwrap();
        assert_eq!(r.deferred_mwh, 5.0);
        assert_eq!(r.forced_mwh, 5.0);
        // The forced 5 MWh shows up as grid (unmet) energy at hour 2.
        assert!((r.unmet[2] - 5.0).abs() < 1e-9);
        // Total grid energy = full original demand (nothing renewable).
        assert!((r.unmet.sum() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn leftover_backlog_is_accounted_at_horizon_end() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 2);
        let mut battery = IdealBattery::new(0.0);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(0.4)).unwrap();
        // 4 MWh deferred, never runnable → forced at the end.
        assert!((r.unmet.sum() - 10.0).abs() < 1e-9);
        assert!((r.forced_mwh - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_conserved() {
        // Effective demand over the run equals original demand (every job
        // runs exactly once, possibly at a different hour).
        let demand = HourlySeries::from_fn(start(), 96, |h| 5.0 + ((h * 13) % 7) as f64);
        let supply = HourlySeries::from_fn(start(), 96, |h| ((h * 29) % 17) as f64);
        let mut battery = ClcBattery::lfp(20.0, 0.8);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(0.4)).unwrap();
        assert!(
            (r.effective_demand.sum() - demand.sum()).abs() < 1e-6,
            "{} vs {}",
            r.effective_demand.sum(),
            demand.sum()
        );
    }

    #[test]
    fn combined_beats_battery_only_and_cas_only() {
        // A repeating two-day pattern with tight supply: the combination
        // should leave no more unmet energy than either solution alone.
        let demand = HourlySeries::constant(start(), 96, 10.0);
        let supply = HourlySeries::from_fn(start(), 96, |h| {
            if (8..16).contains(&(h % 24)) {
                28.0
            } else {
                1.0
            }
        });
        let config = cfg(0.4);

        let mut combined_battery = ClcBattery::lfp(40.0, 1.0);
        let combined = combined_dispatch(&mut combined_battery, &demand, &supply, config).unwrap();

        let mut battery_only = ClcBattery::lfp(40.0, 1.0);
        let b = ce_battery::simulate_dispatch(&mut battery_only, &demand, &supply).unwrap();

        let mut no_battery = IdealBattery::new(0.0);
        let c = combined_dispatch(&mut no_battery, &demand, &supply, config).unwrap();

        assert!(combined.unmet.sum() <= b.unmet.sum() + 1e-6);
        assert!(combined.unmet.sum() <= c.unmet.sum() + 1e-6);
    }

    #[test]
    fn capacity_cap_limits_backlog_draining() {
        // Three hours of surplus so the backlog fully drains within the
        // horizon: the cap limits *voluntary* placement per hour.
        let demand = HourlySeries::from_values(start(), vec![10.0, 2.0, 2.0, 2.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 50.0, 50.0, 50.0]);
        let mut battery = IdealBattery::new(0.0);
        let config = CombinedConfig {
            max_capacity_mw: 6.0,
            flexible_ratio: 1.0,
            window_hours: 24,
        };
        let r = combined_dispatch(&mut battery, &demand, &supply, config).unwrap();
        // Each surplus hour can only run 4 extra MW on top of its own 2 MW.
        assert!((r.effective_demand[1] - 6.0).abs() < 1e-9);
        assert!((r.effective_demand[2] - 6.0).abs() < 1e-9);
        // 10 deferred: 4 + 4 run in hours 1-2, the last 2 in hour 3.
        assert!((r.effective_demand[3] - 4.0).abs() < 1e-9);
        assert_eq!(r.forced_mwh, 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        let demand = HourlySeries::zeros(start(), 1);
        let supply = HourlySeries::zeros(start(), 1);
        let mut battery = IdealBattery::new(0.0);
        let _ = combined_dispatch(
            &mut battery,
            &demand,
            &supply,
            CombinedConfig {
                max_capacity_mw: 1.0,
                flexible_ratio: 0.5,
                window_hours: 0,
            },
        );
    }
}
